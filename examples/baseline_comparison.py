#!/usr/bin/env python3
"""A miniature Table VI: LaSAGNA vs the SGA-analog on one dataset.

Both assemblers see the same reads. SGA builds a full-text FM index and
backward-searches every read; LaSAGNA streams fingerprints through the
virtual GPU. As in the paper, only preprocess+index+overlap (SGA) vs
load+map+sort+reduce (LaSAGNA) are compared, and both produce string
graphs of identical quality class.
"""

import tempfile
import time
from pathlib import Path

from repro import Assembler, AssemblyConfig
from repro.baselines import SGAAssembler
from repro.seq.datasets import tiny_dataset
from repro.units import format_duration


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="lasagna-vs-sga-"))
    md, batch = tiny_dataset(root, genome_length=15_000, read_length=100,
                             coverage=30.0, min_overlap=63, seed=5)
    print(f"dataset: {md.n_reads:,} reads of 100 bp "
          f"({md.n_bases:,} bases)\n")

    start = time.perf_counter()
    lasagna = Assembler(AssemblyConfig(min_overlap=63)).assemble(md.store_path)
    lasagna_wall = time.perf_counter() - start
    lasagna_compared = sum(lasagna.phase_seconds()[p]
                           for p in ("load", "map", "sort", "reduce"))

    sga = SGAAssembler(min_overlap=63).assemble(batch)

    print(f"{'':<12}{'compared phases':>16}{'end-to-end':>12}"
          f"{'overlaps/cands':>16}{'N50':>7}")
    print("-" * 63)
    print(f"{'LaSAGNA':<12}{format_duration(lasagna_compared):>16}"
          f"{format_duration(lasagna_wall):>12}"
          f"{lasagna.reduce_report.candidates:>16,}"
          f"{lasagna.stats()['n50']:>7}")
    print(f"{'SGA-analog':<12}{format_duration(sga.overlap_pipeline_seconds):>16}"
          f"{format_duration(sum(sga.phase_seconds.values())):>12}"
          f"{sga.n_overlaps:>16,}"
          f"{sga.stats()['n50']:>7}")
    ratio = sga.overlap_pipeline_seconds / max(lasagna_compared, 1e-9)
    print(f"\nspeedup on compared phases: {ratio:.2f}x "
          f"(paper: 1.89x-3.05x at full scale)")
    print("note: wall-clock at this miniature scale is illustrative; the "
          "benchmarks\nregenerate the paper-scale Table VI through the "
          "calibrated model.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Why string graphs? The repeat-collapse experiment (paper §II.A.1).

De Bruijn assemblers collapse every genomic repeat longer than k into one
node, shattering contigs there; a string graph keeps whole reads as
vertices, so repeats shorter than the read length are spanned. This script
implants exact 30 bp repeats (k=21 < 30 < read length 40) and compares the
two assemblers with and without them.
"""

from repro.baselines import DeBruijnAssembler, SGAAssembler
from repro.seq.simulate import ReadSimulator, simulate_genome


def assemble_both(repeat_fraction: float):
    genome = simulate_genome(5000, seed=13, repeat_fraction=repeat_fraction,
                             repeat_length=30)
    reads = ReadSimulator(genome=genome, read_length=40, coverage=30.0,
                          seed=3).all_reads()
    debruijn = DeBruijnAssembler(k=21).assemble(reads).stats()
    string_graph = SGAAssembler(min_overlap=20).assemble(reads).stats()
    return debruijn, string_graph


def main() -> None:
    print(f"{'genome':<22}{'assembler':<15}{'contigs':>8}{'N50':>7}{'max':>7}")
    print("-" * 59)
    for label, fraction in (("repeat-free", 0.0), ("25% exact repeats", 0.25)):
        debruijn, string_graph = assemble_both(fraction)
        print(f"{label:<22}{'de Bruijn k=21':<15}"
              f"{debruijn['n_contigs']:>8}{debruijn['n50']:>7}{debruijn['max_contig']:>7}")
        print(f"{'':<22}{'string graph':<15}"
              f"{string_graph['n_contigs']:>8}{string_graph['n50']:>7}"
              f"{string_graph['max_contig']:>7}")

    print("\nRepeats longer than k collapse the de Bruijn graph's contigs;")
    print("the string graph (reads as vertices) barely notices them.")


if __name__ == "__main__":
    main()

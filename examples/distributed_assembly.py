#!/usr/bin/env python3
"""Distributed assembly across a simulated GPU cluster (paper §III.E).

Runs the same dataset on 1, 2, 4 and 8 simulated nodes and prints the
per-phase modeled times. The structure of Fig. 10 appears directly:

* map and sort scale with the node count (aggregate I/O bandwidth),
* the all-to-all shuffle exists only beyond one node,
* reduce scales sublinearly (the out-degree bit-vector token serializes
  greedy edge insertion across nodes),
* the assembly itself is byte-for-byte invariant to the node count.
"""

import tempfile
from pathlib import Path

from repro import AssemblyConfig
from repro.distributed import DistributedAssembler
from repro.seq.datasets import tiny_dataset
from repro.units import format_duration


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="lasagna-dist-"))
    md, _ = tiny_dataset(root, genome_length=10_000, read_length=64,
                         coverage=25.0, min_overlap=31, seed=17)
    config = AssemblyConfig(min_overlap=31)
    print(f"dataset: {md.n_reads:,} reads of 64 bp\n")

    phases = ("map", "shuffle", "sort", "reduce", "compress")
    header = f"{'nodes':>5}  " + "".join(f"{p:>10}" for p in phases) \
        + f"{'total':>10}  {'edges':>8}"
    print(header)
    print("-" * len(header))
    for n_nodes in (1, 2, 4, 8):
        result = DistributedAssembler(config, n_nodes).assemble(md.store_path)
        row = f"{n_nodes:>5}  " + "".join(
            f"{format_duration(result.phase_seconds[p]):>10}" for p in phases)
        print(row + f"{format_duration(result.total_seconds):>10}  "
              f"{result.edges:>8,}")
    print("\n(times are modeled hardware seconds; the work itself really ran,"
          "\n once per configuration, on this machine)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Paired-end scaffolding: ordering contigs across coverage gaps.

Greedy string-graph contigs break wherever coverage dips or overlap ties
are lost; mate pairs with a known insert size see across those breaks.
This script simulates a paired-end library, assembles the reads with
LaSAGNA, then scaffolds the contigs using the assembler's own path table
as the read "aligner" — no mapping step needed.
"""

import tempfile
from pathlib import Path

from repro import Assembler, AssemblyConfig
from repro.scaffold import scaffold_assembly
from repro.seq.packing import PackedReadStore
from repro.seq.simulate import PairedReadSimulator, simulate_genome


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="lasagna-scaffold-"))
    genome = simulate_genome(30_000, seed=33)
    simulator = PairedReadSimulator(genome=genome, read_length=60,
                                    coverage=10.0, insert_size=400,
                                    insert_std=10.0, seed=34)
    batch, n_pairs = simulator.all_reads()
    store_path = workdir / "pairs.lsgr"
    with PackedReadStore.create(store_path, 60) as store:
        store.append_batch(batch)
    print(f"{n_pairs:,} read pairs (10x coverage, insert 400 ± 10) over a 30 kb genome\n")

    result = Assembler(AssemblyConfig(min_overlap=30)).assemble(store_path)
    contig_stats = result.stats()

    scaffolds = scaffold_assembly(result.contigs, result.paths,
                                  n_pairs=n_pairs, read_length=60,
                                  insert_size=400, min_support=3)
    scaffold_stats = scaffolds.stats()

    print(f"{'':<12}{'count':>7}{'N50':>7}{'max':>8}{'total bp':>10}")
    print("-" * 44)
    print(f"{'contigs':<12}{contig_stats['n_contigs']:>7}"
          f"{contig_stats['n50']:>7}{contig_stats['max_contig']:>8}"
          f"{contig_stats['total_bases']:>10,}")
    print(f"{'scaffolds':<12}{scaffold_stats['n_contigs']:>7}"
          f"{scaffold_stats['n50']:>7}{scaffold_stats['max_contig']:>8}"
          f"{scaffold_stats['total_bases']:>10,}")
    print(f"\nevidence: {scaffolds.n_raw_links:,} linking pairs "
          f"({scaffolds.n_internal_pairs:,} internal), "
          f"{len(scaffolds.links_used)} bundled links accepted, "
          f"{scaffolds.n_scaffolded_contigs} contigs chained")
    print(f"N50 gain from pairing: "
          f"{scaffold_stats['n50'] / max(1, contig_stats['n50']):.1f}x")


if __name__ == "__main__":
    main()

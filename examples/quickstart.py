#!/usr/bin/env python3
"""Quickstart: simulate a small genome, assemble it, inspect the result.

Runs in a few seconds on a laptop. Shows the three core API objects:
``ReadSimulator`` (data), ``AssemblyConfig`` (tunables), ``Assembler``
(the pipeline), and validates the contigs against the known reference.
"""

from pathlib import Path
import tempfile

from repro import Assembler, AssemblyConfig
from repro.analysis import contig_accuracy, genome_fraction
from repro.seq.packing import PackedReadStore
from repro.seq.simulate import ReadSimulator, simulate_genome


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="lasagna-quickstart-"))

    # 1. Simulate a 20 kb genome at 30x coverage, 100 bp reads, both strands.
    genome = simulate_genome(20_000, seed=42)
    simulator = ReadSimulator(genome=genome, read_length=100, coverage=30.0,
                              seed=43)
    reads_path = workdir / "reads.lsgr"
    with PackedReadStore.create(reads_path, 100) as store:
        for batch in simulator.batches():
            store.append_batch(batch)
    print(f"simulated {simulator.n_reads} reads "
          f"({simulator.n_reads * 100:,} bases) -> {reads_path}")

    # 2. Assemble. min_overlap=63 is the SGA-suggested value for 100 bp reads
    #    (the same value the paper uses for its 100/101 bp datasets).
    config = AssemblyConfig(min_overlap=63)
    result = Assembler(config).assemble(reads_path)

    # 3. Inspect.
    print()
    print(result.summary())
    print()
    accuracy = contig_accuracy(result.contigs, genome)
    fraction = genome_fraction(result.contigs, genome)
    print(f"contig accuracy : {accuracy['correct']}/{accuracy['checked']} "
          f"exact substrings of the reference")
    print(f"genome fraction : {fraction:.1%}")

    contigs_path = workdir / "contigs.fasta"
    written = result.write_fasta(contigs_path, min_length=150)
    print(f"wrote {written} contigs (>=150 bp) to {contigs_path}")


if __name__ == "__main__":
    main()

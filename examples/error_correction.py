#!/usr/bin/env python3
"""Noisy reads, error correction, and exact-overlap assembly.

LaSAGNA's fingerprint overlaps are exact: a single substitution error
destroys every overlap crossing it, so raw Illumina-style noise shatters
the assembly. The SGA pipeline (whose correction stage the paper's timing
comparison excludes) fixes reads against the k-mer spectrum first. This
script runs the full loop: simulate 1% substitution noise, correct + filter
(`repro.seq.correction`), and assemble each variant with LaSAGNA.
"""

import tempfile
from pathlib import Path

from repro import Assembler, AssemblyConfig
from repro.seq.correction import correct_and_filter
from repro.seq.packing import PackedReadStore
from repro.seq.simulate import ReadSimulator, simulate_genome


def store_for(batch, path: Path) -> Path:
    with PackedReadStore.create(path, batch.read_length) as store:
        store.append_batch(batch)
    return path


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="lasagna-correction-"))
    genome = simulate_genome(8000, seed=20)
    clean = ReadSimulator(genome=genome, read_length=60, coverage=30.0,
                          seed=21).all_reads()
    noisy = ReadSimulator(genome=genome, read_length=60, coverage=30.0,
                          seed=21, error_rate=0.01).all_reads()
    errors = int((clean.codes != noisy.codes).sum())
    print(f"{noisy.n_reads:,} reads x 60 bp, {errors:,} simulated "
          f"substitution errors (1%)\n")

    corrected, report, dropped = correct_and_filter(noisy, k=17)
    print(f"correction: fixed {report.bases_corrected:,} bases in "
          f"{report.reads_changed:,} reads "
          f"(k={report.k}, solid threshold {report.solid_threshold}); "
          f"dropped {dropped:,} uncorrectable reads")

    config = AssemblyConfig(min_overlap=30)
    print(f"\n{'reads':<22}{'contigs':>8}{'N50':>7}{'total bp':>10}{'edges':>8}")
    print("-" * 55)
    for label, batch in (("noisy (1% errors)", noisy),
                         ("corrected+filtered", corrected),
                         ("clean (oracle)", clean)):
        path = store_for(batch, workdir / f"{label.split()[0]}.lsgr")
        result = Assembler(config).assemble(path)
        stats = result.stats()
        print(f"{label:<22}{stats['n_contigs']:>8}{stats['n50']:>7}"
              f"{stats['total_bases']:>10,}{result.reduce_report.edges_added:>8,}")

    print("\nExact-overlap assembly collapses under raw noise and is fully"
          "\nrestored by spectrum correction + filtering.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Out-of-core assembly: watch the two-level streaming model at work.

Assembles the same dataset under three memory regimes — generous,
host-constrained, and severely constrained — and reports, for each run,
the external sort's disk passes, total disk traffic, and modeled time.
The data never has to fit in (virtual) device memory; the pass counts
grow exactly as the paper's ``1 + log2(n/m_h)`` analysis predicts.
"""

import tempfile
from pathlib import Path

from repro import Assembler, AssemblyConfig
from repro.seq.datasets import tiny_dataset
from repro.units import format_duration, format_size


def run(md, label: str, host_block_pairs: int, device_block_pairs: int):
    config = AssemblyConfig(min_overlap=31,
                            host_block_pairs=host_block_pairs,
                            device_block_pairs=device_block_pairs)
    result = Assembler(config).assemble(md.store_path)
    sort_stats = result.telemetry["sort"]
    print(f"{label:<22} m_h={host_block_pairs:>7,}  m_d={device_block_pairs:>6,}  "
          f"disk_passes={result.sort_report.max_disk_passes}  "
          f"sort_io={format_size(sort_stats.counters['disk_read_bytes'] + sort_stats.counters['disk_write_bytes']):>10}  "
          f"sim_sort={format_duration(sort_stats.sim_seconds):>8}  "
          f"contigs={result.contigs.n_contigs}")
    return result


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="lasagna-ooc-"))
    md, _ = tiny_dataset(root, genome_length=12_000, read_length=64,
                         coverage=25.0, min_overlap=31, seed=7)
    partition_records = 2 * md.n_reads
    print(f"dataset: {md.n_reads:,} reads of 64 bp "
          f"({partition_records:,} records per length partition)\n")

    generous = run(md, "in-memory (1 pass)", partition_records * 2,
                   partition_records)
    two_pass = run(md, "half-partition blocks", partition_records // 2 + 1, 2048)
    many_pass = run(md, "tiny blocks", partition_records // 8 + 1, 512)

    print("\nEvery run produces equivalent assemblies:")
    for label, result in (("generous", generous), ("2-pass", two_pass),
                          ("multi-pass", many_pass)):
        stats = result.stats()
        print(f"  {label:<11} N50={stats['n50']:>5}  "
              f"total={stats['total_bases']:>7,} bp  "
              f"edges={result.reduce_report.edges_added:,}")


if __name__ == "__main__":
    main()

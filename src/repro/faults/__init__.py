"""Deterministic chaos-I/O fault injection for the extmem substrate.

``repro.faults`` has two halves:

* :mod:`repro.faults.plan` — the :class:`FaultPlan` value type and the
  module-level hooks (:func:`deliver_write`, :func:`filter_read`,
  :func:`ledger_write`, :func:`barrier`) the stream/ledger substrate routes
  every byte through. Importing this package pulls the hooks in eagerly —
  they must be cheap and always available to production code.
* :mod:`repro.faults.crashloop` — the :class:`CrashLoop` driver that kills
  ``Assembler.assemble(resume=True)`` at every injected point and checks
  recovery against a golden run. It imports the full pipeline, which in
  turn imports the (instrumented) substrate — so it is loaded lazily via
  module ``__getattr__`` to keep ``extmem → faults`` import-cycle free.
"""

from __future__ import annotations

from .plan import (BITFLIP, CHUNK, CRASH, ENOSPC, FSYNC_LOSS, KINDS, LEDGER,
                   MESSAGE, MSG_DELAY, MSG_DROP, NODE, NODE_CRASH, PHASE,
                   READ, RENAME, SITES, TORN, WRITE, Fault, FaultEvent,
                   FaultPlan, TracePoint, active, active_plan, barrier,
                   clear_crash, crash_pending, crashed_scopes,
                   deliver_message, deliver_write, filter_read, inject,
                   ledger_write, node_op, note_phase, scoped)
from .retry import RetryPolicy

__all__ = [
    "BITFLIP", "CHUNK", "CRASH", "ENOSPC", "FSYNC_LOSS", "KINDS",
    "LEDGER", "MESSAGE", "MSG_DELAY", "MSG_DROP", "NODE", "NODE_CRASH",
    "PHASE", "READ", "RENAME", "SITES", "TORN", "WRITE",
    "Fault", "FaultEvent", "FaultPlan", "RetryPolicy", "TracePoint",
    "active", "active_plan", "barrier", "clear_crash", "crash_pending",
    "crashed_scopes", "deliver_message", "deliver_write", "filter_read",
    "inject", "ledger_write", "node_op", "note_phase", "scoped",
    "CrashLoop", "CrashLoopReport", "CrashOutcome",
    "result_digest", "scan_residue",
]

_CRASHLOOP_NAMES = frozenset({
    "CrashLoop", "CrashLoopReport", "CrashOutcome",
    "result_digest", "scan_residue",
})


def __getattr__(name: str):
    if name in _CRASHLOOP_NAMES:
        from . import crashloop
        return getattr(crashloop, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Deterministic bounded retry with exponential backoff and seeded jitter.

The distributed supervisor wraps every node operation in a
:class:`RetryPolicy`; the I/O layer can adopt the same policy for
survivable errors (``ENOSPC``, dropped messages). Determinism is the whole
point: the backoff before attempt ``k`` of operation ``key`` is a pure
function of ``(seed, key, k)``, so the same fault plan under the same
config produces an identical retry timeline — byte-identical ``token_trace``
and sim trace, replayable from a CI seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Tuple, Type

from ..errors import ConfigError, RetryExhausted


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, deterministic exponential-backoff schedule.

    ``max_attempts`` counts the first try: ``2`` means one retry (the
    pre-resilience distributed reduce behaviour). The backoff before
    attempt ``k`` (k >= 1) is::

        base_backoff_s * backoff_multiplier**(k-1) * (1 ± jitter)

    capped at ``max_backoff_s``, with the jitter factor drawn from
    ``random.Random(f"{seed}:{key}:{k}")`` — fully determined by the
    policy seed, the operation key and the attempt number.
    """

    max_attempts: int = 2
    base_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 10.0
    jitter_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigError("jitter_fraction must be in [0, 1)")

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        raw = self.base_backoff_s * self.backoff_multiplier ** (attempt - 1)
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        jitter = 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return min(raw * jitter, self.max_backoff_s)

    def delays(self, key: str = "") -> tuple[float, ...]:
        """The full backoff schedule: one delay per retry this policy allows."""
        return tuple(self.backoff_s(k, key) for k in range(1, self.max_attempts))

    def run(self, fn: Callable[[int], object], *, key: str = "",
            retry_on: Tuple[Type[BaseException], ...] = (Exception,),
            on_backoff: Callable[[int, float, BaseException], None] | None = None):
        """Call ``fn(attempt)`` until it returns or attempts run out.

        ``on_backoff(attempt, delay_s, exc)`` fires before each retry — the
        supervisor charges the delay to the simulated clock there. When the
        last attempt fails, :class:`~repro.errors.RetryExhausted` is raised
        from the final exception.
        """
        for attempt in range(self.max_attempts):
            try:
                return fn(attempt)
            except retry_on as exc:
                if attempt + 1 >= self.max_attempts:
                    raise RetryExhausted(
                        f"{key or 'operation'} failed after "
                        f"{self.max_attempts} attempts: {exc}") from exc
                if on_backoff is not None:
                    on_backoff(attempt + 1, self.backoff_s(attempt + 1, key), exc)
        raise AssertionError("unreachable")  # pragma: no cover

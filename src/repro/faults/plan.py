"""Deterministic chaos-I/O fault plans and the substrate hooks they drive.

The extmem stream/file substrate (:class:`~repro.extmem.streams.RunWriter` /
:class:`~repro.extmem.streams.RunReader`, the packed read store, the
checkpoint ledger, ``sort_file``'s atomic rename) routes every byte through
the module-level hooks below. With no plan active the hooks are
pass-throughs costing one global load; under :func:`inject` every hook
visit increments a global *operation counter* and is matched against the
plan's scheduled :class:`Fault` list, so a crash can be replayed at any
exact byte boundary of any run:

* ``crash``      — die before the operation (the write never happens),
* ``torn``       — write a prefix of the payload, then die,
* ``enospc``     — the device is full: a survivable ``OSError`` (ENOSPC),
* ``fsync-loss`` — the write is acknowledged but silently dropped (lost
  page-cache data); the process dies ``delay`` operations later,
* ``bitflip``    — one payload bit is corrupted in flight; execution
  continues (silent corruption — the hardest failure to survive).

Plans are values: the same seed and schedule reproduce the same faults at
the same operations, which is what lets a failed chaos seed from CI be
replayed locally. Every injected event is recorded on the plan and exposed
through a :class:`~repro.telemetry.EventMeter`, so per-phase telemetry
reports how many faults each phase absorbed.
"""

from __future__ import annotations

import errno
import fnmatch
import random
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator, Sequence

from ..errors import ConfigError, FaultInjected, MessageDropped
from ..telemetry import EventMeter

# -- fault kinds ---------------------------------------------------------------

CRASH = "crash"
TORN = "torn"
ENOSPC = "enospc"
FSYNC_LOSS = "fsync-loss"
BITFLIP = "bitflip"
NODE_CRASH = "node-crash"  #: a whole worker process dies at an op boundary
MSG_DROP = "msg-drop"      #: an active message vanishes in flight
MSG_DELAY = "msg-delay"    #: an active message arrives late (extra latency)
KINDS = (CRASH, TORN, ENOSPC, FSYNC_LOSS, BITFLIP,
         NODE_CRASH, MSG_DROP, MSG_DELAY)

# -- hook sites ---------------------------------------------------------------

WRITE = "write"      #: RunWriter.append / PackedReadStore writes
READ = "read"        #: RunReader.read / PackedReadStore reads
LEDGER = "ledger"    #: checkpoint state.json writes
RENAME = "rename"    #: sort_file's atomic publish of a finished run
PHASE = "phase"      #: pipeline phase boundaries (label = phase name)
MESSAGE = "message"  #: active-message delivery (label = "src->dst:handler")
NODE = "node"        #: distributed node-op boundaries (label = "scope:op")
CHUNK = "chunk"      #: intra-partition chunk commits (label = "scope:op#index")
SITES = (WRITE, READ, LEDGER, RENAME, PHASE, MESSAGE, NODE, CHUNK)

#: Fault kinds that make sense per site (seeded plans draw from these).
_SITE_KINDS = {
    WRITE: (CRASH, TORN, ENOSPC, FSYNC_LOSS, BITFLIP),
    READ: (CRASH, BITFLIP),
    LEDGER: (CRASH, TORN, FSYNC_LOSS),
    RENAME: (CRASH,),
    PHASE: (CRASH,),
    MESSAGE: (MSG_DROP, MSG_DELAY, NODE_CRASH),
    NODE: (NODE_CRASH, CRASH),
    CHUNK: (NODE_CRASH, CRASH),
}

#: Extra in-flight latency of a ``msg-delay`` fault with ``seconds=0``.
DEFAULT_MSG_DELAY_S = 1e-3

#: Sentinel: ``clear_crash()`` without a scope clears every scope (the
#: single-node chaos path, where no scopes exist). ``None`` is a real scope.
_ALL_SCOPES = object()


@dataclass(frozen=True)
class Fault:
    """One scheduled failure.

    ``at_op`` pins the fault to the N-th hook visit of the run (the global
    operation counter), making crash-at-byte-N schedules exact and
    replayable; ``None`` fires at the first visit whose site and path name
    match. ``offset`` selects the payload byte for ``torn``/``bitflip``
    (``None`` = middle of the payload). ``once`` faults disarm after
    firing — a retry then succeeds; persistent faults model a dead node.
    """

    kind: str
    site: str = "*"
    match: str = "*"
    at_op: int | None = None
    offset: int | None = None
    delay: int = 1
    once: bool = True
    #: Extra latency of a ``msg-delay`` fault (0 = :data:`DEFAULT_MSG_DELAY_S`).
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; options: {KINDS}")
        if self.site != "*" and self.site not in SITES:
            raise ConfigError(f"unknown fault site {self.site!r}; options: {SITES}")
        if self.seconds < 0:
            raise ConfigError("fault delay seconds must be >= 0")

    def triggers(self, op: int, site: str, name: str) -> bool:
        """Whether this fault fires at hook visit ``op`` of ``site``/``name``."""
        if self.site not in ("*", site):
            return False
        if self.at_op is not None and op != self.at_op:
            return False
        return fnmatch.fnmatch(name, self.match)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    op: int
    kind: str
    site: str
    path: str


@dataclass(frozen=True)
class TracePoint:
    """One instrumented operation observed by an active plan."""

    op: int
    site: str
    path: str
    phase: str | None


class FaultPlan:
    """A seeded, deterministic schedule of injectable failures.

    A plan with an empty fault list is a pure *probe*: it records the trace
    of every instrumented operation (and which pipeline phase it fell in),
    which is how :class:`~repro.faults.crashloop.CrashLoop` enumerates the
    distinct crash points of a workload before killing it at each one.
    """

    def __init__(self, faults: Sequence[Fault] = (), *, seed: int = 0):
        self.seed = seed
        self._pending = list(faults)
        self.events: list[FaultEvent] = []
        self.trace: list[TracePoint] = []
        #: Scopes (node labels; ``None`` = unscoped) with an unacknowledged
        #: simulated crash. One node's recovery clears only its own scope.
        self._crashed_scopes: set[str | None] = set()
        self.meter = EventMeter()
        self._op = 0
        self._scope: str | None = None
        self._phase: str | None = None
        self._armed_crash_op: int | None = None
        #: Acknowledged-but-unsynced writes: (path, offset|None, original).
        #: ``offset=None`` marks a whole-file write; ``original=None`` means
        #: the file did not exist before it. Reverted when the crash fires.
        self._lost_writes: list[tuple[Path, int | None, bytes | None]] = []

    # -- constructors ---------------------------------------------------------

    @classmethod
    def crash_at(cls, op: int, *, site: str = "*", match: str = "*") -> "FaultPlan":
        """A plan that dies at exactly the ``op``-th instrumented operation."""
        return cls([Fault(CRASH, site=site, match=match, at_op=op)], seed=op)

    @classmethod
    def seeded(cls, seed: int, n_ops: int, *,
               kinds: Sequence[str] = (CRASH, TORN, FSYNC_LOSS),
               site: str = "*") -> "FaultPlan":
        """Draw one fault uniformly over ``n_ops`` operations from ``seed``.

        The same ``(seed, n_ops)`` pair always yields the same fault — the
        contract that makes a failed CI chaos seed reproducible locally.
        """
        if n_ops < 1:
            raise ConfigError("seeded plans need n_ops >= 1")
        rng = random.Random(seed)
        kind = rng.choice(list(kinds))
        fault = Fault(kind, site=site, at_op=rng.randrange(n_ops),
                      offset=rng.randrange(64), delay=1 + rng.randrange(4))
        return cls([fault], seed=seed)

    @classmethod
    def seeded_cluster(cls, seed: int, n_ops: int, *,
                       kinds: Sequence[str] = (NODE_CRASH, MSG_DROP, MSG_DELAY),
                       ) -> "FaultPlan":
        """Draw one node-level fault over the cluster's op space from ``seed``.

        The distributed analogue of :meth:`seeded`: node crashes land on
        node-op boundaries, message faults on active-message deliveries —
        the same ``(seed, n_ops)`` always reproduces the same fault.
        """
        if n_ops < 1:
            raise ConfigError("seeded plans need n_ops >= 1")
        rng = random.Random(seed)
        kind = rng.choice(list(kinds))
        site = NODE if kind == NODE_CRASH else MESSAGE
        fault = Fault(kind, site=site, at_op=rng.randrange(n_ops),
                      seconds=rng.random() * 0.01 if kind == MSG_DELAY else 0.0)
        return cls([fault], seed=seed)

    # -- state ----------------------------------------------------------------

    @property
    def ops_seen(self) -> int:
        """Instrumented operations visited so far."""
        return self._op

    @property
    def pending(self) -> tuple[Fault, ...]:
        """Faults not yet fired."""
        return tuple(self._pending)

    @property
    def crashed(self) -> bool:
        """Whether any scope has an unacknowledged simulated crash."""
        return bool(self._crashed_scopes)

    @property
    def crashed_scopes(self) -> tuple[str | None, ...]:
        """Scopes with an unacknowledged crash (sorted, ``None`` first)."""
        return tuple(sorted(self._crashed_scopes,
                            key=lambda s: (s is not None, s)))

    def clear_crash(self, scope: str | None = _ALL_SCOPES) -> None:
        """Acknowledge a simulated crash (a survivor caught the failure).

        With a ``scope``, only that node's pending crash is acknowledged —
        one node's recovery cannot swallow another node's injected fault.
        Without one (the single-node chaos path), every scope is cleared.
        """
        if scope is _ALL_SCOPES:
            self._crashed_scopes.clear()
        else:
            self._crashed_scopes.discard(scope)

    # -- matching -------------------------------------------------------------

    def _visit(self, site: str, name: str) -> Fault | None:
        op = self._op
        self._op += 1
        self.trace.append(TracePoint(op, site, name, self._phase))
        self.meter.bump("fault_ops")
        if self._armed_crash_op is not None and op >= self._armed_crash_op:
            self._armed_crash_op = None
            self._die(FaultEvent(op, FSYNC_LOSS, site, name),
                      "crash after acknowledged-but-lost write")
        for fault in self._pending:
            if fault.triggers(op, site, name):
                if fault.once:
                    self._pending.remove(fault)
                return fault
        return None

    def _record(self, event: FaultEvent) -> None:
        self.events.append(event)
        self.meter.bump("faults_injected")
        self.meter.bump(f"faults_{event.kind.replace('-', '_')}")

    def _revert_lost_writes(self) -> None:
        """Undo acknowledged-but-unsynced writes — the page cache just died."""
        for path, offset, original in self._lost_writes:
            try:
                if offset is None:
                    if original is None:
                        path.unlink(missing_ok=True)
                    else:
                        path.write_bytes(original)
                else:
                    with open(path, "r+b") as handle:
                        handle.seek(offset)
                        handle.write(original or b"")
                        handle.truncate(offset + len(original or b""))
            except OSError:
                # The file moved or vanished since (e.g. an atomic rename
                # published it); the unsynced pages travelled with it.
                pass
        self._lost_writes.clear()

    def _die(self, event: FaultEvent, reason: str) -> None:
        self._record(event)
        self._revert_lost_writes()
        self._crashed_scopes.add(self._scope)
        raise FaultInjected(
            f"injected {event.kind} at op {event.op} ({event.site}: "
            f"{event.path}): {reason}")

    @staticmethod
    def _cut(payload: bytes, offset: int | None) -> int:
        if not payload:
            return 0
        cut = len(payload) // 2 if offset is None else offset
        return max(0, min(cut, len(payload) - 1))

    # -- per-site fault execution --------------------------------------------

    def deliver_write(self, path: Path, payload: bytes, handle: BinaryIO) -> None:
        """Execute one instrumented write, applying any matching fault."""
        fault = self._visit(WRITE, str(path))
        if fault is None:
            handle.write(payload)
            return
        event = FaultEvent(self._op - 1, fault.kind, WRITE, str(path))
        if fault.kind == ENOSPC:
            self._record(event)
            raise OSError(errno.ENOSPC,
                          f"injected: no space left on device writing {path}")
        if fault.kind == CRASH:
            self._die(event, "crash before write")
        if fault.kind == TORN:
            handle.write(payload[:self._cut(payload, fault.offset)])
            handle.flush()
            self._die(event, "torn write (prefix reached disk)")
        if fault.kind == FSYNC_LOSS:
            # Page-cache semantics: the write is acknowledged and visible to
            # every in-process reader, but the bytes are reverted when the
            # armed crash fires ``delay`` operations later — unless an
            # atomic rename published the file first (then they survived).
            handle.flush()
            pos = handle.tell()
            original = b""
            try:
                with open(path, "rb") as snapshot:
                    snapshot.seek(pos)
                    original = snapshot.read(len(payload))
            except OSError:
                pass
            handle.write(payload)
            self._record(event)
            self._lost_writes.append((Path(path), pos, original))
            self._armed_crash_op = self._op + fault.delay
            return
        # BITFLIP: corrupt one bit in flight, keep running.
        self._record(event)
        handle.write(self._flip(payload, fault.offset))

    def filter_read(self, path: Path, raw: bytes) -> bytes:
        """Pass freshly read bytes through the plan (crash or corrupt)."""
        fault = self._visit(READ, str(path))
        if fault is None:
            return raw
        event = FaultEvent(self._op - 1, fault.kind, READ, str(path))
        if fault.kind == BITFLIP:
            self._record(event)
            return self._flip(raw, fault.offset)
        self._die(event, "crash during read")
        return raw  # unreachable

    def ledger_write(self, path: Path, text: str) -> None:
        """Write checkpoint-ledger text, applying any matching fault."""
        fault = self._visit(LEDGER, str(path))
        payload = text.encode()
        if fault is None:
            path.write_bytes(payload)
            return
        event = FaultEvent(self._op - 1, fault.kind, LEDGER, str(path))
        if fault.kind == CRASH:
            self._die(event, "crash before ledger write")
        if fault.kind == TORN:
            path.write_bytes(payload[:self._cut(payload, fault.offset)])
            self._die(event, "torn ledger write")
        if fault.kind == FSYNC_LOSS:
            original = path.read_bytes() if path.exists() else None
            path.write_bytes(payload)
            self._record(event)
            self._lost_writes.append((Path(path), None, original))
            self._armed_crash_op = self._op + fault.delay
            return
        if fault.kind == ENOSPC:
            self._record(event)
            raise OSError(errno.ENOSPC, f"injected: no space writing {path}")
        self._record(event)
        path.write_bytes(self._flip(payload, fault.offset))

    def barrier(self, site: str, label: str) -> None:
        """Visit a payload-less crash point (rename, phase, chunk commit).

        Both whole-process ``crash`` and distributed ``node-crash`` kinds
        die here: chunk-commit barriers sit inside node operations, where a
        scheduled node death must land between finishing a chunk's work and
        appending it to the ledger — the window the chunk protocol has to
        survive.
        """
        fault = self._visit(site, label)
        if fault is not None and fault.kind in (CRASH, NODE_CRASH):
            self._die(FaultEvent(self._op - 1, fault.kind, site, label),
                      "crash at barrier")

    # -- node-level fault execution --------------------------------------------

    def deliver_message(self, src_scope: str, dst_scope: str,
                        handler: str) -> float:
        """Visit one active-message delivery; returns extra latency seconds.

        ``msg-drop`` raises :class:`~repro.errors.MessageDropped` (the
        handler never runs; the sender may retry). ``node-crash`` kills the
        *destination* node — its scope is marked crashed and
        :class:`~repro.errors.FaultInjected` unwinds to the requester, who
        observed the peer die mid-request. ``msg-delay`` returns the extra
        in-flight seconds for the caller to charge.
        """
        label = f"{src_scope}->{dst_scope}:{handler}"
        fault = self._visit(MESSAGE, label)
        if fault is None:
            return 0.0
        event = FaultEvent(self._op - 1, fault.kind, MESSAGE, label)
        if fault.kind == MSG_DROP:
            self._record(event)
            raise MessageDropped(
                f"injected msg-drop at op {event.op}: {label} lost in flight")
        if fault.kind == MSG_DELAY:
            self._record(event)
            return fault.seconds or DEFAULT_MSG_DELAY_S
        # NODE_CRASH: the destination process dies servicing the request.
        previous, self._scope = self._scope, dst_scope
        try:
            self._die(event, f"destination {dst_scope} died mid-request")
        finally:
            self._scope = previous
        return 0.0  # unreachable

    def node_op(self, scope: str, op: str) -> None:
        """Visit one distributed node-operation boundary (may kill ``scope``)."""
        label = f"{scope}:{op}"
        fault = self._visit(NODE, label)
        if fault is not None and fault.kind in (NODE_CRASH, CRASH):
            previous, self._scope = self._scope, scope
            try:
                self._die(FaultEvent(self._op - 1, fault.kind, NODE, label),
                          f"node {scope} crashed at {op}")
            finally:
                self._scope = previous

    @staticmethod
    def _flip(payload: bytes, offset: int | None) -> bytes:
        if not payload:
            return payload
        index = (len(payload) // 2 if offset is None else offset) % len(payload)
        corrupted = bytearray(payload)
        corrupted[index] ^= 0x01
        return bytes(corrupted)


# -- the active plan and the substrate-facing hooks ---------------------------

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently injected plan, or ``None`` (production default)."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block (non-reentrant)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ConfigError("a fault plan is already active")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None


def active() -> bool:
    """Whether a fault plan is currently armed.

    Hot-path I/O consults this to take zero-copy fast paths that skip the
    bytes round trips fault delivery and filtering need.
    """
    return _ACTIVE is not None


def crash_pending() -> bool:
    """Whether an injected crash is unwinding the stack right now.

    Cleanup code that a dead process could never run (scratch teardown in
    ``finally`` blocks) consults this to leave residue behind, so recovery
    is tested against realistic post-crash state.
    """
    return _ACTIVE is not None and _ACTIVE.crashed


def clear_crash(scope: str | None = _ALL_SCOPES) -> None:
    """Acknowledge a caught simulated crash (see :meth:`FaultPlan.clear_crash`).

    Pass a node scope (e.g. ``"node01"``) to acknowledge only that node's
    crash; the bare call clears everything (single-node recovery).
    """
    if _ACTIVE is not None:
        _ACTIVE.clear_crash(scope)


def crashed_scopes() -> tuple[str | None, ...]:
    """Scopes with unacknowledged crashes on the active plan (or ``()``)."""
    if _ACTIVE is None:
        return ()
    return _ACTIVE.crashed_scopes


@contextmanager
def scoped(scope: str | None) -> Iterator[None]:
    """Attribute faults fired inside the block to ``scope`` (a node label).

    The distributed supervisor wraps each node operation so that an
    injected crash records *which node* died; ``clear_crash(scope=...)``
    then acknowledges exactly that node's failure.
    """
    if _ACTIVE is None:
        yield
        return
    previous = _ACTIVE._scope
    _ACTIVE._scope = scope
    try:
        yield
    finally:
        _ACTIVE._scope = previous


def node_op(scope: str, op: str) -> None:
    """Visit a distributed node-op boundary under the active plan."""
    if _ACTIVE is not None:
        _ACTIVE.node_op(scope, op)


def deliver_message(src_scope: str, dst_scope: str, handler: str) -> float:
    """Visit an active-message delivery; returns injected extra latency."""
    if _ACTIVE is None:
        return 0.0
    return _ACTIVE.deliver_message(src_scope, dst_scope, handler)


def deliver_write(path: Path, payload, handle: BinaryIO) -> None:
    """Write ``payload`` to ``handle``, subject to the active plan.

    ``payload`` may be ``bytes`` or any buffer-protocol object (e.g. a
    contiguous record array). With no plan active it is handed straight to
    the OS; the bytes materialization — which fault bookkeeping needs for
    slicing and flipping — is only paid when a plan is armed.
    """
    if _ACTIVE is None:
        handle.write(payload)
    else:
        if not isinstance(payload, (bytes, bytearray)):
            payload = payload.tobytes()
        _ACTIVE.deliver_write(path, payload, handle)


def filter_read(path: Path, raw: bytes) -> bytes:
    """Pass ``raw`` bytes just read from ``path`` through the active plan."""
    if _ACTIVE is None:
        return raw
    return _ACTIVE.filter_read(path, raw)


def ledger_write(path: Path, text: str) -> None:
    """Write checkpoint-ledger ``text`` to ``path`` under the active plan."""
    if _ACTIVE is None:
        path.write_text(text)
    else:
        _ACTIVE.ledger_write(path, text)


def barrier(site: str, label: str) -> None:
    """An injectable crash point with no payload (rename, phase end)."""
    if _ACTIVE is not None:
        _ACTIVE.barrier(site, label)


def note_phase(name: str | None) -> None:
    """Tell the active plan which pipeline phase is running (trace labels)."""
    if _ACTIVE is not None:
        _ACTIVE._phase = name

"""The crash-recovery loop: kill the pipeline everywhere, demand the genome.

A 16-hour semi-streaming run that resumes *almost* correctly produces a
wrong genome, not an error — so recovery is only trustworthy if it is
checked against a byte-level oracle at every interruption point. The
:class:`CrashLoop` driver does exactly that:

1. run one unfaulted **golden** assembly and digest its result,
2. run one instrumented **probe** (an empty :class:`~repro.faults.FaultPlan`)
   to enumerate every injectable operation and the phase it falls in,
3. for a spread of points across all five phases, run the pipeline with a
   scheduled kill at that exact operation, then resume with
   ``Assembler.assemble(resume=True)`` and assert the recovered
   :class:`~repro.core.results.AssemblyResult` digests identically to the
   golden run, the checkpoint ledger converged, and no scratch residue
   survived.

:func:`result_digest` hashes every deterministic field of a result —
contigs, paths, and the map/sort/reduce reports — and deliberately excludes
telemetry (wall/simulated times differ between a fresh and a resumed run by
construction).
"""

from __future__ import annotations

import errno
import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..config import AssemblyConfig
from ..core.checkpoint import STATE_FILE
from ..core.pipeline import PHASES, Assembler
from ..core.results import AssemblyResult
from ..errors import FaultInjected, RecoveryError
from .plan import (BITFLIP, CRASH, ENOSPC, FSYNC_LOSS, LEDGER, PHASE, READ,
                   RENAME, TORN, WRITE, _SITE_KINDS, Fault, FaultPlan,
                   TracePoint, inject)

#: All phases a checkpointed run must have persisted after full recovery
#: (compress is always re-run, so it is never in the ledger).
_LEDGER_PHASES = frozenset(PHASES) - {"compress"}


def result_digest(result: AssemblyResult) -> str:
    """Canonical digest of every deterministic field of a result.

    Two runs of the same configuration over the same input — fresh,
    resumed, or recovered from any crash point — must produce equal
    digests. Telemetry is excluded: timings are nondeterministic and a
    resumed run legitimately skips work.
    """
    h = hashlib.sha256()

    def put(tag: str, payload: bytes) -> None:
        h.update(tag.encode())
        h.update(len(payload).to_bytes(8, "little"))
        h.update(payload)

    put("config", json.dumps(asdict(result.config), sort_keys=True,
                             default=str).encode())
    put("shape", f"{result.n_reads}:{result.read_length}:{result.n_paths}".encode())
    put("contig_codes", result.contigs.flat_codes.tobytes())
    put("contig_offsets", result.contigs.offsets.tobytes())
    if result.paths is not None:
        put("path_offsets", result.paths.path_offsets.tobytes())
        put("path_vertices", result.paths.vertices.tobytes())
        put("path_overhangs", result.paths.overhangs.tobytes())
    put("map", json.dumps(asdict(result.map_report), sort_keys=True).encode())
    sort_rows = sorted(
        (side, length, r.n_records, r.initial_runs, r.merge_rounds, r.fanout)
        for (side, length), r in result.sort_report.reports.items())
    put("sort", json.dumps(sort_rows).encode())
    put("reduce", json.dumps(asdict(result.reduce_report), sort_keys=True).encode())
    return h.hexdigest()


def scan_residue(workdir: Path) -> list[str]:
    """Scratch/ledger residue a finished run must not leave behind.

    Residue is anything recovery should have consumed or torn down:
    ``*.scratch`` merge directories (and their contents) and unsorted
    partition files whose sorted counterpart exists.
    """
    workdir = Path(workdir)
    residue: list[str] = []
    for path in sorted(workdir.rglob("*.scratch")):
        residue.append(str(path.relative_to(workdir)))
    for sorted_run in sorted(workdir.rglob("*.sorted.run")):
        unsorted = sorted_run.with_name(
            sorted_run.name.replace(".sorted.run", ".run"))
        if unsorted.exists():
            residue.append(str(unsorted.relative_to(workdir)))
    return residue


@dataclass(frozen=True)
class CrashOutcome:
    """What happened at one injected crash point."""

    point: TracePoint
    kind: str
    crashed: bool
    digest_match: bool
    ledger_converged: bool
    residue: tuple[str, ...]
    crash_seconds: float
    resume_seconds: float

    @property
    def ok(self) -> bool:
        """Whether recovery at this point fully converged."""
        return (self.crashed and self.digest_match and self.ledger_converged
                and not self.residue)


@dataclass
class CrashLoopReport:
    """Aggregate of one full crash-loop sweep."""

    golden_digest: str
    golden_seconds: float
    outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def points_tested(self) -> int:
        """Distinct injected crash points exercised."""
        return len(self.outcomes)

    @property
    def phases_covered(self) -> set[str]:
        """Pipeline phases that absorbed at least one injected crash."""
        return {o.point.phase for o in self.outcomes if o.point.phase}

    @property
    def failures(self) -> list[CrashOutcome]:
        """Points where recovery did not fully converge."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def mean_recovery_overhead(self) -> float:
        """Mean resume time relative to the golden run's (recovery cost)."""
        if not self.outcomes or self.golden_seconds <= 0:
            return 0.0
        resumes = [o.resume_seconds for o in self.outcomes]
        return (sum(resumes) / len(resumes)) / self.golden_seconds

    def require_clean(self) -> None:
        """Raise :class:`RecoveryError` unless every point recovered."""
        if self.failures:
            lines = [
                f"  op {o.point.op} [{o.kind} @ {o.point.site}:{o.point.path}] "
                f"phase={o.point.phase} crashed={o.crashed} "
                f"match={o.digest_match} ledger={o.ledger_converged} "
                f"residue={list(o.residue)}"
                for o in self.failures]
            raise RecoveryError(
                f"{len(self.failures)}/{self.points_tested} crash points "
                "failed to recover:\n" + "\n".join(lines))

    def summary(self) -> str:
        """One-paragraph human-readable sweep summary."""
        return (f"crash loop: {self.points_tested} points across "
                f"{sorted(self.phases_covered)}; {len(self.failures)} failures; "
                f"mean recovery overhead {self.mean_recovery_overhead:.2f}x "
                f"of golden ({self.golden_seconds:.3f}s)")


class CrashLoop:
    """Repeatedly kill ``Assembler.assemble(resume=True)`` and verify recovery.

    ``points_per_phase`` crash points are spread evenly over each phase's
    instrumented operations; fault kinds rotate deterministically from
    ``seed`` over the kinds valid at each site, so one seed exercises
    plain crashes, torn writes, lost writes, and disk-full failures.
    """

    def __init__(self, config: AssemblyConfig, source, root: str | Path, *,
                 points_per_phase: int = 6,
                 kinds: tuple[str, ...] = (CRASH, TORN, FSYNC_LOSS, ENOSPC),
                 sites: tuple[str, ...] = (WRITE, READ, LEDGER, RENAME, PHASE),
                 seed: int = 0):
        if BITFLIP in kinds:
            raise RecoveryError(
                "bitflip is silent corruption, not a crash; test it against "
                "the differential oracle instead of the crash loop")
        self.config = config
        self.source = source
        self.root = Path(root)
        self.points_per_phase = points_per_phase
        self.kinds = kinds
        self.sites = sites
        self.seed = seed

    # -- the three kinds of run ----------------------------------------------

    def _assemble(self, workdir: Path) -> AssemblyResult:
        return Assembler(self.config).assemble(self.source, workdir=workdir,
                                               resume=True)

    def golden(self) -> tuple[AssemblyResult, float]:
        """The unfaulted reference run (fresh workdir)."""
        start = time.perf_counter()
        result = self._assemble(self.root / "golden")
        return result, time.perf_counter() - start

    def probe(self) -> list[TracePoint]:
        """Enumerate every injectable operation with an empty plan."""
        plan = FaultPlan(seed=self.seed)
        with inject(plan):
            self._assemble(self.root / "probe")
        return plan.trace

    # -- point selection -------------------------------------------------------

    def select_points(self, trace: list[TracePoint]) -> list[tuple[TracePoint, str]]:
        """Spread points over phases, rotating fault kinds per site."""
        by_phase: dict[str | None, list[TracePoint]] = {}
        for point in trace:
            if point.site in self.sites:
                by_phase.setdefault(point.phase, []).append(point)
        chosen: list[tuple[TracePoint, str]] = []
        for phase in sorted(by_phase, key=lambda p: p or ""):
            candidates = by_phase[phase]
            want = min(self.points_per_phase, len(candidates))
            stride = len(candidates) / want
            picked = {int(i * stride) for i in range(want)}
            for j, index in enumerate(sorted(picked)):
                point = candidates[index]
                valid = [k for k in self.kinds if k in _SITE_KINDS[point.site]]
                kind = valid[(self.seed + j) % len(valid)] if valid else CRASH
                chosen.append((point, kind))
        return chosen

    # -- the loop ---------------------------------------------------------------

    def run(self) -> CrashLoopReport:
        """Golden → probe → kill at every selected point → verify recovery."""
        golden_result, golden_seconds = self.golden()
        report = CrashLoopReport(result_digest(golden_result), golden_seconds)
        points = self.select_points(self.probe())
        for index, (point, kind) in enumerate(points):
            workdir = self.root / f"crash_{index:03d}"
            plan = FaultPlan([Fault(kind, site=point.site, at_op=point.op)],
                             seed=self.seed)
            crashed = False
            start = time.perf_counter()
            with inject(plan):
                try:
                    self._assemble(workdir)
                except FaultInjected:
                    crashed = True
                except OSError as exc:
                    if exc.errno != errno.ENOSPC:
                        raise
                    crashed = True
            crash_seconds = time.perf_counter() - start
            start = time.perf_counter()
            resumed = self._assemble(workdir)
            resume_seconds = time.perf_counter() - start
            report.outcomes.append(CrashOutcome(
                point=point, kind=kind, crashed=crashed,
                digest_match=result_digest(resumed) == report.golden_digest,
                ledger_converged=self._ledger_converged(workdir),
                residue=tuple(scan_residue(workdir)),
                crash_seconds=crash_seconds, resume_seconds=resume_seconds))
        return report

    @staticmethod
    def _ledger_converged(workdir: Path) -> bool:
        state_path = workdir / STATE_FILE
        try:
            state = json.loads(state_path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return set(state.get("completed", [])) == _LEDGER_PHASES

"""String-graph substrate: the greedy graph, its bit-vector, and traversal.

Vertices are *oriented reads*: vertex ``2·r`` is read ``r`` forward, vertex
``2·r + 1`` is its Watson–Crick complement, so ``complement(v) == v ^ 1``.
Edges always come in complement pairs ``(u, v, l)`` / ``(v', u', l)``
(paper §II.A.2), and the greedy rule keeps in- and out-degree of every
vertex at most one (§III.C).
"""

from .bitvector import PackedBitVector
from .contigs import ContigSet, spell_contigs
from .gfa import write_gfa
from .string_graph import GreedyStringGraph, complement_vertices
from .traverse import PathSet, extract_paths

__all__ = [
    "PackedBitVector",
    "ContigSet",
    "spell_contigs",
    "write_gfa",
    "GreedyStringGraph",
    "complement_vertices",
    "PathSet",
    "extract_paths",
]

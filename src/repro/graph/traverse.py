"""Path extraction from the greedy string graph (paper §III.D, stage 1).

Traversal seeds are vertices with in-degree 0 and out-degree 1; each path is
extended by following out-edges until a vertex without one. Because degrees
are capped at one, a vertex belongs to at most one path, and every path has
a reverse-complement twin (or is its own twin); :meth:`PathSet.deduplicated`
keeps one canonical representative per pair.

The walk itself is vectorized: all paths advance one hop per step (a single
gather on the target array), so the host-side cost is O(total path length)
numpy work — the paper reports this stage takes under a minute even for the
human genome, and it is equally negligible here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphInvariantError
from .string_graph import NO_EDGE, GreedyStringGraph


@dataclass(frozen=True)
class PathSet:
    """Paths in flattened CSR-like form.

    ``vertices[path_offsets[i]:path_offsets[i+1]]`` are the oriented-read
    vertices of path ``i``, and ``overhangs`` aligns with ``vertices``: the
    number of leading bases each read contributes to the contig (its full
    length for the last read of a path).
    """

    path_offsets: np.ndarray  #: (n_paths + 1,) int64
    vertices: np.ndarray      #: (total,) int64
    overhangs: np.ndarray     #: (total,) int64

    @property
    def n_paths(self) -> int:
        """Number of paths."""
        return self.path_offsets.shape[0] - 1

    def path(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """The (vertices, overhangs) of one path."""
        start, stop = self.path_offsets[index], self.path_offsets[index + 1]
        return self.vertices[start:stop], self.overhangs[start:stop]

    def lengths(self) -> np.ndarray:
        """Number of reads per path."""
        return np.diff(self.path_offsets)

    def contig_lengths(self) -> np.ndarray:
        """Bases each path will spell (sum of its overhangs)."""
        sums = np.concatenate(([0], np.cumsum(self.overhangs)))
        return sums[self.path_offsets[1:]] - sums[self.path_offsets[:-1]]

    def deduplicated(self) -> "PathSet":
        """Drop the reverse-complement twin of each path.

        A path ``v₀ … v_k`` is kept iff ``v₀ ≤ complement(v_k)``; its twin
        ``comp(v_k) … comp(v₀)`` then satisfies the opposite inequality
        (self-complementary paths, where ``v₀ == comp(v_k)``, are their own
        twin and are kept).
        """
        firsts = self.vertices[self.path_offsets[:-1]]
        lasts = self.vertices[self.path_offsets[1:] - 1]
        keep = firsts <= (lasts ^ 1)
        return self._subset(np.nonzero(keep)[0])

    def _subset(self, path_indices: np.ndarray) -> "PathSet":
        lengths = self.lengths()[path_indices]
        new_offsets = np.concatenate(([0], np.cumsum(lengths)))
        take = np.concatenate([
            np.arange(self.path_offsets[i], self.path_offsets[i + 1])
            for i in path_indices
        ]) if path_indices.size else np.empty(0, dtype=np.int64)
        return PathSet(new_offsets, self.vertices[take], self.overhangs[take])


def extract_paths(graph: GreedyStringGraph, *, include_singletons: bool = True
                  ) -> PathSet:
    """Walk the graph into a :class:`PathSet`.

    ``include_singletons`` controls whether reads with no overlaps at all
    (in-degree 0, out-degree 0) become single-read paths; either way, every
    read appears in at most one returned path. Vertices on cycles are
    unreachable from any seed and are skipped (with equal-length reads a
    cycle can only arise from repeats spanning whole reads).
    """
    has_out = graph.target != NO_EDGE
    no_in = graph.in_degree == 0
    seeds = np.nonzero(has_out & no_in)[0]
    step_vertices: list[np.ndarray] = []
    step_paths: list[np.ndarray] = []
    current = seeds
    path_ids = np.arange(seeds.shape[0], dtype=np.int64)
    guard = 0
    while current.size:
        step_vertices.append(current)
        step_paths.append(path_ids)
        nxt = graph.target[current]
        alive = nxt != NO_EDGE
        current = nxt[alive]
        path_ids = path_ids[alive]
        guard += 1
        if guard > graph.n_vertices + 1:
            raise GraphInvariantError("traversal exceeded vertex count (cycle with a seed?)")

    if step_vertices:
        flat_paths = np.concatenate(step_paths)
        flat_vertices = np.concatenate(step_vertices)
        # Order by (path, step): steps were appended in order, so a stable
        # sort on the path id groups each path with steps already ascending.
        order = np.argsort(flat_paths, kind="stable")
        flat_paths = flat_paths[order]
        flat_vertices = flat_vertices[order]
        lengths = np.bincount(flat_paths, minlength=seeds.shape[0])
    else:
        flat_vertices = np.empty(0, dtype=np.int64)
        lengths = np.empty(0, dtype=np.int64)

    if include_singletons:
        singles = np.nonzero(~has_out & no_in)[0]
        flat_vertices = np.concatenate([flat_vertices, singles])
        lengths = np.concatenate([lengths, np.ones(singles.shape[0], dtype=np.int64)])

    offsets = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    overhangs = graph.overhangs()[flat_vertices]
    return PathSet(offsets, flat_vertices, overhangs)

"""A packed bit-vector over vertex ids.

This is the out-degree oracle of the paper's greedy graph construction: one
bit per vertex, 64 vertices per word. In the distributed pipeline the raw
words are shipped between nodes as the "token" that serializes graph
building (§III.E.3), so the vector supports cheap (de)serialization.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class PackedBitVector:
    """Fixed-size bit-vector with vectorized batch get/set."""

    def __init__(self, n_bits: int, words: np.ndarray | None = None):
        if n_bits < 0:
            raise ConfigError("n_bits must be non-negative")
        self.n_bits = n_bits
        n_words = -(-n_bits // 64)
        if words is None:
            self._words = np.zeros(n_words, dtype=np.uint64)
        else:
            if words.shape != (n_words,):
                raise ConfigError("word array does not match n_bits")
            self._words = words.astype(np.uint64)

    def _split(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_bits):
            raise ConfigError("bit index out of range")
        return indices >> 6, np.uint64(1) << (indices & 63).astype(np.uint64)

    def get(self, indices: np.ndarray | int) -> np.ndarray:
        """Boolean array: whether each index's bit is set."""
        scalar = np.isscalar(indices)
        words, masks = self._split(np.atleast_1d(indices))
        result = (self._words[words] & masks) != 0
        return bool(result[0]) if scalar else result

    def set(self, indices: np.ndarray | int) -> None:
        """Set the given bits (duplicates allowed)."""
        words, masks = self._split(np.atleast_1d(indices))
        np.bitwise_or.at(self._words, words, masks)

    def count(self) -> int:
        """Number of set bits."""
        return int(np.bitwise_count(self._words).sum())

    @property
    def nbytes(self) -> int:
        """Serialized size (what the distributed token costs to ship)."""
        return self._words.nbytes

    def to_bytes(self) -> bytes:
        """Serialize the vector's words (little-endian uint64)."""
        return self._words.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes, n_bits: int) -> "PackedBitVector":
        """Deserialize a vector previously produced by :meth:`to_bytes`."""
        words = np.frombuffer(data, dtype=np.uint64).copy()
        return cls(n_bits, words)

    def copy(self) -> "PackedBitVector":
        """Deep copy."""
        return PackedBitVector(self.n_bits, self._words.copy())

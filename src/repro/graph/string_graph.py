"""The greedy string graph (paper §III.C).

Candidate edges arrive from the reduce phase in **descending overlap-length
order** (longest overlaps first — the greedy heuristic of PHRAP/Edena the
paper adopts). For each candidate ``(u, v, l)`` the graph checks its
out-degree bit-vector: if either ``u`` or ``v' = complement(v)`` already has
an outgoing edge the candidate is discarded; otherwise both ``(u, v, l)``
and ``(v', u', l)`` are inserted and both bits set. Complement symmetry then
guarantees in-degree ≤ 1 as well (an in-edge of ``v`` is an out-edge of
``v'``).

Candidates inside one batch are resolved in array order with exact
sequential-greedy semantics, but vectorized: each round accepts every
candidate whose two claimed vertices (``u`` and ``v'``) are not claimed by
any earlier candidate in the remaining list, applies them, re-filters, and
repeats. Each round accepts at least the earliest remaining candidate, and
an accepted candidate is always one sequential greedy would accept, so the
fixpoint equals the sequential result.

The graph lives in *host* memory (the paper keeps it there: 2.5 G edges ≈
12 GB, far beyond device capacity, and fine-grained device locking was found
"detrimental"); an optional host memory pool accounts its footprint.
"""

from __future__ import annotations

import numpy as np

from ..device.memory import MemoryPool
from ..errors import ConfigError, GraphInvariantError
from .bitvector import PackedBitVector

NO_EDGE = np.int64(-1)


def complement_vertices(vertices: np.ndarray | int):
    """The Watson–Crick complement vertex of each oriented-read vertex."""
    return np.asarray(vertices) ^ 1 if not np.isscalar(vertices) else vertices ^ 1


class GreedyStringGraph:
    """At-most-one-in/one-out string graph over ``2 · n_reads`` vertices."""

    def __init__(self, n_reads: int, read_length: int,
                 host_pool: MemoryPool | None = None):
        if n_reads < 0 or read_length < 1:
            raise ConfigError("need n_reads >= 0 and read_length >= 1")
        self.n_reads = n_reads
        self.read_length = read_length
        self.n_vertices = 2 * n_reads
        self.out_bits = PackedBitVector(self.n_vertices)
        self.target = np.full(self.n_vertices, NO_EDGE, dtype=np.int64)
        self.overlap = np.zeros(self.n_vertices, dtype=np.uint16)
        self.in_degree = np.zeros(self.n_vertices, dtype=np.uint8)
        self._n_edges = 0
        self._candidates_seen = 0
        self._allocation = None
        if host_pool is not None:
            self._allocation = host_pool.alloc(self.nbytes, label="string-graph")

    @property
    def nbytes(self) -> int:
        """Host-memory footprint of the graph arrays."""
        return (self.target.nbytes + self.overlap.nbytes + self.in_degree.nbytes
                + self.out_bits.nbytes)

    @property
    def n_edges(self) -> int:
        """Directed edges inserted (complement pairs count as two)."""
        return self._n_edges

    @property
    def candidates_seen(self) -> int:
        """Candidate edges offered to the greedy rule so far."""
        return self._candidates_seen

    def release(self) -> None:
        """Free the host-pool reservation (if any)."""
        if self._allocation is not None:
            self._allocation.free()

    # -- construction -------------------------------------------------------

    def add_candidates(self, sources: np.ndarray, targets: np.ndarray,
                       length: int) -> int:
        """Offer a batch of candidate edges of one overlap length, in order.

        ``sources[i] → targets[i]`` with overlap ``length``. Returns the
        number of candidates accepted (complement twins not counted).
        """
        if not 1 <= length < self.read_length:
            raise ConfigError(f"overlap length {length} outside [1, {self.read_length})")
        u = np.asarray(sources, dtype=np.int64)
        v = np.asarray(targets, dtype=np.int64)
        if u.shape != v.shape:
            raise ConfigError("sources/targets length mismatch")
        self._candidates_seen += u.shape[0]
        if u.size and (min(u.min(), v.min()) < 0
                       or max(u.max(), v.max()) >= self.n_vertices):
            raise ConfigError("vertex id out of range")
        # Same-read pairs (self-loops and palindromic self-overlaps) never
        # become edges.
        keep = (u >> 1) != (v >> 1)
        u, v = u[keep], v[keep]
        accepted_total = 0
        while u.size:
            # Greedy eligibility against the current bit-vector.
            claim_a, claim_b = u, v ^ 1
            eligible = ~(self.out_bits.get(claim_a) | self.out_bits.get(claim_b))
            u, v = u[eligible], v[eligible]
            if not u.size:
                break
            accept = self._first_claim_mask(u, v ^ 1)
            self._apply_edges(u[accept], v[accept], length)
            accepted_total += int(accept.sum())
            u, v = u[~accept], v[~accept]
        return accepted_total

    @staticmethod
    def _first_claim_mask(claim_a: np.ndarray, claim_b: np.ndarray) -> np.ndarray:
        """Candidates whose both claims are first-claimed by themselves."""
        m = claim_a.shape[0]
        claim_vertices = np.concatenate([claim_a, claim_b])
        claim_owner = np.concatenate([np.arange(m), np.arange(m)])
        order = np.lexsort((claim_owner, claim_vertices))
        sorted_vertices = claim_vertices[order]
        firsts = np.ones(2 * m, dtype=bool)
        firsts[1:] = sorted_vertices[1:] != sorted_vertices[:-1]
        # first_claimer[vertex] propagated to every claim of that vertex
        group_first_owner = np.minimum.reduceat(
            claim_owner[order], np.nonzero(firsts)[0])
        group_index = np.cumsum(firsts) - 1
        first_owner_sorted = group_first_owner[group_index]
        first_owner = np.empty(2 * m, dtype=np.int64)
        first_owner[order] = first_owner_sorted
        owners = np.arange(m)
        return (first_owner[:m] == owners) & (first_owner[m:] == owners)

    def _apply_edges(self, u: np.ndarray, v: np.ndarray, length: int) -> None:
        cu, cv = v ^ 1, u ^ 1
        self.target[u] = v
        self.target[cu] = cv
        self.overlap[u] = length
        self.overlap[cu] = length
        self.out_bits.set(np.concatenate([u, cu]))
        np.add.at(self.in_degree, v, 1)
        np.add.at(self.in_degree, cv, 1)
        self._n_edges += 2 * u.shape[0]

    # -- queries ----------------------------------------------------------

    def out_vertex(self, vertex: int) -> int:
        """Target of ``vertex``'s out-edge, or -1."""
        return int(self.target[vertex])

    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as ``(sources, targets, overlaps)`` arrays."""
        sources = np.nonzero(self.target != NO_EDGE)[0]
        return sources, self.target[sources], self.overlap[sources].astype(np.int64)

    def overhangs(self) -> np.ndarray:
        """Per-vertex overhang length: ``L − overlap`` (or ``L`` with no edge)."""
        out = np.full(self.n_vertices, self.read_length, dtype=np.int64)
        has_edge = self.target != NO_EDGE
        out[has_edge] = self.read_length - self.overlap[has_edge].astype(np.int64)
        return out

    # -- invariants -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate degree bounds and complement symmetry; raises on breakage."""
        sources, targets, overlaps = self.edge_list()
        if np.unique(sources).shape[0] != sources.shape[0]:
            raise GraphInvariantError("out-degree > 1 detected")
        if targets.size and np.unique(targets).shape[0] != targets.shape[0]:
            raise GraphInvariantError("in-degree > 1 detected")
        if (self.in_degree > 1).any():
            raise GraphInvariantError("in-degree counter exceeded 1")
        comp_targets = self.target[targets ^ 1]
        if not np.array_equal(comp_targets, sources ^ 1):
            raise GraphInvariantError("complement edge symmetry broken")
        if not np.array_equal(self.overlap[targets ^ 1], self.overlap[sources]):
            raise GraphInvariantError("complement overlap symmetry broken")
        bits_set = self.out_bits.get(np.arange(self.n_vertices)) if self.n_vertices else \
            np.zeros(0, dtype=bool)
        if not np.array_equal(np.nonzero(bits_set)[0], sources):
            raise GraphInvariantError("out-degree bit-vector out of sync")

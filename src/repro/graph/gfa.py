"""GFA 1.0 export of string graphs and assemblies.

GFA (Graphical Fragment Assembly) is the interchange format assembly tools
(Bandage, gfatools, SGA's successors) consume. The export writes:

* one ``S`` segment per *read* (sequence optional, to keep files small),
* one ``L`` link per stored overlap edge, with orientation flags derived
  from the vertex encoding (vertex ``2r`` = read ``r`` forward ``+``,
  ``2r+1`` = reverse ``-``) and a ``<overlap>M`` CIGAR,
* one ``P`` path line per assembled contig (when a
  :class:`~repro.graph.traverse.PathSet` is supplied).

Because edges come in complement pairs, only the canonical member of each
pair is emitted (GFA links are implicitly bidirected), halving the file.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from ..errors import ConfigError
from ..seq.alphabet import decode
from .string_graph import GreedyStringGraph
from .traverse import PathSet

_ORIENT = ("+", "-")


def _segment_name(read_id: int) -> str:
    return f"read{read_id}"


def _vertex_ref(vertex: int) -> str:
    return f"{_segment_name(vertex >> 1)}\t{_ORIENT[vertex & 1]}"


def write_gfa(handle_or_path: str | Path | TextIO, graph: GreedyStringGraph, *,
              paths: PathSet | None = None,
              read_codes: np.ndarray | None = None) -> dict[str, int]:
    """Write the graph (and optional contig paths) as GFA 1.0.

    ``read_codes`` — an optional ``(n_reads, L)`` matrix; when given, ``S``
    lines carry real sequences, otherwise ``*`` placeholders with an ``LN``
    tag. Returns counts of emitted record types.
    """
    if read_codes is not None and read_codes.shape[0] != graph.n_reads:
        raise ConfigError("read_codes row count must equal graph.n_reads")
    owns = not hasattr(handle_or_path, "write")
    handle = open(handle_or_path, "w") if owns else handle_or_path
    counts = {"S": 0, "L": 0, "P": 0}
    try:
        handle.write("H\tVN:Z:1.0\n")
        for read_id in range(graph.n_reads):
            if read_codes is not None:
                sequence = decode(read_codes[read_id])
                handle.write(f"S\t{_segment_name(read_id)}\t{sequence}\n")
            else:
                handle.write(f"S\t{_segment_name(read_id)}\t*\t"
                             f"LN:i:{graph.read_length}\n")
            counts["S"] += 1

        sources, targets, overlaps = graph.edge_list()
        for u, v, overlap in zip(sources, targets, overlaps):
            # Canonical member of each complement pair: smaller source vertex.
            if int(u) > int(v ^ 1):
                continue
            handle.write(f"L\t{_vertex_ref(int(u))}\t{_vertex_ref(int(v))}\t"
                         f"{int(overlap)}M\n")
            counts["L"] += 1

        if paths is not None:
            for index in range(paths.n_paths):
                vertices, _ = paths.path(index)
                steps = ",".join(
                    f"{_segment_name(int(v) >> 1)}{_ORIENT[int(v) & 1]}"
                    for v in vertices)
                cigars = ",".join(
                    f"{graph.read_length - int(o)}M"
                    for o in paths.path(index)[1][:-1]) or "*"
                handle.write(f"P\tcontig{index}\t{steps}\t{cigars}\n")
                counts["P"] += 1
    finally:
        if owns:
            handle.close()
    return counts


def read_gfa_summary(handle_or_path: str | Path | TextIO) -> dict[str, int]:
    """Count record types of a GFA file (round-trip checking helper)."""
    owns = not hasattr(handle_or_path, "read")
    handle = open(handle_or_path) if owns else handle_or_path
    counts: dict[str, int] = {}
    try:
        for line in handle:
            if line and line[0].isalpha():
                counts[line[0]] = counts.get(line[0], 0) + 1
    finally:
        if owns:
            handle.close()
    return counts

"""Contig containers and in-memory contig spelling.

:class:`ContigSet` is the flat (codes, offsets) container every assembler
in this repository produces; :func:`spell_contigs` spells a
:class:`~repro.graph.traverse.PathSet` directly from an in-memory oriented
code matrix — the simple path used by the baselines and by tests (the
pipeline's compress phase spells the same thing while *streaming* reads
from disk; tests assert both agree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .traverse import PathSet


@dataclass(frozen=True)
class ContigSet:
    """All contigs as one flat 2-bit code buffer plus offsets."""

    flat_codes: np.ndarray    #: (total_bases,) uint8
    offsets: np.ndarray       #: (n_contigs + 1,) int64

    @property
    def n_contigs(self) -> int:
        """Number of contigs."""
        return self.offsets.shape[0] - 1

    def lengths(self) -> np.ndarray:
        """Per-contig base counts."""
        return np.diff(self.offsets)

    def contig_codes(self, index: int) -> np.ndarray:
        """The 2-bit codes of one contig."""
        return self.flat_codes[self.offsets[index]:self.offsets[index + 1]]

    def __iter__(self):
        return (self.contig_codes(i) for i in range(self.n_contigs))


def spell_contigs(paths: PathSet, oriented_codes: np.ndarray) -> ContigSet:
    """Spell paths into contigs from an in-memory oriented code matrix.

    ``oriented_codes`` is ``(2·n_reads, L)`` with row ``v`` the codes of
    vertex ``v`` (row ``2r`` = read ``r``, row ``2r+1`` = its reverse
    complement). Each path entry contributes the first ``overhang`` bases of
    its oriented read; because contigs are concatenated in path order, the
    flat output is exactly those ragged row-prefixes back to back.
    """
    if oriented_codes.ndim != 2:
        raise ConfigError("oriented_codes must be a (2*n_reads, L) matrix")
    contig_lengths = paths.contig_lengths()
    offsets = np.concatenate(([0], np.cumsum(contig_lengths))).astype(np.int64)
    takes = paths.overhangs
    if takes.shape[0] == 0:
        return ContigSet(np.empty(0, dtype=np.uint8), offsets)
    rows = np.repeat(paths.vertices, takes)
    entry_starts = np.cumsum(takes) - takes
    cols = np.arange(rows.shape[0]) - np.repeat(entry_starts, takes)
    return ContigSet(oriented_codes[rows, cols].astype(np.uint8), offsets)

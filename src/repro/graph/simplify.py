"""Full (non-greedy) overlap graphs and transitive reduction.

The paper's assembler keeps only greedy best-overlap edges; classic string
graph assemblers (Myers 2005, SGA) instead keep *all* overlap edges and
remove the redundant transitive ones. This module implements that
alternative at small scale so the design choice can be ablated
(DESIGN.md D3): memory per vertex, edge counts, and resulting contigs are
compared in ``benchmarks/bench_ablation_greedy.py``.

For fixed-length reads (length ``L``) an edge ``u→w`` with overlap ``l_uw``
is transitive iff some mid vertex ``v`` has ``u→v`` (overlap ``l_uv``) and
``v→w`` (overlap ``l_vw``) with ``l_uv + l_vw − L == l_uw`` — i.e. walking
``u→v→w`` spells the same bases as ``u→w``.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import ConfigError


class FullOverlapGraph:
    """All-overlaps string graph over oriented-read vertices (small scale)."""

    def __init__(self, n_reads: int, read_length: int):
        if read_length < 1:
            raise ConfigError("read_length must be >= 1")
        self.n_reads = n_reads
        self.read_length = read_length
        self.n_vertices = 2 * n_reads
        self._adjacency: dict[int, dict[int, int]] = defaultdict(dict)

    def add_edge(self, u: int, v: int, overlap: int) -> None:
        """Insert edge ``u→v`` keeping the longest overlap per vertex pair."""
        if not 1 <= overlap < self.read_length:
            raise ConfigError("overlap out of range")
        current = self._adjacency[u].get(v)
        if current is None or overlap > current:
            self._adjacency[u][v] = overlap

    def add_edges(self, sources: np.ndarray, targets: np.ndarray,
                  overlaps: np.ndarray) -> None:
        """Bulk edge insertion (same-read pairs are skipped)."""
        for u, v, l in zip(np.asarray(sources), np.asarray(targets), np.asarray(overlaps)):
            if (int(u) >> 1) != (int(v) >> 1):
                self.add_edge(int(u), int(v), int(l))

    @property
    def n_edges(self) -> int:
        """Total directed edges."""
        return sum(len(nbrs) for nbrs in self._adjacency.values())

    def out_edges(self, u: int) -> list[tuple[int, int]]:
        """``(target, overlap)`` list of ``u``, longest overlap first."""
        return sorted(self._adjacency.get(u, {}).items(), key=lambda e: -e[1])

    def nbytes_estimate(self) -> int:
        """Rough memory footprint: 12 bytes per stored edge plus dict slots."""
        return self.n_edges * 12 + len(self._adjacency) * 8

    # -- simplification ------------------------------------------------------

    def transitive_reduction(self) -> int:
        """Remove transitive edges in place; returns how many were removed."""
        length = self.read_length
        removed = 0
        for u, neighbours in list(self._adjacency.items()):
            if len(neighbours) < 2:
                continue
            doomed = []
            for w, l_uw in neighbours.items():
                for v, l_uv in neighbours.items():
                    if v == w or l_uv <= l_uw:
                        continue
                    l_vw = self._adjacency.get(v, {}).get(w)
                    if l_vw is not None and l_uv + l_vw - length == l_uw:
                        doomed.append(w)
                        break
            for w in doomed:
                del neighbours[w]
                removed += 1
        return removed

    def unitig_paths(self) -> list[list[tuple[int, int]]]:
        """Maximal unambiguous paths as ``[(vertex, overhang), …]`` lists.

        A path extends through ``u→v`` only when ``u`` has exactly one
        out-edge and ``v`` exactly one in-edge (the classic unitig rule).
        """
        in_degree: dict[int, int] = defaultdict(int)
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                in_degree[v] += 1

        def sole_successor(u: int) -> tuple[int, int] | None:
            nbrs = self._adjacency.get(u, {})
            if len(nbrs) != 1:
                return None
            (v, l), = nbrs.items()
            return (v, l) if in_degree[v] == 1 else None

        paths: list[list[tuple[int, int]]] = []
        visited: set[int] = set()
        for u in range(self.n_vertices):
            if u in visited:
                continue
            # Seed: u is not the unambiguous continuation of anything.
            has_unambiguous_pred = any(
                sole_successor(p) == (u, l)
                for p, nbrs in self._adjacency.items() for v, l in nbrs.items() if v == u
            )
            if has_unambiguous_pred:
                continue
            path: list[tuple[int, int]] = []
            vertex = u
            while vertex not in visited:
                visited.add(vertex)
                succ = sole_successor(vertex)
                if succ is None:
                    path.append((vertex, self.read_length))
                    break
                path.append((vertex, self.read_length - succ[1]))
                vertex = succ[0]
            if path:
                paths.append(path)
        return paths

"""SGA comparison model (Table VI).

LaSAGNA's side comes from :mod:`repro.model.single_node` (map + sort +
reduce — the paper compares against SGA's preprocess + index + overlap,
i.e. both sides exclude contig generation and error correction). SGA's
side is modeled as a fitted per-base throughput: the published Table VI
values imply a remarkably stable ~1.1–1.5 Mbases/s for ropebwt indexing +
overlap on the paper's Xeons, slightly slower on the 64 GB node (more
index paging). The OOM rule uses the same ropebwt-class footprint constant
as the executable baseline (:mod:`repro.baselines.sga`).
"""

from __future__ import annotations

from ..baselines.sga import SGA_MODEL_BYTES_PER_BASE
from ..config import MemoryConfig
from ..device.specs import DeviceSpec
from .single_node import model_phase_seconds
from .workload import Workload

#: Fitted SGA throughput (bases/second) by host-memory preset.
SGA_BASES_PER_SECOND = {"128 GB": 1.30e6, "64 GB": 1.15e6}


def model_sga_seconds(workload: Workload, host_bytes: int) -> float | None:
    """Modeled SGA preprocess+index+overlap seconds; ``None`` = OOM."""
    bases = workload.n_reads * workload.read_length
    if bases * SGA_MODEL_BYTES_PER_BASE > host_bytes:
        return None
    throughput = SGA_BASES_PER_SECOND["128 GB"] if host_bytes >= 100e9 \
        else SGA_BASES_PER_SECOND["64 GB"]
    return bases / throughput


def model_lasagna_comparable_seconds(workload: Workload, memory: MemoryConfig,
                                     device: DeviceSpec | str) -> float:
    """Modeled LaSAGNA seconds over the phases Table VI compares."""
    phases = model_phase_seconds(workload, memory, device)
    return phases["load"] + phases["map"] + phases["sort"] + phases["reduce"]

"""Cluster scaling model (Fig. 10).

Phase-level composition over ``n`` nodes:

* **map** and **sort** divide by ``n`` (independent blocks / partitions,
  aggregate disk bandwidth — the effect the paper attributes the speedup
  to),
* **shuffle** exists only for ``n > 1``: each node re-reads its map output,
  ships the ``(n−1)/n`` remote fraction over the network, and writes its
  owned partitions — all concurrently across nodes,
* **reduce** follows the paper's own law ``t_o · p/n + t_g · p`` (overlap
  finding parallel, bit-vector token serial), with
  ``n_max = t_o / t_g`` bounding useful scaling,
* **load**/**compress** stay serial on the master.
"""

from __future__ import annotations

from ..config import MemoryConfig
from ..device.specs import DeviceSpec
from ..distributed.network import NetworkSpec
from .single_node import MODEL_DISK_READ, MODEL_DISK_WRITE, model_phase_seconds
from .workload import Workload

#: Fraction of reduce-phase time spent inserting greedy edges (t_g / (t_o+t_g)).
REDUCE_GRAPH_FRACTION = 0.06


def model_distributed_seconds(workload: Workload, memory: MemoryConfig,
                              device: DeviceSpec | str, n_nodes: int, *,
                              network: NetworkSpec | None = None,
                              ) -> dict[str, float]:
    """Modeled per-phase seconds for an ``n_nodes`` cluster run."""
    network = network if network is not None else NetworkSpec()
    single = model_phase_seconds(workload, memory, device)
    total_tuple_bytes = workload.total_tuple_nbytes

    phases: dict[str, float] = {}
    phases["load"] = single["load"]
    phases["map"] = single["map"] / n_nodes
    if n_nodes > 1:
        per_node_bytes = total_tuple_bytes / n_nodes
        remote_fraction = (n_nodes - 1) / n_nodes
        phases["shuffle"] = (per_node_bytes / MODEL_DISK_READ
                             + per_node_bytes / MODEL_DISK_WRITE
                             + network.transfer_seconds(
                                 int(per_node_bytes * remote_fraction)))
    else:
        phases["shuffle"] = 0.0
    phases["sort"] = single["sort"] / n_nodes

    p = 2 * workload.n_partition_lengths
    t_total = single["reduce"]
    t_g = REDUCE_GRAPH_FRACTION * t_total / p
    t_o = (1.0 - REDUCE_GRAPH_FRACTION) * t_total / p
    phases["reduce"] = t_o * p / n_nodes + t_g * p
    phases["compress"] = single["compress"]
    phases["total"] = sum(phases.values())
    return phases


def max_useful_nodes(workload: Workload, memory: MemoryConfig,
                     device: DeviceSpec | str) -> float:
    """The paper's scalability bound ``n_max = t_o / t_g`` for reduce."""
    return (1.0 - REDUCE_GRAPH_FRACTION) / REDUCE_GRAPH_FRACTION

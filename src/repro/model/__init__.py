"""Analytic paper-scale model.

Evaluates the shared cost formulas of :mod:`repro.device.costs` (plus a
small number of fitted I/O constants) symbolically over the *published*
Table I dataset sizes, regenerating the paper's evaluation artefacts at
full scale — something the scaled measured runs cannot do directly:

* :mod:`repro.model.paper_values` — every number the paper publishes
  (Tables I–VI, digitized Figs. 8–10), used as the "paper" column of every
  benchmark,
* :mod:`repro.model.workload` — derived workload quantities (tuple counts,
  partition bytes) from a dataset spec,
* :mod:`repro.model.single_node` — per-phase time and peak-memory model
  (Tables II–V),
* :mod:`repro.model.sorting` — the block-size/GPU sorting model
  (Figs. 8–9),
* :mod:`repro.model.comparison` — the SGA comparison model (Table VI),
* :mod:`repro.model.distributed` — the cluster scaling model (Fig. 10).
"""

from .workload import Workload
from .single_node import (model_memory_peaks, model_multi_gpu_seconds,
                          model_phase_components, model_phase_seconds)
from .sorting import model_partition_sort_seconds
from .comparison import model_sga_seconds
from .distributed import model_distributed_seconds

__all__ = [
    "Workload",
    "model_phase_seconds",
    "model_phase_components",
    "model_multi_gpu_seconds",
    "model_memory_peaks",
    "model_partition_sort_seconds",
    "model_sga_seconds",
    "model_distributed_seconds",
]

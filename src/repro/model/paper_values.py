"""Every number the paper publishes, transcribed for comparison tables.

Tables are verbatim; figure series are digitized approximations from the
plots (marked so). Benchmarks print these as their "paper" column and
EXPERIMENTS.md records shape agreement against them.
"""

from __future__ import annotations

from ..units import parse_duration

DATASET_ORDER = ("H.Chr 14", "Bumblebee", "Parakeet", "H.Genome")

#: Table I — Illumina datasets used for evaluation.
TABLE1 = {
    "H.Chr 14": {"length": 101, "reads": 45_711_162, "bases": 4_559_613_772,
                 "size_gb": 9.2, "min_overlap": 63},
    "Bumblebee": {"length": 124, "reads": 316_172_570, "bases": 33_562_702_234,
                  "size_gb": 85.0, "min_overlap": 85},
    "Parakeet": {"length": 150, "reads": 608_709_922, "bases": 91_306_488_300,
                 "size_gb": 203.0, "min_overlap": 111},
    "H.Genome": {"length": 100, "reads": 1_247_518_392, "bases": 124_751_839_200,
                 "size_gb": 398.0, "min_overlap": 63},
}

PHASE_ORDER = ("map", "sort", "reduce", "compress", "load")


def _phases(map_, sort, reduce, compress, load, total):
    return {
        "map": parse_duration(map_),
        "sort": parse_duration(sort),
        "reduce": parse_duration(reduce),
        "compress": parse_duration(compress),
        "load": parse_duration(load),
        "total": parse_duration(total),
    }


#: Table II — single-node assembly seconds, 128 GB host + K40 (12 GB).
TABLE2_K40 = {
    "H.Chr 14": _phases("5m 32s", "9m 36s", "4m 47s", "6s", "25s", "20m 26s"),
    "Bumblebee": _phases("33m 20s", "1h 21m 0s", "26m 6s", "20s", "3m 9s", "2h 23m 55s"),
    "Parakeet": _phases("1h 40m 58s", "4h 57m 56s", "1h 17m 31s", "26s", "5m 57s",
                        "8h 2m 48s"),
    "H.Genome": _phases("2h 43m 15s", "11h 05m 45s", "2h 20m 33s", "57s", "10m 39s",
                        "16h 21m 09s"),
}

#: Table III — single-node assembly seconds, 64 GB host + K20X (6 GB).
TABLE3_K20 = {
    "H.Chr 14": _phases("5m 59s", "11m 12s", "4m 26s", "5s", "23s", "22m 5s"),
    "Bumblebee": _phases("36m 8s", "1h 35m 25s", "27m 35s", "19s", "2m 51s",
                         "2h 42m 18s"),
    "Parakeet": _phases("1h 47m 58s", "5h 41m 23s", "1h 14m 13s", "26s", "5m 31s",
                        "8h 49m 31s"),
    "H.Genome": _phases("2h 50m 28s", "14h 53m 21s", "2h 31m 43s", "56s", "11m 48s",
                        "20h 28m 16s"),
}

#: Table IV — peak memory (GB), 128 GB host + K40.
TABLE4_MEMORY_K40 = {
    "H.Chr 14": {"host": {"map": 14.48, "sort": 14.92, "reduce": 16.87, "contig": 16.78},
                 "device": {"map": 10.74, "sort": 6.46, "reduce": 4.89}},
    "Bumblebee": {"host": {"map": 14.64, "sort": 34.40, "reduce": 19.55, "contig": 22.14},
                  "device": {"map": 10.74, "sort": 9.02, "reduce": 4.92}},
    "Parakeet": {"host": {"map": 16.82, "sort": 59.21, "reduce": 28.64, "contig": 28.39},
                 "device": {"map": 10.73, "sort": 9.02, "reduce": 4.92}},
    "H.Genome": {"host": {"map": 16.39, "sort": 103.73, "reduce": 38.11, "contig": 44.24},
                 "device": {"map": 10.73, "sort": 9.02, "reduce": 4.92}},
}

#: Table V — peak memory (GB), 64 GB host + K20X.
TABLE5_MEMORY_K20 = {
    "H.Chr 14": {"host": {"map": 7.23, "sort": 9.71, "reduce": 8.99, "contig": 9.01},
                 "device": {"map": 5.41, "sort": 4.54, "reduce": 2.47}},
    "Bumblebee": {"host": {"map": 9.03, "sort": 30.04, "reduce": 13.34, "contig": 18.14},
                  "device": {"map": 5.41, "sort": 4.54, "reduce": 2.50}},
    "Parakeet": {"host": {"map": 8.84, "sort": 54.20, "reduce": 19.48, "contig": 22.79},
                 "device": {"map": 5.40, "sort": 4.54, "reduce": 2.50}},
    "H.Genome": {"host": {"map": 9.18, "sort": 54.66, "reduce": 31.31, "contig": 38.95},
                 "device": {"map": 5.40, "sort": 4.54, "reduce": 2.50}},
}

#: Table VI — SGA (preprocess+index+overlap) vs LaSAGNA, seconds.
#: ``None`` marks the paper's out-of-memory cell.
TABLE6_SGA = {
    "H.Chr 14": {"sga_64": 3081, "sga_128": 3039, "lasagna_64": 1325, "lasagna_128": 1226},
    "Bumblebee": {"sga_64": 26360, "sga_128": 23958, "lasagna_64": 9738,
                  "lasagna_128": 8635},
    "Parakeet": {"sga_64": 93747, "sga_128": 88229, "lasagna_64": 31771,
                 "lasagna_128": 28968},
    "H.Genome": {"sga_64": None, "sga_128": 111024, "lasagna_64": 73696,
                 "lasagna_128": 58869},
}

#: Table VI speedup range the paper headlines.
TABLE6_SPEEDUP_RANGE = (1.89, 3.05)

#: Fig. 8 (digitized, approximate): average per-partition sort seconds on a
#: K40 for (host block-size, device block-size) in records. The paper's
#: qualitative claims: host block-size dominates; beyond a single-pass host
#: block (2.56 G records) no further gain.
FIG8_HOST_BLOCKS = (160_000_000, 320_000_000, 640_000_000, 1_280_000_000, 2_560_000_000)
FIG8_DEVICE_BLOCKS = (5_000_000, 10_000_000, 20_000_000, 40_000_000)

#: Fig. 9 (digitized, approximate): GPUs ordered fastest→slowest at large
#: host block-sizes, converging as blocks shrink (I/O-bound regime).
FIG9_GPU_ORDER_FAST_TO_SLOW = ("V100", "P100", "P40", "K40")

#: Fig. 10 (digitized, approximate): 398 GB H.Genome on K20 nodes — total
#: pipeline hours by node count; headline "a little over 5 hours" at n=8.
FIG10_TOTAL_HOURS = {1: 20.5, 2: 13.0, 4: 8.0, 8: 5.3}

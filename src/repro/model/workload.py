"""Derived workload quantities for the analytic model."""

from __future__ import annotations

from dataclasses import dataclass

from ..seq.datasets import DatasetSpec

#: The paper's KV record: 128-bit fingerprint + 32-bit read-id.
PAPER_RECORD_NBYTES = 20


@dataclass(frozen=True)
class Workload:
    """Size parameters of one assembly workload."""

    n_reads: int
    read_length: int
    min_overlap: int
    fastq_bytes: int
    record_nbytes: int = PAPER_RECORD_NBYTES

    @staticmethod
    def from_spec(spec: DatasetSpec, *, paper_scale: bool = True,
                  scale: float | None = None) -> "Workload":
        """Build from a dataset spec (published sizes by default)."""
        if paper_scale:
            return Workload(spec.paper.reads, spec.read_length, spec.min_overlap,
                            spec.paper.size_bytes)
        n_reads = spec.scaled_reads(scale)
        return Workload(n_reads, spec.read_length, spec.min_overlap,
                        n_reads * (2 * spec.read_length + 16))

    @property
    def n_partition_lengths(self) -> int:
        """Number of length partitions: ``l_max − l_min``."""
        return self.read_length - self.min_overlap

    @property
    def records_per_partition(self) -> int:
        """KV records per partition per side: both orientations of each read."""
        return 2 * self.n_reads

    @property
    def partition_nbytes(self) -> int:
        """Bytes of one partition file."""
        return self.records_per_partition * self.record_nbytes

    @property
    def total_tuple_nbytes(self) -> int:
        """All map-phase output bytes (S and P sides, every length)."""
        return 2 * self.n_partition_lengths * self.partition_nbytes

    @property
    def packed_store_nbytes(self) -> int:
        """Bytes of the 2-bit packed read store."""
        return self.n_reads * (-(-self.read_length // 4))

    @property
    def graph_nbytes(self) -> int:
        """Host bytes of the greedy graph (2 vertices/read, ~11 B/vertex)."""
        return 2 * self.n_reads * 11

    @property
    def contig_nbytes(self) -> int:
        """Rough contig-buffer bytes (≈ one genome copy per strand)."""
        return max(1, int(self.n_reads * self.read_length // 18))

"""Block-size and GPU sorting model (Figs. 8–9).

Average sort time of one H.Genome partition (2.5 G records of 20 bytes) as
a function of the host block-size ``m_h``, the device block-size ``m_d``,
the merge fanout ``k``, and the GPU. The structure mirrors
:mod:`repro.extmem.sort` exactly:

* disk passes = ``1 + ⌈log_k(initial runs)⌉`` — controlled by ``m_h`` and
  the fanout (``k = 2`` is the paper's pairwise Algorithm 1),
* device merge rounds inside a host block = ``⌈log_k(m_h / m_d)⌉`` —
  controlled by ``m_d`` and executed at device-memory bandwidth,

which yields both headline observations: host block-size dominates (disk
passes are the expensive axis) and GPUs converge as blocks shrink (the
disk term swamps the device term). A fanout-k merge round performs
``⌈log₂ k⌉`` comparison levels per record (the tournament depth of the
gathered kernel), so raising ``k`` trades kernel comparisons — cheap — for
disk passes — expensive.
"""

from __future__ import annotations

import math

from ..device import costs
from ..device.specs import DeviceSpec, get_device_spec
from ..extmem.sort import HOST_SORT_FOOTPRINT, merge_rounds_for
from .single_node import DUPLEX_EFFICIENCY, MODEL_DISK_READ, MODEL_DISK_WRITE
from .workload import PAPER_RECORD_NBYTES

#: Fig. 8/9 reference partition: one H.Genome partition (2 × 1.25 G reads).
PARTITION_RECORDS = 2_495_036_784


def predicted_sort_passes(n_records: int, host_block_pairs: int, *,
                          merge_fanout: int = 2) -> int:
    """Disk passes :meth:`~repro.extmem.sort.ExternalSorter.sort_file` makes.

    Mirrors the implementation exactly — initial runs are host blocks of
    ``m_h / HOST_SORT_FOOTPRINT`` records and merge rounds fold them
    ``merge_fanout`` at a time — so for any ``(m_h, m_d, k)`` this equals
    the ``disk_passes`` of the :class:`~repro.extmem.sort.SortReport` the
    sorter returns.
    """
    if n_records <= 0:
        return 0
    host_block = max(2, host_block_pairs // HOST_SORT_FOOTPRINT)
    initial_runs = math.ceil(n_records / host_block)
    return 1 + merge_rounds_for(initial_runs, merge_fanout)


def model_partition_sort_seconds(host_block_records: int, device_block_records: int,
                                 device: DeviceSpec | str = "K40", *,
                                 merge_fanout: int = 2,
                                 partition_records: int = PARTITION_RECORDS,
                                 record_nbytes: int = PAPER_RECORD_NBYTES) -> float:
    """Modeled seconds to sort one partition under the given block sizes."""
    spec = get_device_spec(device) if isinstance(device, str) else device
    n = partition_records
    nbytes = n * record_nbytes

    runs = max(1, math.ceil(n / max(1, host_block_records)))
    disk_rounds = merge_rounds_for(runs, merge_fanout)
    one_pass = nbytes / MODEL_DISK_READ + nbytes / MODEL_DISK_WRITE
    # Run formation pays the duplex penalty; merge rounds stream at full speed
    # (same composition as repro.model.single_node).
    disk = one_pass / DUPLEX_EFFICIENCY + disk_rounds * one_pass

    device_runs = max(1, math.ceil(host_block_records
                                   / max(1, device_block_records)))
    level2_rounds = merge_rounds_for(device_runs, merge_fanout)
    # A k-way round merges via a tournament ⌈log₂ k⌉ deep.
    round_depth = max(1, math.ceil(math.log2(merge_fanout)))
    device_touches = 1 + level2_rounds + disk_rounds
    kernels = (costs.sort_pairs_seconds(spec, n, 16, 4)
               + (level2_rounds + disk_rounds) * round_depth
               * costs.merge_pairs_seconds(spec, n, 16, 4))
    pcie = device_touches * 2 * costs.transfer_seconds(spec, nbytes)
    return disk + kernels + pcie

"""Block-size and GPU sorting model (Figs. 8–9).

Average sort time of one H.Genome partition (2.5 G records of 20 bytes) as
a function of the host block-size ``m_h``, the device block-size ``m_d``,
and the GPU. The structure mirrors :mod:`repro.extmem.sort` exactly:

* disk passes = ``1 + ⌈log₂(initial runs)⌉`` — controlled by ``m_h`` only,
* device merge rounds inside a host block = ``⌈log₂(m_h / m_d)⌉`` —
  controlled by ``m_d`` and executed at device-memory bandwidth,

which yields both headline observations: host block-size dominates (disk
passes are the expensive axis) and GPUs converge as blocks shrink (the
disk term swamps the device term).
"""

from __future__ import annotations

import math

from ..device import costs
from ..device.specs import DeviceSpec, get_device_spec
from .single_node import DUPLEX_EFFICIENCY, MODEL_DISK_READ, MODEL_DISK_WRITE
from .workload import PAPER_RECORD_NBYTES

#: Fig. 8/9 reference partition: one H.Genome partition (2 × 1.25 G reads).
PARTITION_RECORDS = 2_495_036_784


def model_partition_sort_seconds(host_block_records: int, device_block_records: int,
                                 device: DeviceSpec | str = "K40", *,
                                 partition_records: int = PARTITION_RECORDS,
                                 record_nbytes: int = PAPER_RECORD_NBYTES) -> float:
    """Modeled seconds to sort one partition under the given block sizes."""
    spec = get_device_spec(device) if isinstance(device, str) else device
    n = partition_records
    nbytes = n * record_nbytes

    runs = max(1, math.ceil(n / max(1, host_block_records)))
    disk_rounds = math.ceil(math.log2(runs)) if runs > 1 else 0
    one_pass = nbytes / MODEL_DISK_READ + nbytes / MODEL_DISK_WRITE
    # Run formation pays the duplex penalty; merge rounds stream at full speed
    # (same composition as repro.model.single_node).
    disk = one_pass / DUPLEX_EFFICIENCY + disk_rounds * one_pass

    level2_rounds = max(0, math.ceil(math.log2(
        max(1.0, host_block_records / max(1, device_block_records)))))
    device_touches = 1 + level2_rounds + disk_rounds
    kernels = (costs.sort_pairs_seconds(spec, n, 16, 4)
               + (level2_rounds + disk_rounds) * costs.merge_pairs_seconds(spec, n, 16, 4))
    pcie = device_touches * 2 * costs.transfer_seconds(spec, nbytes)
    return disk + kernels + pcie

"""Per-phase time and peak-memory model (Tables II–V).

The time model composes the shared kernel/transfer formulas of
:mod:`repro.device.costs` with a disk model whose three constants are
*fitted once* against the paper's H.Genome/K40 row and then applied to
every dataset, GPU, and memory configuration:

* ``MODEL_DISK_READ`` / ``MODEL_DISK_WRITE`` — pure sequential streaming
  bandwidths of the testbed's storage (fitted from the reduce and map
  phases, which are single-direction),
* ``DUPLEX_EFFICIENCY`` — the throughput fraction retained when a phase
  reads and writes concurrently (fitted from the sort phase, which streams
  runs in while writing runs out).

The memory model reproduces the structure of Tables IV/V: device peaks are
fixed per-phase fractions of device capacity (the paper: "a fixed amount of
device memory is allocated for each phase regardless of the data size");
host peaks follow the working set (batch buffers for map, min(partition,
budget) for sort, graph + windows for reduce, graph + contigs for contig
generation).
"""

from __future__ import annotations

import math

from ..config import MemoryConfig
from ..device import costs
from ..device.specs import DeviceSpec, HostSpec, get_device_spec
from .workload import Workload

#: Fitted sequential disk bandwidths (bytes/s) of the paper's testbeds.
MODEL_DISK_READ = 420e6
MODEL_DISK_WRITE = 320e6
#: Fraction of streaming bandwidth retained under concurrent read+write.
DUPLEX_EFFICIENCY = 0.55

#: Device-memory fraction each phase allocates (Tables IV/V, both GPUs).
DEVICE_FRACTION = {"map": 0.90, "sort": 0.75, "reduce": 0.41}

#: Host fraction the map phase's batch/staging buffers occupy.
MAP_HOST_FRACTION = 0.13


def _sort_structure(workload: Workload, memory: MemoryConfig) -> tuple[int, int, int]:
    """(host_block, device_chunk, disk_rounds) for one partition sort."""
    from ..extmem.sort import DEVICE_SORT_FOOTPRINT, HOST_SORT_FOOTPRINT

    m_h = memory.host_pairs(workload.record_nbytes)
    m_d = memory.device_pairs(workload.record_nbytes)
    host_block = max(2, m_h // HOST_SORT_FOOTPRINT)
    device_chunk = max(2, m_d // DEVICE_SORT_FOOTPRINT)
    runs = max(1, math.ceil(workload.records_per_partition / host_block))
    disk_rounds = math.ceil(math.log2(runs)) if runs > 1 else 0
    return host_block, device_chunk, disk_rounds


def model_phase_seconds(workload: Workload, memory: MemoryConfig,
                        device: DeviceSpec | str) -> dict[str, float]:
    """Modeled seconds per phase (the Table II/III row for one dataset)."""
    components = model_phase_components(workload, memory, device)
    phases = {phase: sum(parts.values()) for phase, parts in components.items()}
    phases["total"] = sum(phases.values())
    return phases


def model_phase_components(workload: Workload, memory: MemoryConfig,
                           device: DeviceSpec | str,
                           ) -> dict[str, dict[str, float]]:
    """Per-phase time decomposed into ``disk`` / ``device`` / ``host`` parts.

    ``device`` covers kernel time plus PCIe transfers (what additional GPUs
    parallelize); ``disk`` is the shared storage stream (what they do not)
    — the decomposition behind the multi-GPU saturation study.
    """
    spec = get_device_spec(device) if isinstance(device, str) else device
    rec = workload.record_nbytes
    n_part = workload.records_per_partition
    partitions = 2 * workload.n_partition_lengths  # S and P sides
    total_tuples_bytes = workload.total_tuple_nbytes

    out: dict[str, dict[str, float]] = {}

    # -- load: stream FASTQ in, packed store out (read-dominated) -----------
    out["load"] = {
        "disk": (workload.fastq_bytes / MODEL_DISK_READ
                 + workload.packed_store_nbytes / MODEL_DISK_WRITE),
        "device": 0.0,
        "host": 0.0,
    }

    # -- map: read packed store, fingerprint on device, write all tuples -----
    scan = 8 * costs.scan_seconds(spec, workload.n_reads, workload.read_length)
    pcie = costs.transfer_seconds(spec, workload.packed_store_nbytes * 2
                                  + total_tuples_bytes)
    out["map"] = {
        "disk": (workload.packed_store_nbytes / MODEL_DISK_READ
                 + total_tuples_bytes / MODEL_DISK_WRITE),
        "device": scan + pcie,
        "host": 0.0,
    }

    # -- sort: two-level external sort of every partition ----------------------
    host_block, device_chunk, disk_rounds = _sort_structure(workload, memory)
    one_pass = (total_tuples_bytes / MODEL_DISK_READ
                + total_tuples_bytes / MODEL_DISK_WRITE)
    # Run formation interleaves reading input blocks with writing sorted runs
    # (duplex-penalized); merge rounds stream two long runs into one — pure
    # sequential traffic at full bandwidth.
    sort_disk = one_pass / DUPLEX_EFFICIENCY + disk_rounds * one_pass
    # Device work per partition: one radix sort of everything, plus one merge
    # sweep per level-2 round and per level-1 round.
    level2_rounds = max(0, math.ceil(math.log2(max(1, host_block / device_chunk))))
    device_touches = 1 + level2_rounds + disk_rounds
    sort_kernels = partitions * (
        costs.sort_pairs_seconds(spec, n_part, 16, 4)
        + (level2_rounds + disk_rounds) * costs.merge_pairs_seconds(spec, n_part, 16, 4))
    sort_pcie = partitions * device_touches * 2 * costs.transfer_seconds(
        spec, n_part * rec)
    out["sort"] = {"disk": sort_disk, "device": sort_kernels + sort_pcie,
                   "host": 0.0}

    # -- reduce: one streaming pass over all sorted partitions ------------------
    out["reduce"] = {
        "disk": total_tuples_bytes / MODEL_DISK_READ,
        "device": (partitions * 2 * costs.search_seconds(spec, n_part, n_part)
                   + costs.transfer_seconds(spec, total_tuples_bytes)),
        "host": costs.host_work_seconds(HostSpec(), workload.graph_nbytes * 4),
    }

    # -- compress: stream packed reads once, write contigs ----------------------
    out["compress"] = {
        "disk": (workload.packed_store_nbytes / MODEL_DISK_READ
                 + workload.contig_nbytes / MODEL_DISK_WRITE),
        "device": 0.0,
        "host": 0.0,
    }
    return out


def model_multi_gpu_seconds(workload: Workload, memory: MemoryConfig,
                            device: DeviceSpec | str, n_gpus: int,
                            ) -> dict[str, float]:
    """Phase times with ``n_gpus`` sharing one node's disk.

    Fingerprinting is independent per read and each partition sorts
    independently, so kernel and PCIe work divide across GPUs — but every
    byte still crosses the *same* local storage. The result saturates at
    the disk bound, which is the paper's argument for scaling out to more
    *nodes* (aggregate I/O bandwidth) rather than more GPUs per node
    (§III.E: "the most prominent bottleneck in the pipeline is the I/O
    throughput").
    """
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    components = model_phase_components(workload, memory, device)
    phases = {
        phase: parts["disk"] + parts["device"] / n_gpus + parts["host"]
        for phase, parts in components.items()
    }
    phases["total"] = sum(phases.values())
    return phases


def model_memory_peaks(workload: Workload, memory: MemoryConfig,
                       device: DeviceSpec | str) -> dict[str, dict[str, float]]:
    """Modeled peak bytes per phase (the Table IV/V row for one dataset)."""
    spec = get_device_spec(device) if isinstance(device, str) else device
    device_cap = min(memory.device_bytes, spec.mem_bytes)
    map_host = MAP_HOST_FRACTION * memory.host_bytes
    sort_host = min(max(map_host, 2.0 * workload.partition_nbytes),
                    memory.buffer_fraction * memory.host_bytes)
    reduce_host = workload.graph_nbytes + 0.1 * memory.host_bytes * 0.5
    contig_host = workload.graph_nbytes + workload.contig_nbytes \
        + 0.05 * memory.host_bytes
    return {
        "host": {"map": map_host, "sort": sort_host, "reduce": reduce_host,
                 "contig": contig_host},
        "device": {phase: fraction * device_cap
                   for phase, fraction in DEVICE_FRACTION.items()},
    }

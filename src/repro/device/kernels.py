"""Numpy implementations of the data-parallel device kernels.

These are the *semantics* of the paper's Thrust primitives; timing and
memory accounting live in :class:`repro.device.gpu.VirtualGPU`. All kernels
are pure functions on arrays.

Keys are ``uint64``; every kernel that reorders keys carries an arbitrary
tuple of payload arrays along (read-ids, auxiliary fingerprint lanes).

Two sort implementations are provided: :func:`sort_records` (numpy stable
argsort — the fast path) and :func:`lsd_radix_sort_indices` (a faithful
LSD radix sort with per-digit counting passes, as in Merrill & Grimshaw's
GPU sort the paper builds on). They are equivalent; tests assert it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SortContractError

Payloads = tuple[np.ndarray, ...]


def _check_payloads(keys: np.ndarray, payloads: Payloads) -> None:
    for payload in payloads:
        if payload.shape[0] != keys.shape[0]:
            raise SortContractError("payload length does not match key length")


def sort_records(keys: np.ndarray, *payloads: np.ndarray) -> tuple[np.ndarray, Payloads]:
    """Stable sort of records by key; returns sorted copies."""
    keys = np.ascontiguousarray(keys)
    _check_payloads(keys, payloads)
    order = np.argsort(keys, kind="stable")
    return keys[order], tuple(payload[order] for payload in payloads)


def lsd_radix_sort_indices(keys: np.ndarray) -> np.ndarray:
    """Permutation sorting ``keys`` via byte-wise LSD counting passes.

    One stable counting-sort pass per key byte, least-significant first —
    the classic GPU radix-sort structure. Used as a reference implementation
    (the fast path delegates to numpy's sort, which is semantically equal).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    n = keys.shape[0]
    order = np.arange(n, dtype=np.int64)
    if n <= 1:
        return order
    for pass_index in range(8):  # 8 bytes per uint64 key
        digits = ((keys[order] >> np.uint64(8 * pass_index)) & np.uint64(0xFF)).astype(np.int64)
        counts = np.bincount(digits, minlength=256)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        next_order = np.empty_like(order)
        for digit in np.nonzero(counts)[0]:
            bucket = order[digits == digit]
            next_order[starts[digit]:starts[digit] + bucket.shape[0]] = bucket
        order = next_order
        if counts.max() == n:  # all records share this digit; pass was a no-op
            continue
    return order


def merge_sorted_records(keys_a: np.ndarray, payloads_a: Payloads,
                         keys_b: np.ndarray, payloads_b: Payloads,
                         ) -> tuple[np.ndarray, Payloads]:
    """Stable merge of two sorted runs (A-records precede equal B-records).

    Implemented with the searchsorted rank trick: A's output position is its
    own rank plus the count of strictly smaller B keys; B's is its rank plus
    the count of less-or-equal A keys.
    """
    if len(payloads_a) != len(payloads_b):
        raise SortContractError("runs carry different payload arity")
    _check_payloads(keys_a, payloads_a)
    _check_payloads(keys_b, payloads_b)
    n_a, n_b = keys_a.shape[0], keys_b.shape[0]
    out_keys = np.empty(n_a + n_b, dtype=_common_dtype(keys_a, keys_b))
    pos_a = np.arange(n_a, dtype=np.int64) + np.searchsorted(keys_b, keys_a, side="left")
    pos_b = np.arange(n_b, dtype=np.int64) + np.searchsorted(keys_a, keys_b, side="right")
    out_keys[pos_a] = keys_a
    out_keys[pos_b] = keys_b
    out_payloads = []
    for payload_a, payload_b in zip(payloads_a, payloads_b):
        out = np.empty((n_a + n_b,) + payload_a.shape[1:],
                       dtype=_common_dtype(payload_a, payload_b))
        out[pos_a] = payload_a
        out[pos_b] = payload_b
        out_payloads.append(out)
    return out_keys, tuple(out_payloads)


def merge_sorted_records_k(runs_keys: Sequence[np.ndarray],
                           runs_payloads: Sequence[Payloads],
                           ) -> tuple[np.ndarray, Payloads]:
    """Stable gathered k-way merge of sorted runs (run order breaks ties).

    The k runs are concatenated and a stable key sort produces the gather
    stencil — one global data movement instead of ``k - 1`` pairwise
    passes, which is how a GPU multiway merge batches its way through a
    tournament. Equivalent to folding :func:`merge_sorted_records` over
    the runs; tests assert it.
    """
    runs_keys = tuple(runs_keys)
    runs_payloads = tuple(tuple(p) for p in runs_payloads)
    if len(runs_keys) != len(runs_payloads) or not runs_keys:
        raise SortContractError("k-way merge needs one payload tuple per run")
    arities = {len(payloads) for payloads in runs_payloads}
    if len(arities) != 1:
        raise SortContractError("runs carry different payload arity")
    for keys, payloads in zip(runs_keys, runs_payloads):
        _check_payloads(keys, payloads)
    if len(runs_keys) == 1:
        return (runs_keys[0].copy(),
                tuple(p.copy() for p in runs_payloads[0]))
    all_keys = np.concatenate(runs_keys)
    order = np.argsort(all_keys, kind="stable")
    out_payloads = tuple(
        np.concatenate([payloads[lane] for payloads in runs_payloads])[order]
        for lane in range(arities.pop()))
    return all_keys[order], out_payloads


def _common_dtype(a: np.ndarray, b: np.ndarray) -> np.dtype:
    """Common dtype of two arrays, allowing (equal) structured dtypes."""
    if a.dtype == b.dtype:
        return a.dtype
    if a.dtype.names or b.dtype.names:
        raise SortContractError("cannot merge runs with different record dtypes")
    return np.result_type(a, b)


def vectorized_bounds(haystack: np.ndarray, queries: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Per-query ``(lower_bound, upper_bound)`` in a sorted haystack.

    This is the GPU_VEC_LOWER_BOUND / GPU_VEC_UPPER_BOUND pair of the
    paper's Algorithm 2; ``upper - lower`` is each query's occurrence count.
    """
    lower = np.searchsorted(haystack, queries, side="left")
    upper = np.searchsorted(haystack, queries, side="right")
    return lower.astype(np.int64), upper.astype(np.int64)


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (Fig. 7's offset computation)."""
    values = np.asarray(values)
    out = np.empty(values.shape[0], dtype=np.int64)
    if out.shape[0]:
        out[0] = 0
        np.cumsum(values[:-1], out=out[1:])
    return out


def gather(source: np.ndarray, stencil: np.ndarray) -> np.ndarray:
    """Thrust-style gather: ``out[i] = source[stencil[i]]``."""
    return source[stencil]


def scatter(values: np.ndarray, stencil: np.ndarray, out_size: int) -> np.ndarray:
    """Thrust-style scatter: ``out[stencil[i]] = values[i]``.

    Duplicate stencil entries are a contract violation (the compress phase
    guarantees uniqueness: one path slot per read)."""
    if stencil.shape[0] != values.shape[0]:
        raise SortContractError("scatter stencil length mismatch")
    if stencil.shape[0]:
        unique = np.unique(stencil)
        if unique.shape[0] != stencil.shape[0]:
            raise SortContractError("scatter stencil contains duplicates")
    out = np.zeros((out_size,) + values.shape[1:], dtype=values.dtype)
    out[stencil] = values
    return out


def require_sorted(keys: np.ndarray, *, context: str) -> None:
    """Assert a key array is non-decreasing (merge/reduce precondition)."""
    if keys.shape[0] > 1 and (keys[1:] < keys[:-1]).any():
        raise SortContractError(f"{context}: input run is not sorted")

"""Virtual GPU and memory-hierarchy substrate.

The paper's kernels are all data-parallel primitives (radix sort, merge,
vectorized binary search, scan, gather) running under a hard device-memory
cap. This package reproduces that environment on a CPU:

* :mod:`repro.device.specs` — hardware catalogs (K20X/K40/P40/P100/V100
  GPUs, host, disks) with the published capacities/bandwidths,
* :mod:`repro.device.costs` — the analytic kernel/transfer cost model shared
  by the runtime and by :mod:`repro.model`,
* :mod:`repro.device.clock` — the simulated-time accumulator,
* :mod:`repro.device.memory` — capacity-enforcing allocation pools,
* :mod:`repro.device.kernels` — the numpy kernel implementations,
* :mod:`repro.device.gpu` — :class:`VirtualGPU`, the facade the pipeline
  programs against.
"""

from .specs import DeviceSpec, DiskSpec, HostSpec, device_catalog, get_device_spec
from .clock import SimClock
from .memory import Allocation, MemoryPool
from .gpu import DeviceArray, VirtualGPU

__all__ = [
    "DeviceSpec",
    "DiskSpec",
    "HostSpec",
    "device_catalog",
    "get_device_spec",
    "SimClock",
    "Allocation",
    "MemoryPool",
    "DeviceArray",
    "VirtualGPU",
]

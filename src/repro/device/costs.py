"""Analytic cost model for kernels, transfers and disk I/O.

One set of formulas is shared by two consumers:

* :class:`repro.device.gpu.VirtualGPU` charges these costs to its
  :class:`~repro.device.clock.SimClock` as the pipeline actually executes on
  scaled data, and
* :mod:`repro.model` evaluates the same formulas symbolically at paper scale
  (Table I sizes) to regenerate the paper's tables and figures.

The model is deliberately simple and bandwidth-centric:

* **Radix sort** (Merrill & Grimshaw, the paper's Thrust backend): one pass
  per key byte, each pass streaming every record ~:data:`RADIX_PASS_ACCESSES`
  times through device memory.
* **Merge**: both inputs read, output written, plus one extra pass of
  overhead for path determination.
* **Vectorized binary search**: ``log2(n)`` dependent probes per query, each
  costing a cache-line-sized transaction.
* **Scan** (Hillis–Steele): ``log2(width)`` passes over the batch.
* **Transfers**: bytes over the PCIe link; **disk**: bytes over the disk
  bandwidth plus a seek per sequential stream switch.

A single fudge constant per formula is calibrated in
``tests/test_model_calibration.py`` against the paper's published end-to-end
numbers (e.g. H.Genome sort on K40 ≈ 11 h).
"""

from __future__ import annotations

import math

from .specs import DeviceSpec, DiskSpec, HostSpec

#: Streaming accesses per record per radix-sort pass (read + write + histogram).
RADIX_PASS_ACCESSES = 3.0

#: Effective fraction of peak memory bandwidth real kernels achieve.
BANDWIDTH_EFFICIENCY = 0.55

#: Bytes moved per random-access probe (one 32-byte memory transaction).
PROBE_BYTES = 32.0

#: Extra streamed passes a merge spends beyond reading inputs/writing output.
MERGE_OVERHEAD_PASSES = 1.0

#: Host-side software efficiency relative to raw memory bandwidth.
HOST_EFFICIENCY = 0.35


def _effective_bw(spec: DeviceSpec) -> float:
    return spec.mem_bandwidth * BANDWIDTH_EFFICIENCY


def sort_pairs_seconds(spec: DeviceSpec, n: int, key_nbytes: int, value_nbytes: int) -> float:
    """Device LSD radix sort of ``n`` (key, value) records."""
    if n <= 0:
        return 0.0
    passes = max(1, key_nbytes)  # one 8-bit digit per pass
    record = key_nbytes + value_nbytes
    return passes * RADIX_PASS_ACCESSES * n * record / _effective_bw(spec)


def merge_pairs_seconds(spec: DeviceSpec, n_total: int, key_nbytes: int,
                        value_nbytes: int) -> float:
    """Device merge of two sorted runs totalling ``n_total`` records."""
    if n_total <= 0:
        return 0.0
    record = key_nbytes + value_nbytes
    return (2.0 + MERGE_OVERHEAD_PASSES) * n_total * record / _effective_bw(spec)


def search_seconds(spec: DeviceSpec, n_queries: int, n_haystack: int) -> float:
    """Vectorized lower/upper bound: ``n_queries`` binary searches."""
    if n_queries <= 0 or n_haystack <= 0:
        return 0.0
    probes = max(1.0, math.log2(n_haystack + 1))
    return n_queries * probes * PROBE_BYTES / _effective_bw(spec)


def scan_seconds(spec: DeviceSpec, n_rows: int, width: int, element_nbytes: int = 8) -> float:
    """Hillis–Steele scan over an ``(n_rows, width)`` batch (fingerprint map)."""
    if n_rows <= 0 or width <= 0:
        return 0.0
    passes = max(1.0, math.ceil(math.log2(width)))
    return 2.0 * passes * n_rows * width * element_nbytes / _effective_bw(spec)


def elementwise_seconds(spec: DeviceSpec, nbytes_touched: int) -> float:
    """A streaming elementwise/gather kernel touching ``nbytes_touched``."""
    if nbytes_touched <= 0:
        return 0.0
    return nbytes_touched / _effective_bw(spec)


def transfer_seconds(spec: DeviceSpec, nbytes: int) -> float:
    """Host↔device copy over PCIe."""
    if nbytes <= 0:
        return 0.0
    return nbytes / spec.pcie_bandwidth


def host_work_seconds(host: HostSpec, nbytes_touched: int) -> float:
    """Host-side streaming work (graph updates, window bookkeeping)."""
    if nbytes_touched <= 0:
        return 0.0
    return nbytes_touched / (host.mem_bandwidth * HOST_EFFICIENCY)


def disk_read_seconds(disk: DiskSpec, nbytes: int, *, seeks: int = 0) -> float:
    """Sequential disk read plus optional stream-switch seeks."""
    if nbytes <= 0 and seeks <= 0:
        return 0.0
    return max(0, nbytes) / disk.read_bandwidth + seeks * disk.seek_seconds


def disk_write_seconds(disk: DiskSpec, nbytes: int, *, seeks: int = 0) -> float:
    """Sequential disk write plus optional stream-switch seeks."""
    if nbytes <= 0 and seeks <= 0:
        return 0.0
    return max(0, nbytes) / disk.write_bandwidth + seeks * disk.seek_seconds

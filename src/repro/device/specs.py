"""Hardware specifications used by the timing model.

The GPU entries carry the published numbers the paper cites when explaining
Fig. 9 (core counts, boost clocks, memory bandwidths, device memory sizes).
The timing model is bandwidth-dominated — which is exactly why the paper
observes P100 beating P40 despite fewer cores, and why all GPUs converge
once sorting becomes disk-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import parse_size


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU model: capacity and throughput characteristics."""

    name: str
    mem_bytes: int
    mem_bandwidth: float  #: bytes/second
    cores: int
    clock_hz: float
    pcie_bandwidth: float  #: host<->device bytes/second

    @property
    def flops(self) -> float:
        """Rough FP32 throughput (2 ops/core/cycle), used for compute terms."""
        return 2.0 * self.cores * self.clock_hz


@dataclass(frozen=True)
class HostSpec:
    """Host CPU/memory characteristics (QueenBee II / SuperMIC class node)."""

    name: str = "xeon-node"
    mem_bandwidth: float = 60e9
    cores: int = 20
    clock_hz: float = 2.8e9


@dataclass(frozen=True)
class DiskSpec:
    """Storage characteristics for the disk tier of the streaming model."""

    name: str = "hdd-raid"
    read_bandwidth: float = 180e6
    write_bandwidth: float = 150e6
    seek_seconds: float = 8e-3

    @staticmethod
    def ssd() -> "DiskSpec":
        """A SATA-SSD class device (the paper notes LaSAGNA benefits from SSDs)."""
        return DiskSpec(name="ssd", read_bandwidth=500e6, write_bandwidth=450e6,
                        seek_seconds=1e-4)


def _catalog() -> dict[str, DeviceSpec]:
    gb = parse_size
    return {
        spec.name: spec
        for spec in (
            # Kepler. PCIe gen2-era deployments in the paper's clusters.
            DeviceSpec("K20X", gb("6 GB"), 250e9, 2688, 732e6, 6e9),
            DeviceSpec("K40", gb("12 GB"), 288e9, 2880, 745e6, 6e9),
            # Pascal. P40 has more cores but far less bandwidth than P100 —
            # the Fig. 9 inversion.
            DeviceSpec("P40", gb("24 GB"), 346e9, 3840, 1303e6, 12e9),
            DeviceSpec("P100", gb("16 GB"), 732e9, 3584, 1328e6, 12e9),
            # Volta.
            DeviceSpec("V100", gb("16 GB"), 900e9, 5120, 1530e6, 12e9),
        )
    }


_CATALOG = _catalog()


def device_catalog() -> dict[str, DeviceSpec]:
    """All known GPU specs keyed by model name."""
    return dict(_CATALOG)


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a GPU model (case-insensitive)."""
    try:
        return _CATALOG[name.upper()]
    except KeyError:
        raise ConfigError(f"unknown device {name!r}; options: {sorted(_CATALOG)}") from None

"""Capacity-enforcing memory pools.

The central constraint the paper engineers around is that device memory is
tiny (6–12 GB) relative to the data (hundreds of GB). :class:`MemoryPool`
makes that constraint *real* in this reproduction: the virtual GPU and the
host arena allocate every working buffer from a pool, and exceeding the
capacity raises the same way a CUDA ``cudaMalloc`` failure would. Pools are
also telemetry meters — their high-water marks become the paper's
Tables IV/V ("peak host/device memory per phase").
"""

from __future__ import annotations

import threading
from typing import Mapping

import numpy as np

from ..errors import ConfigError, ReproError


class Allocation:
    """A live reservation in a :class:`MemoryPool`; free explicitly or via ``with``."""

    __slots__ = ("_pool", "nbytes", "_live")

    def __init__(self, pool: "MemoryPool", nbytes: int):
        self._pool = pool
        self.nbytes = nbytes
        self._live = True

    @property
    def live(self) -> bool:
        """Whether the reservation still holds pool capacity."""
        return self._live

    def free(self) -> None:
        """Release the reservation (idempotent)."""
        if self._live:
            self._live = False
            self._pool._release(self.nbytes)

    def __enter__(self) -> "Allocation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()


class MemoryPool:
    """Tracks allocations against a hard byte capacity.

    ``exhausted_error`` is the exception type raised on over-allocation
    (:class:`~repro.errors.DeviceMemoryError` for the GPU pool,
    :class:`~repro.errors.HostMemoryError` for the host arena).
    """

    def __init__(self, name: str, capacity_bytes: int,
                 exhausted_error: type[ReproError] = ReproError):
        if capacity_bytes <= 0:
            raise ConfigError("pool capacity must be positive")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._exhausted_error = exhausted_error
        self._used = 0
        self._peak = 0
        self._lifetime_peak = 0
        self._alloc_count = 0
        # Device allocations may arrive from executor worker threads (the
        # device lock serializes device *work*, but frees can interleave).
        self._lock = threading.Lock()

    # -- allocation --------------------------------------------------------

    def alloc(self, nbytes: int, *, label: str = "") -> Allocation:
        """Reserve ``nbytes``; raises the pool's error type if over capacity."""
        allocation = self.try_alloc(nbytes)
        if allocation is None:
            raise self._exhausted_error(
                f"{self.name} pool exhausted: requested {nbytes} "
                f"({label or 'unlabelled'}), in use {self._used}, "
                f"capacity {self.capacity_bytes}"
            )
        return allocation

    def try_alloc(self, nbytes: int, *, label: str = "") -> Allocation | None:
        """Reserve ``nbytes`` if capacity allows; ``None`` instead of raising.

        The admission-control entry point: the assembly service probes a
        job's memory demand against the shared budget and, on ``None``,
        parks the job until a running one releases its grant — so the pool
        itself is what makes oversubscription impossible.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigError("cannot allocate negative bytes")
        with self._lock:
            if self._used + nbytes > self.capacity_bytes:
                return None
            self._used += nbytes
            self._alloc_count += 1
            if self._used > self._peak:
                self._peak = self._used
            if self._used > self._lifetime_peak:
                self._lifetime_peak = self._used
        return Allocation(self, nbytes)

    def _release(self, nbytes: int) -> None:
        with self._lock:
            self._used -= nbytes
            assert self._used >= 0, f"{self.name} pool over-freed"

    # -- inspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved."""
        return self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark since the last :meth:`reset_peaks`."""
        return self._peak

    @property
    def lifetime_peak_bytes(self) -> int:
        """High-water mark over the pool's whole life."""
        return self._lifetime_peak

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used

    # -- telemetry Meter protocol -------------------------------------------

    def counters(self) -> Mapping[str, float]:
        """Total allocations served."""
        return {f"{self.name}_allocs": float(self._alloc_count)}

    def peaks(self) -> Mapping[str, float]:
        """Peak reserved bytes since the last reset."""
        return {f"{self.name}_bytes": float(self._peak)}

    def reset_peaks(self) -> None:
        """Restart peak tracking from the current usage."""
        with self._lock:
            self._peak = self._used


def _size_class(nbytes: int) -> int:
    """Smallest power-of-two byte class holding ``nbytes`` (min 256)."""
    size_class = 256
    while size_class < nbytes:
        size_class <<= 1
    return size_class


class BufferPool:
    """Free-list of real numpy buffers, keyed by power-of-two size class.

    :class:`MemoryPool` is the *model*: it reserves simulated capacity and
    meters peaks. :class:`BufferPool` is the *substrate*: it recycles the
    actual host arrays backing :class:`~repro.device.gpu.DeviceArray`
    handles so the hot path (per-batch transfer copies, kernel outputs,
    merge-window scratch) stops paying an allocator round trip — and the
    page faults of a fresh mapping — for every buffer. Strictly invisible
    to the model: metering, capacity enforcement and every artifact byte
    are identical with the pool on or off; only wall-clock time and real
    allocator traffic change.

    Buffers live in the free list as flat ``uint8`` arrays; :meth:`take`
    carves a view of the requested shape/dtype off the front. Retention is
    capped at ``max_bytes`` (excess buffers are dropped to the garbage
    collector). Thread-safe: device frees arrive from executor worker
    threads.
    """

    def __init__(self, max_bytes: int = 64 << 20, *, enabled: bool = True):
        if max_bytes < 0:
            raise ConfigError("pool_max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self.enabled = enabled
        self._free: dict[int, list[np.ndarray]] = {}
        self._held = 0
        self._hits = 0
        self._misses = 0
        self._recycled = 0
        self._dropped = 0
        self._lock = threading.Lock()

    def take(self, shape, dtype) -> tuple[np.ndarray, np.ndarray | None]:
        """A writable array of ``shape``/``dtype`` plus its recyclable raw.

        Returns ``(view, raw)``: ``view`` is the caller's array; ``raw`` is
        the flat buffer to hand back via :meth:`give` when the array's
        lifetime ends (``None`` when pooling is disabled — the array is
        then an ordinary fresh allocation the garbage collector owns).
        """
        dtype = np.dtype(dtype)
        if not self.enabled:
            return np.empty(shape, dtype=dtype), None
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        nbytes = dtype.itemsize
        for extent in shape:
            nbytes *= extent
        size_class = _size_class(nbytes)
        with self._lock:
            stack = self._free.get(size_class)
            raw = stack.pop() if stack else None
            if raw is not None:
                self._held -= raw.nbytes
                self._hits += 1
            else:
                self._misses += 1
        if raw is None:
            raw = np.empty(size_class, dtype=np.uint8)
        if nbytes == 0:
            return np.empty(shape, dtype=dtype), raw
        return raw[:nbytes].view(dtype).reshape(shape), raw

    def give(self, raw: np.ndarray | None) -> None:
        """Return a raw buffer from :meth:`take` (or :meth:`adoptable`).

        Read-only raws are silently dropped: a consumed (poisoned) host
        array is still visible to its original owner, and re-issuing its
        memory from :meth:`take` would hand a "fresh" buffer that cannot be
        written (or worse, one the owner can still read while it changes).
        """
        if raw is None or not self.enabled:
            return
        if not raw.flags.writeable:
            return
        # Uniform classification: exact powers of two land in their own
        # class; everything else rounds DOWN to the class whose takes are
        # guaranteed to fit inside the raw.
        size_class = _size_class(raw.nbytes)
        if size_class > raw.nbytes:
            size_class >>= 1
        if size_class < 256:
            return
        with self._lock:
            if self._held + raw.nbytes > self.max_bytes:
                self._dropped += 1
                return
            self._free.setdefault(size_class, []).append(raw)
            self._held += raw.nbytes
            self._recycled += 1

    def adoptable(self, array: np.ndarray) -> np.ndarray | None:
        """The recyclable raw behind a foreign (kernel-produced) array.

        Only arrays that own their data and are C-contiguous may enter the
        free list — recycling a view would hand out memory some other
        array still aliases. Returns ``None`` when the array is not safe
        to adopt (the garbage collector keeps it instead). Read-only arrays
        are refused too: a consumed (poisoned) host array is still visible
        to its original owner, so its memory must never be re-issued.
        """
        if not self.enabled or not array.flags.owndata \
                or not array.flags.c_contiguous \
                or not array.flags.writeable or array.nbytes < 256:
            return None
        return array.reshape(-1).view(np.uint8)

    @property
    def held_bytes(self) -> int:
        """Bytes currently retained in the free lists."""
        return self._held

    def clear(self) -> None:
        """Drop every retained buffer."""
        with self._lock:
            self._free.clear()
            self._held = 0

    # -- telemetry Meter protocol -------------------------------------------

    def counters(self) -> Mapping[str, float]:
        """Free-list traffic: reuse hits, fresh allocations, recycles."""
        return {
            "bufpool_hits": float(self._hits),
            "bufpool_misses": float(self._misses),
            "bufpool_recycled": float(self._recycled),
            "bufpool_dropped": float(self._dropped),
        }

    def peaks(self) -> Mapping[str, float]:
        """No gauges: retention is capped, not peak-tracked."""
        return {}

    def reset_peaks(self) -> None:
        """No-op (no gauges)."""
        return None

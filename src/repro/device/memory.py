"""Capacity-enforcing memory pools.

The central constraint the paper engineers around is that device memory is
tiny (6–12 GB) relative to the data (hundreds of GB). :class:`MemoryPool`
makes that constraint *real* in this reproduction: the virtual GPU and the
host arena allocate every working buffer from a pool, and exceeding the
capacity raises the same way a CUDA ``cudaMalloc`` failure would. Pools are
also telemetry meters — their high-water marks become the paper's
Tables IV/V ("peak host/device memory per phase").
"""

from __future__ import annotations

import threading
from typing import Mapping

from ..errors import ConfigError, ReproError


class Allocation:
    """A live reservation in a :class:`MemoryPool`; free explicitly or via ``with``."""

    __slots__ = ("_pool", "nbytes", "_live")

    def __init__(self, pool: "MemoryPool", nbytes: int):
        self._pool = pool
        self.nbytes = nbytes
        self._live = True

    @property
    def live(self) -> bool:
        """Whether the reservation still holds pool capacity."""
        return self._live

    def free(self) -> None:
        """Release the reservation (idempotent)."""
        if self._live:
            self._live = False
            self._pool._release(self.nbytes)

    def __enter__(self) -> "Allocation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()


class MemoryPool:
    """Tracks allocations against a hard byte capacity.

    ``exhausted_error`` is the exception type raised on over-allocation
    (:class:`~repro.errors.DeviceMemoryError` for the GPU pool,
    :class:`~repro.errors.HostMemoryError` for the host arena).
    """

    def __init__(self, name: str, capacity_bytes: int,
                 exhausted_error: type[ReproError] = ReproError):
        if capacity_bytes <= 0:
            raise ConfigError("pool capacity must be positive")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._exhausted_error = exhausted_error
        self._used = 0
        self._peak = 0
        self._lifetime_peak = 0
        self._alloc_count = 0
        # Device allocations may arrive from executor worker threads (the
        # device lock serializes device *work*, but frees can interleave).
        self._lock = threading.Lock()

    # -- allocation --------------------------------------------------------

    def alloc(self, nbytes: int, *, label: str = "") -> Allocation:
        """Reserve ``nbytes``; raises the pool's error type if over capacity."""
        allocation = self.try_alloc(nbytes)
        if allocation is None:
            raise self._exhausted_error(
                f"{self.name} pool exhausted: requested {nbytes} "
                f"({label or 'unlabelled'}), in use {self._used}, "
                f"capacity {self.capacity_bytes}"
            )
        return allocation

    def try_alloc(self, nbytes: int, *, label: str = "") -> Allocation | None:
        """Reserve ``nbytes`` if capacity allows; ``None`` instead of raising.

        The admission-control entry point: the assembly service probes a
        job's memory demand against the shared budget and, on ``None``,
        parks the job until a running one releases its grant — so the pool
        itself is what makes oversubscription impossible.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigError("cannot allocate negative bytes")
        with self._lock:
            if self._used + nbytes > self.capacity_bytes:
                return None
            self._used += nbytes
            self._alloc_count += 1
            if self._used > self._peak:
                self._peak = self._used
            if self._used > self._lifetime_peak:
                self._lifetime_peak = self._used
        return Allocation(self, nbytes)

    def _release(self, nbytes: int) -> None:
        with self._lock:
            self._used -= nbytes
            assert self._used >= 0, f"{self.name} pool over-freed"

    # -- inspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved."""
        return self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark since the last :meth:`reset_peaks`."""
        return self._peak

    @property
    def lifetime_peak_bytes(self) -> int:
        """High-water mark over the pool's whole life."""
        return self._lifetime_peak

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used

    # -- telemetry Meter protocol -------------------------------------------

    def counters(self) -> Mapping[str, float]:
        """Total allocations served."""
        return {f"{self.name}_allocs": float(self._alloc_count)}

    def peaks(self) -> Mapping[str, float]:
        """Peak reserved bytes since the last reset."""
        return {f"{self.name}_bytes": float(self._peak)}

    def reset_peaks(self) -> None:
        """Restart peak tracking from the current usage."""
        with self._lock:
            self._peak = self._used

"""Simulated-time accumulator.

Every metered component (virtual GPU, I/O accountant, network model)
charges seconds into a shared :class:`SimClock` under a named category.
The clock doubles as a telemetry :class:`~repro.telemetry.Meter`, exposing
``sim_seconds`` (total) plus one counter per category, so each pipeline
phase records how much modeled disk/PCIe/kernel/host time it accrued.
"""

from __future__ import annotations

import threading
from typing import Mapping

from ..errors import ConfigError

#: Recognized charge categories. Keeping this closed catches typos early.
CATEGORIES = (
    "kernel",
    "h2d",
    "d2h",
    "disk_read",
    "disk_write",
    "host",
    "network",
    # Resilience overhead: heartbeat-timeout detection gaps and retry
    # backoff waits charged by the distributed supervisor. Zero on every
    # clean run, so Fig. 10 series are unchanged unless faults fire.
    "retry",
)


class SimClock:
    """Accumulates modeled seconds per category."""

    def __init__(self) -> None:
        self._by_category: dict[str, float] = {cat: 0.0 for cat in CATEGORIES}
        # Charges arrive from executor worker/prefetch threads as well as
        # the main thread; += on a dict slot is not atomic under threads.
        self._lock = threading.Lock()

    def charge(self, category: str, seconds: float) -> None:
        """Add ``seconds`` of modeled time to ``category``."""
        if category not in self._by_category:
            raise ConfigError(f"unknown sim-clock category {category!r}")
        if seconds < 0:
            raise ConfigError("cannot charge negative time")
        with self._lock:
            self._by_category[category] += seconds

    def charge_many(self, category: str, charges) -> None:
        """Add a run of charges to ``category`` under one lock acquisition.

        Bit-identical to calling :meth:`charge` once per element: the
        accumulator gains each value in sequence (float addition is not
        associative, so the elements are never pre-summed).
        """
        if category not in self._by_category:
            raise ConfigError(f"unknown sim-clock category {category!r}")
        for seconds in charges:
            if seconds < 0:
                raise ConfigError("cannot charge negative time")
        with self._lock:
            total = self._by_category[category]
            for seconds in charges:
                total += seconds
            self._by_category[category] = total

    @property
    def total_seconds(self) -> float:
        """Total modeled seconds across all categories."""
        return sum(self._by_category.values())

    def seconds(self, category: str) -> float:
        """Modeled seconds accrued in one category."""
        if category not in self._by_category:
            raise ConfigError(f"unknown sim-clock category {category!r}")
        return self._by_category[category]

    def advance_to(self, other: "SimClock") -> None:
        """Raise every category to at least ``other``'s value (barrier sync).

        Used by the distributed simulation: after a barrier, each node's
        clock advances to the slowest participant's.
        """
        for category, value in other._by_category.items():
            if value > self._by_category[category]:
                self._by_category[category] = value

    # -- telemetry Meter protocol -----------------------------------------

    def counters(self) -> Mapping[str, float]:
        """Per-category modeled seconds plus the ``sim_seconds`` total."""
        counters = {f"sim_{cat}_seconds": sec for cat, sec in self._by_category.items()}
        counters["sim_seconds"] = self.total_seconds
        return counters

    def peaks(self) -> Mapping[str, float]:
        """No gauges: a clock only accumulates."""
        return {}

    def reset_peaks(self) -> None:
        """No-op (no gauges)."""
        return None

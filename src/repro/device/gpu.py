"""The virtual GPU the pipeline programs against.

:class:`VirtualGPU` binds together

* a :class:`~repro.device.specs.DeviceSpec` (which GPU is being modeled),
* a capacity-enforcing device :class:`~repro.device.memory.MemoryPool`
  (exceeding it raises :class:`~repro.errors.DeviceMemoryError`, like a CUDA
  OOM), and
* a :class:`~repro.device.clock.SimClock` charged via the shared cost model
  for every transfer and kernel launch.

Data lives in :class:`DeviceArray` handles. Transfers are explicit
(:meth:`VirtualGPU.to_device` / :meth:`VirtualGPU.to_host`) so the PCIe
traffic of the two-level streaming model is visible to the telemetry, and
kernels only accept device-resident inputs — passing a bare numpy array is
a programming error, just as dereferencing host memory in a CUDA kernel is.
"""

from __future__ import annotations

import math
import weakref
from typing import Sequence

import numpy as np

from ..errors import (ConfigError, DeviceError, DeviceMemoryError,
                      SortContractError)
from . import costs, kernels
from .clock import SimClock
from .memory import Allocation, BufferPool, MemoryPool
from .specs import DeviceSpec, get_device_spec


class DeviceArray:
    """A numpy array accounted against a device pool.

    When the owning :class:`VirtualGPU` has a :class:`BufferPool`, the
    backing numpy buffer returns to its free list on :meth:`free` — the
    handle must not be reused afterwards (kernel entry points enforce this;
    raw ``.array`` access after free is undefined).
    """

    __slots__ = ("array", "_allocation", "_raw", "_buffers")

    def __init__(self, array: np.ndarray, allocation: Allocation, *,
                 raw: np.ndarray | None = None,
                 buffers: BufferPool | None = None):
        self.array = array
        self._allocation = allocation
        self._raw = raw
        self._buffers = buffers

    @property
    def nbytes(self) -> int:
        """Accounted size in bytes."""
        return self._allocation.nbytes

    @property
    def live(self) -> bool:
        """Whether the backing device allocation is still held."""
        return self._allocation.live

    def free(self) -> None:
        """Release device memory (idempotent). The handle must not be reused."""
        if not self._allocation.live:
            return
        self._allocation.free()
        if self._buffers is not None:
            raw = self._raw if self._raw is not None \
                else self._buffers.adoptable(self.array)
            self._raw = None
            self._buffers.give(raw)

    def __enter__(self) -> "DeviceArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()

    def __len__(self) -> int:
        return self.array.shape[0]


class VirtualGPU:
    """Capacity- and time-accurate stand-in for one CUDA device."""

    def __init__(self, spec: DeviceSpec | str = "K40", *,
                 capacity_bytes: int | None = None,
                 clock: SimClock | None = None,
                 buffers: BufferPool | None = None):
        self.spec = get_device_spec(spec) if isinstance(spec, str) else spec
        self.clock = clock if clock is not None else SimClock()
        self.pool = MemoryPool(
            "device",
            capacity_bytes if capacity_bytes is not None else self.spec.mem_bytes,
            DeviceMemoryError,
        )
        # Free-list retention can never exceed what the capacity model lets
        # live at once, so the device budget is a natural default cap.
        self.buffers = buffers if buffers is not None \
            else BufferPool(self.pool.capacity_bytes)
        #: Host arrays surrendered to consuming transfers, ``id(array) ->
        #: (weakref, owning transfer label)``. Weak references so the
        #: registry never extends an array's lifetime; validated on lookup
        #: against id reuse.
        self._consumed: dict[int, tuple[weakref.ref, str]] = {}

    def _consumed_owner(self, array: np.ndarray) -> str | None:
        """The transfer label that consumed ``array``, if it is poisoned."""
        entry = self._consumed.get(id(array))
        if entry is None:
            return None
        ref, label = entry
        if ref() is not array:  # the id was reused after a gc: stale entry
            del self._consumed[id(array)]
            return None
        return label

    def _track_consumed(self, array: np.ndarray, label: str) -> None:
        if len(self._consumed) > 1024:
            self._consumed = {key: entry for key, entry
                              in self._consumed.items()
                              if entry[0]() is not None}
        self._consumed[id(array)] = (weakref.ref(array), label)

    # -- transfers ----------------------------------------------------------

    def to_device(self, array: np.ndarray, *, label: str = "h2d",
                  consume: bool = False) -> DeviceArray:
        """Copy a host array to the device (allocates + charges PCIe time).

        With ``consume=True`` the caller cedes ownership: the host array
        itself becomes the device storage (zero-copy) and is poisoned
        read-only — the caller must not touch it again. Re-consuming a
        poisoned array raises :class:`~repro.errors.DeviceError` naming the
        transfer that owns it.
        """
        owner = self._consumed_owner(array)
        if consume and owner is not None:
            raise DeviceError(
                f"to_device(consume=True, label={label!r}): host array was "
                f"already consumed by transfer {owner!r}; its memory is "
                "device storage now and cannot be ceded twice")
        source = np.ascontiguousarray(array)
        allocation = self.pool.alloc(source.nbytes, label=label)
        self.clock.charge("h2d", costs.transfer_seconds(self.spec, source.nbytes))
        if source is not array:
            # ascontiguousarray already copied; a second copy would be waste.
            return DeviceArray(source, allocation, buffers=self.buffers)
        if consume:
            if array.flags.writeable and array.flags.owndata:
                array.setflags(write=False)
                self._track_consumed(array, label)
            return DeviceArray(source, allocation, buffers=self.buffers)
        device, raw = self.buffers.take(source.shape, source.dtype)
        device[...] = source  # structured-dtype-safe copy
        return DeviceArray(device, allocation, raw=raw, buffers=self.buffers)

    def to_host(self, darray: DeviceArray, *,
                out: np.ndarray | None = None) -> np.ndarray:
        """Copy a device array back to the host (charges PCIe time).

        ``out=`` supplies the destination buffer (shape and dtype must
        match), sparing the allocation of a fresh host array. A consumed
        (poisoned) array is device storage and refused as a destination
        with :class:`~repro.errors.DeviceError`.
        """
        self._check_live(darray)
        self.clock.charge("d2h", costs.transfer_seconds(self.spec, darray.array.nbytes))
        if out is None:
            return darray.array.copy()
        owner = self._consumed_owner(out)
        if owner is not None:
            raise DeviceError(
                f"to_host(out=): destination was consumed by transfer "
                f"{owner!r}; writing through it would corrupt device storage")
        if not out.flags.writeable:
            raise DeviceError("to_host(out=): destination array is read-only")
        if out.shape != darray.array.shape or out.dtype != darray.array.dtype:
            raise ConfigError("to_host out= buffer shape/dtype mismatch")
        out[...] = darray.array
        return out

    def empty(self, shape, dtype, *, label: str = "empty") -> DeviceArray:
        """Allocate an uninitialized device array (no transfer cost)."""
        array, raw = self.buffers.take(shape, dtype)
        return DeviceArray(array, self.pool.alloc(array.nbytes, label=label),
                           raw=raw, buffers=self.buffers)

    def _adopt(self, array: np.ndarray, *, label: str) -> DeviceArray:
        """Wrap a kernel-produced array as device-resident (alloc only)."""
        return DeviceArray(array, self.pool.alloc(array.nbytes, label=label),
                           buffers=self.buffers)

    @staticmethod
    def _check_live(*darrays: DeviceArray) -> None:
        for darray in darrays:
            if not isinstance(darray, DeviceArray):
                raise ConfigError("kernel inputs must be DeviceArrays (call to_device first)")
            if not darray.live:
                raise DeviceMemoryError("use-after-free of a device array")

    # -- kernels --------------------------------------------------------------

    def sort_pairs(self, keys: DeviceArray, *payloads: DeviceArray
                   ) -> tuple[DeviceArray, ...]:
        """Radix-sort records by key; returns new device arrays.

        Accounts ping-pong scratch equal to the input size for the duration
        of the sort, as an LSD radix sort requires.
        """
        self._check_live(keys, *payloads)
        in_bytes = keys.array.nbytes + sum(p.array.nbytes for p in payloads)
        with self.pool.alloc(in_bytes, label="sort-scratch"):
            sorted_keys, sorted_payloads = kernels.sort_records(
                keys.array, *(p.array for p in payloads))
        self.clock.charge("kernel", costs.sort_pairs_seconds(
            self.spec, len(keys), keys.array.dtype.itemsize,
            sum(p.array.dtype.itemsize for p in payloads)))
        out = [self._adopt(sorted_keys, label="sort-out")]
        out.extend(self._adopt(p, label="sort-out") for p in sorted_payloads)
        return tuple(out)

    def merge_pairs(self, keys_a: DeviceArray, payloads_a: Sequence[DeviceArray],
                    keys_b: DeviceArray, payloads_b: Sequence[DeviceArray],
                    ) -> tuple[DeviceArray, ...]:
        """Merge two sorted runs of records into one (stable, A before B)."""
        self._check_live(keys_a, keys_b, *payloads_a, *payloads_b)
        kernels.require_sorted(keys_a.array, context="merge run A")
        kernels.require_sorted(keys_b.array, context="merge run B")
        merged_keys, merged_payloads = kernels.merge_sorted_records(
            keys_a.array, tuple(p.array for p in payloads_a),
            keys_b.array, tuple(p.array for p in payloads_b))
        value_bytes = sum(p.array.dtype.itemsize for p in payloads_a)
        self.clock.charge("kernel", costs.merge_pairs_seconds(
            self.spec, len(keys_a) + len(keys_b),
            keys_a.array.dtype.itemsize, value_bytes))
        out = [self._adopt(merged_keys, label="merge-out")]
        out.extend(self._adopt(p, label="merge-out") for p in merged_payloads)
        return tuple(out)

    def bounds(self, haystack: DeviceArray, queries: DeviceArray
               ) -> tuple[DeviceArray, DeviceArray]:
        """Vectorized lower/upper bounds of each query key in the haystack."""
        self._check_live(haystack, queries)
        kernels.require_sorted(haystack.array, context="bounds haystack")
        lower, upper = kernels.vectorized_bounds(haystack.array, queries.array)
        self.clock.charge("kernel", 2.0 * costs.search_seconds(
            self.spec, len(queries), len(haystack)))
        return self._adopt(lower, label="bounds"), self._adopt(upper, label="bounds")

    def exclusive_scan(self, values: DeviceArray) -> DeviceArray:
        """Exclusive prefix sum (offset computation of the compress phase)."""
        self._check_live(values)
        result = kernels.exclusive_scan(values.array)
        width = max(2, len(values))
        self.clock.charge("kernel", costs.elementwise_seconds(
            self.spec, int(values.array.nbytes * math.ceil(math.log2(width)))))
        return self._adopt(result, label="scan")

    def gather(self, source: DeviceArray, stencil: DeviceArray) -> DeviceArray:
        """``out[i] = source[stencil[i]]``."""
        self._check_live(source, stencil)
        result = kernels.gather(source.array, stencil.array)
        self.clock.charge("kernel", costs.elementwise_seconds(
            self.spec, result.nbytes + stencil.array.nbytes))
        return self._adopt(result, label="gather")

    # -- structured-record variants (KV records of the extmem substrate) ------

    @staticmethod
    def _key_column(records: DeviceArray, key_field: str) -> np.ndarray:
        names = records.array.dtype.names or ()
        if key_field not in names:
            raise ConfigError(f"records lack key field {key_field!r}")
        return records.array[key_field]

    def sort_records_device(self, records: DeviceArray, *, key_field: str = "key"
                            ) -> DeviceArray:
        """Radix-sort packed KV records by their key field.

        With pooling disabled this runs the legacy formulation (fancy
        indexing into a fresh array) — the benchmark's before-side.
        """
        self._check_live(records)
        keys = self._key_column(records, key_field)
        if self.buffers.enabled:
            out, raw = self.buffers.take(records.array.shape,
                                         records.array.dtype)
            with self.pool.alloc(records.array.nbytes, label="sort-scratch"):
                order = np.argsort(keys, kind="stable")
                np.take(records.array, order, axis=0, out=out)
        else:
            raw = None
            with self.pool.alloc(records.array.nbytes, label="sort-scratch"):
                order = np.argsort(keys, kind="stable")
                out = records.array[order]
        self.clock.charge("kernel", costs.sort_pairs_seconds(
            self.spec, len(records), keys.dtype.itemsize,
            records.array.dtype.itemsize - keys.dtype.itemsize))
        return DeviceArray(
            out, self.pool.alloc(out.nbytes, label="sort-out"),
            raw=raw, buffers=self.buffers)

    def merge_records_device(self, run_a: DeviceArray, run_b: DeviceArray, *,
                             key_field: str = "key") -> DeviceArray:
        """Merge two sorted packed-record runs into one sorted run.

        The searchsorted rank trick of :func:`kernels.merge_sorted_records`,
        scattering whole records straight into a pooled output — the
        separate merged-key column that formulation also produces would be
        discarded here, so it is never built.
        """
        self._check_live(run_a, run_b)
        keys_a = self._key_column(run_a, key_field)
        keys_b = self._key_column(run_b, key_field)
        kernels.require_sorted(keys_a, context="merge run A")
        kernels.require_sorted(keys_b, context="merge run B")
        if run_a.array.dtype != run_b.array.dtype:
            raise SortContractError("cannot merge runs with different record dtypes")
        n_a, n_b = len(run_a), len(run_b)
        if not self.buffers.enabled:
            # Legacy formulation: builds (and discards) a merged key column.
            _, (merged,) = kernels.merge_sorted_records(
                keys_a, (run_a.array,), keys_b, (run_b.array,))
            self.clock.charge("kernel", costs.merge_pairs_seconds(
                self.spec, n_a + n_b, keys_a.dtype.itemsize,
                run_a.array.dtype.itemsize - keys_a.dtype.itemsize))
            return self._adopt(merged, label="merge-out")
        out, raw = self.buffers.take((n_a + n_b,), run_a.array.dtype)
        pos_a = np.arange(n_a, dtype=np.int64) + np.searchsorted(
            keys_b, keys_a, side="left")
        pos_b = np.arange(n_b, dtype=np.int64) + np.searchsorted(
            keys_a, keys_b, side="right")
        out[pos_a] = run_a.array
        out[pos_b] = run_b.array
        self.clock.charge("kernel", costs.merge_pairs_seconds(
            self.spec, n_a + n_b, keys_a.dtype.itemsize,
            run_a.array.dtype.itemsize - keys_a.dtype.itemsize))
        return DeviceArray(
            out, self.pool.alloc(out.nbytes, label="merge-out"),
            raw=raw, buffers=self.buffers)

    def merge_records_device_k(self, runs: Sequence[DeviceArray], *,
                               key_field: str = "key") -> DeviceArray:
        """Gathered k-way merge of sorted packed-record runs (fanout-k).

        One kernel replaces a ``⌈log₂ k⌉``-deep pairwise tournament; the
        clock is charged for that tournament depth, since the gathered
        formulation still performs ``log k`` comparisons per record.
        Record payloads are gathered in one pass into a pooled output (the
        merged key column a generic formulation would emit is discarded by
        every caller, so only the argsort stencil is built from keys).
        """
        runs = list(runs)
        if not runs:
            raise ConfigError("k-way merge needs at least one run")
        self._check_live(*runs)
        key_columns = [self._key_column(run, key_field) for run in runs]
        for index, keys in enumerate(key_columns):
            kernels.require_sorted(keys, context=f"merge run {index}")
        if len(runs) == 1:
            out, raw = self.buffers.take(
                runs[0].array.shape, runs[0].array.dtype)
            out[...] = runs[0].array
            return DeviceArray(
                out, self.pool.alloc(out.nbytes, label="merge-out"),
                raw=raw, buffers=self.buffers)
        record_dtype = runs[0].array.dtype
        if any(run.array.dtype != record_dtype for run in runs[1:]):
            raise SortContractError("cannot merge runs with different record dtypes")
        total = sum(len(run) for run in runs)
        if not self.buffers.enabled:
            # Legacy formulation: builds (and discards) a merged key column.
            _, (merged,) = kernels.merge_sorted_records_k(
                key_columns, tuple((run.array,) for run in runs))
            key_nbytes = key_columns[0].dtype.itemsize
            depth = max(1, math.ceil(math.log2(len(runs))))
            self.clock.charge("kernel", depth * costs.merge_pairs_seconds(
                self.spec, total, key_nbytes,
                record_dtype.itemsize - key_nbytes))
            return self._adopt(merged, label="merge-out")
        order = np.argsort(np.concatenate(key_columns), kind="stable")
        gathered, gathered_raw = self.buffers.take((total,), record_dtype)
        np.concatenate([run.array for run in runs], out=gathered)
        out, raw = self.buffers.take((total,), record_dtype)
        np.take(gathered, order, axis=0, out=out)
        self.buffers.give(gathered_raw)
        key_nbytes = key_columns[0].dtype.itemsize
        depth = max(1, math.ceil(math.log2(len(runs))))
        self.clock.charge("kernel", depth * costs.merge_pairs_seconds(
            self.spec, total, key_nbytes,
            record_dtype.itemsize - key_nbytes))
        return DeviceArray(
            out, self.pool.alloc(out.nbytes, label="merge-out"),
            raw=raw, buffers=self.buffers)

    def bounds_records(self, haystack: DeviceArray, queries: DeviceArray, *,
                       key_field: str = "key") -> tuple[DeviceArray, DeviceArray]:
        """Vectorized bounds of query record keys within haystack record keys."""
        self._check_live(haystack, queries)
        hay_keys = self._key_column(haystack, key_field)
        query_keys = self._key_column(queries, key_field)
        kernels.require_sorted(hay_keys, context="bounds haystack")
        lower, upper = kernels.vectorized_bounds(hay_keys, query_keys)
        self.clock.charge("kernel", 2.0 * costs.search_seconds(
            self.spec, len(queries), len(haystack)))
        return self._adopt(lower, label="bounds"), self._adopt(upper, label="bounds")

    # -- escape hatches for composite kernels --------------------------------

    def charge_scan_kernel(self, n_rows: int, width: int) -> None:
        """Account a Hillis–Steele fingerprint-scan launch (map phase)."""
        self.clock.charge("kernel", costs.scan_seconds(self.spec, n_rows, width))

    def charge_elementwise(self, nbytes_touched: int) -> None:
        """Account a custom streaming kernel over ``nbytes_touched``."""
        self.clock.charge("kernel", costs.elementwise_seconds(self.spec, nbytes_touched))

    def scratch(self, nbytes: int, *, label: str = "scratch") -> Allocation:
        """Reserve transient device memory for a composite kernel."""
        return self.pool.alloc(nbytes, label=label)

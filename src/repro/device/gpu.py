"""The virtual GPU the pipeline programs against.

:class:`VirtualGPU` binds together

* a :class:`~repro.device.specs.DeviceSpec` (which GPU is being modeled),
* a capacity-enforcing device :class:`~repro.device.memory.MemoryPool`
  (exceeding it raises :class:`~repro.errors.DeviceMemoryError`, like a CUDA
  OOM), and
* a :class:`~repro.device.clock.SimClock` charged via the shared cost model
  for every transfer and kernel launch.

Data lives in :class:`DeviceArray` handles. Transfers are explicit
(:meth:`VirtualGPU.to_device` / :meth:`VirtualGPU.to_host`) so the PCIe
traffic of the two-level streaming model is visible to the telemetry, and
kernels only accept device-resident inputs — passing a bare numpy array is
a programming error, just as dereferencing host memory in a CUDA kernel is.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import ConfigError, DeviceMemoryError
from . import costs, kernels
from .clock import SimClock
from .memory import Allocation, MemoryPool
from .specs import DeviceSpec, get_device_spec


class DeviceArray:
    """A numpy array accounted against a device pool."""

    __slots__ = ("array", "_allocation")

    def __init__(self, array: np.ndarray, allocation: Allocation):
        self.array = array
        self._allocation = allocation

    @property
    def nbytes(self) -> int:
        """Accounted size in bytes."""
        return self._allocation.nbytes

    @property
    def live(self) -> bool:
        """Whether the backing device allocation is still held."""
        return self._allocation.live

    def free(self) -> None:
        """Release device memory (idempotent). The handle must not be reused."""
        self._allocation.free()

    def __enter__(self) -> "DeviceArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()

    def __len__(self) -> int:
        return self.array.shape[0]


class VirtualGPU:
    """Capacity- and time-accurate stand-in for one CUDA device."""

    def __init__(self, spec: DeviceSpec | str = "K40", *,
                 capacity_bytes: int | None = None,
                 clock: SimClock | None = None):
        self.spec = get_device_spec(spec) if isinstance(spec, str) else spec
        self.clock = clock if clock is not None else SimClock()
        self.pool = MemoryPool(
            "device",
            capacity_bytes if capacity_bytes is not None else self.spec.mem_bytes,
            DeviceMemoryError,
        )

    # -- transfers ----------------------------------------------------------

    def to_device(self, array: np.ndarray, *, label: str = "h2d") -> DeviceArray:
        """Copy a host array to the device (allocates + charges PCIe time)."""
        array = np.ascontiguousarray(array)
        allocation = self.pool.alloc(array.nbytes, label=label)
        self.clock.charge("h2d", costs.transfer_seconds(self.spec, array.nbytes))
        return DeviceArray(array.copy(), allocation)

    def to_host(self, darray: DeviceArray) -> np.ndarray:
        """Copy a device array back to the host (charges PCIe time)."""
        self._check_live(darray)
        self.clock.charge("d2h", costs.transfer_seconds(self.spec, darray.array.nbytes))
        return darray.array.copy()

    def empty(self, shape, dtype, *, label: str = "empty") -> DeviceArray:
        """Allocate an uninitialized device array (no transfer cost)."""
        array = np.empty(shape, dtype=dtype)
        return DeviceArray(array, self.pool.alloc(array.nbytes, label=label))

    def _adopt(self, array: np.ndarray, *, label: str) -> DeviceArray:
        """Wrap a kernel-produced array as device-resident (alloc only)."""
        return DeviceArray(array, self.pool.alloc(array.nbytes, label=label))

    @staticmethod
    def _check_live(*darrays: DeviceArray) -> None:
        for darray in darrays:
            if not isinstance(darray, DeviceArray):
                raise ConfigError("kernel inputs must be DeviceArrays (call to_device first)")
            if not darray.live:
                raise DeviceMemoryError("use-after-free of a device array")

    # -- kernels --------------------------------------------------------------

    def sort_pairs(self, keys: DeviceArray, *payloads: DeviceArray
                   ) -> tuple[DeviceArray, ...]:
        """Radix-sort records by key; returns new device arrays.

        Accounts ping-pong scratch equal to the input size for the duration
        of the sort, as an LSD radix sort requires.
        """
        self._check_live(keys, *payloads)
        in_bytes = keys.array.nbytes + sum(p.array.nbytes for p in payloads)
        with self.pool.alloc(in_bytes, label="sort-scratch"):
            sorted_keys, sorted_payloads = kernels.sort_records(
                keys.array, *(p.array for p in payloads))
        self.clock.charge("kernel", costs.sort_pairs_seconds(
            self.spec, len(keys), keys.array.dtype.itemsize,
            sum(p.array.dtype.itemsize for p in payloads)))
        out = [self._adopt(sorted_keys, label="sort-out")]
        out.extend(self._adopt(p, label="sort-out") for p in sorted_payloads)
        return tuple(out)

    def merge_pairs(self, keys_a: DeviceArray, payloads_a: Sequence[DeviceArray],
                    keys_b: DeviceArray, payloads_b: Sequence[DeviceArray],
                    ) -> tuple[DeviceArray, ...]:
        """Merge two sorted runs of records into one (stable, A before B)."""
        self._check_live(keys_a, keys_b, *payloads_a, *payloads_b)
        kernels.require_sorted(keys_a.array, context="merge run A")
        kernels.require_sorted(keys_b.array, context="merge run B")
        merged_keys, merged_payloads = kernels.merge_sorted_records(
            keys_a.array, tuple(p.array for p in payloads_a),
            keys_b.array, tuple(p.array for p in payloads_b))
        value_bytes = sum(p.array.dtype.itemsize for p in payloads_a)
        self.clock.charge("kernel", costs.merge_pairs_seconds(
            self.spec, len(keys_a) + len(keys_b),
            keys_a.array.dtype.itemsize, value_bytes))
        out = [self._adopt(merged_keys, label="merge-out")]
        out.extend(self._adopt(p, label="merge-out") for p in merged_payloads)
        return tuple(out)

    def bounds(self, haystack: DeviceArray, queries: DeviceArray
               ) -> tuple[DeviceArray, DeviceArray]:
        """Vectorized lower/upper bounds of each query key in the haystack."""
        self._check_live(haystack, queries)
        kernels.require_sorted(haystack.array, context="bounds haystack")
        lower, upper = kernels.vectorized_bounds(haystack.array, queries.array)
        self.clock.charge("kernel", 2.0 * costs.search_seconds(
            self.spec, len(queries), len(haystack)))
        return self._adopt(lower, label="bounds"), self._adopt(upper, label="bounds")

    def exclusive_scan(self, values: DeviceArray) -> DeviceArray:
        """Exclusive prefix sum (offset computation of the compress phase)."""
        self._check_live(values)
        result = kernels.exclusive_scan(values.array)
        width = max(2, len(values))
        self.clock.charge("kernel", costs.elementwise_seconds(
            self.spec, int(values.array.nbytes * math.ceil(math.log2(width)))))
        return self._adopt(result, label="scan")

    def gather(self, source: DeviceArray, stencil: DeviceArray) -> DeviceArray:
        """``out[i] = source[stencil[i]]``."""
        self._check_live(source, stencil)
        result = kernels.gather(source.array, stencil.array)
        self.clock.charge("kernel", costs.elementwise_seconds(
            self.spec, result.nbytes + stencil.array.nbytes))
        return self._adopt(result, label="gather")

    # -- structured-record variants (KV records of the extmem substrate) ------

    @staticmethod
    def _key_column(records: DeviceArray, key_field: str) -> np.ndarray:
        names = records.array.dtype.names or ()
        if key_field not in names:
            raise ConfigError(f"records lack key field {key_field!r}")
        return records.array[key_field]

    def sort_records_device(self, records: DeviceArray, *, key_field: str = "key"
                            ) -> DeviceArray:
        """Radix-sort packed KV records by their key field."""
        self._check_live(records)
        keys = self._key_column(records, key_field)
        with self.pool.alloc(records.array.nbytes, label="sort-scratch"):
            order = np.argsort(keys, kind="stable")
            sorted_records = records.array[order]
        self.clock.charge("kernel", costs.sort_pairs_seconds(
            self.spec, len(records), keys.dtype.itemsize,
            records.array.dtype.itemsize - keys.dtype.itemsize))
        return self._adopt(sorted_records, label="sort-out")

    def merge_records_device(self, run_a: DeviceArray, run_b: DeviceArray, *,
                             key_field: str = "key") -> DeviceArray:
        """Merge two sorted packed-record runs into one sorted run."""
        self._check_live(run_a, run_b)
        keys_a = self._key_column(run_a, key_field)
        keys_b = self._key_column(run_b, key_field)
        kernels.require_sorted(keys_a, context="merge run A")
        kernels.require_sorted(keys_b, context="merge run B")
        _, (merged,) = kernels.merge_sorted_records(
            keys_a, (run_a.array,), keys_b, (run_b.array,))
        self.clock.charge("kernel", costs.merge_pairs_seconds(
            self.spec, len(run_a) + len(run_b), keys_a.dtype.itemsize,
            run_a.array.dtype.itemsize - keys_a.dtype.itemsize))
        return self._adopt(merged, label="merge-out")

    def merge_records_device_k(self, runs: Sequence[DeviceArray], *,
                               key_field: str = "key") -> DeviceArray:
        """Gathered k-way merge of sorted packed-record runs (fanout-k).

        One kernel replaces a ``⌈log₂ k⌉``-deep pairwise tournament; the
        clock is charged for that tournament depth, since the gathered
        formulation still performs ``log k`` comparisons per record.
        """
        runs = list(runs)
        if not runs:
            raise ConfigError("k-way merge needs at least one run")
        self._check_live(*runs)
        key_columns = [self._key_column(run, key_field) for run in runs]
        for index, keys in enumerate(key_columns):
            kernels.require_sorted(keys, context=f"merge run {index}")
        if len(runs) == 1:
            return self._adopt(runs[0].array.copy(), label="merge-out")
        _, (merged,) = kernels.merge_sorted_records_k(
            key_columns, tuple((run.array,) for run in runs))
        total = sum(len(run) for run in runs)
        key_nbytes = key_columns[0].dtype.itemsize
        depth = max(1, math.ceil(math.log2(len(runs))))
        self.clock.charge("kernel", depth * costs.merge_pairs_seconds(
            self.spec, total, key_nbytes,
            runs[0].array.dtype.itemsize - key_nbytes))
        return self._adopt(merged, label="merge-out")

    def bounds_records(self, haystack: DeviceArray, queries: DeviceArray, *,
                       key_field: str = "key") -> tuple[DeviceArray, DeviceArray]:
        """Vectorized bounds of query record keys within haystack record keys."""
        self._check_live(haystack, queries)
        hay_keys = self._key_column(haystack, key_field)
        query_keys = self._key_column(queries, key_field)
        kernels.require_sorted(hay_keys, context="bounds haystack")
        lower, upper = kernels.vectorized_bounds(hay_keys, query_keys)
        self.clock.charge("kernel", 2.0 * costs.search_seconds(
            self.spec, len(queries), len(haystack)))
        return self._adopt(lower, label="bounds"), self._adopt(upper, label="bounds")

    # -- escape hatches for composite kernels --------------------------------

    def charge_scan_kernel(self, n_rows: int, width: int) -> None:
        """Account a Hillis–Steele fingerprint-scan launch (map phase)."""
        self.clock.charge("kernel", costs.scan_seconds(self.spec, n_rows, width))

    def charge_elementwise(self, nbytes_touched: int) -> None:
        """Account a custom streaming kernel over ``nbytes_touched``."""
        self.clock.charge("kernel", costs.elementwise_seconds(self.spec, nbytes_touched))

    def scratch(self, nbytes: int, *, label: str = "scratch") -> Allocation:
        """Reserve transient device memory for a composite kernel."""
        return self.pool.alloc(nbytes, label=label)

"""Assembly-quality metrics and paper-vs-measured reporting."""

from .ascii_plot import AsciiChart
from .metrics import contig_accuracy, genome_fraction
from .reporting import ComparisonTable, format_cell

__all__ = ["AsciiChart", "contig_accuracy", "genome_fraction",
           "ComparisonTable", "format_cell"]

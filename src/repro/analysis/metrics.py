"""Assembly-quality metrics against a known reference genome.

With error-free simulated reads (the regime the paper's exact-fingerprint
overlaps target), a correct assembly's contigs are exact substrings of the
reference or its reverse complement — checked by substring search. Genome
fraction is measured by projecting each correctly-placed contig back onto
reference coordinates and measuring covered bases.
"""

from __future__ import annotations

import numpy as np

from ..graph.contigs import ContigSet
from ..seq.alphabet import decode, reverse_complement


def _reference_strings(genome_codes: np.ndarray) -> tuple[str, str]:
    return decode(genome_codes), decode(reverse_complement(genome_codes))


def contig_accuracy(contigs: ContigSet, genome_codes: np.ndarray,
                    *, min_length: int = 1) -> dict[str, int | float]:
    """Fraction of contigs that are exact substrings of the reference.

    Returns counts of checked/correct/incorrect contigs plus ``accuracy``.
    Contigs shorter than ``min_length`` are skipped.
    """
    forward, backward = _reference_strings(genome_codes)
    checked = correct = 0
    for codes in contigs:
        if codes.shape[0] < min_length:
            continue
        checked += 1
        text = decode(codes)
        if text in forward or text in backward:
            correct += 1
    return {
        "checked": checked,
        "correct": correct,
        "incorrect": checked - correct,
        "accuracy": (correct / checked) if checked else 1.0,
    }


def genome_fraction(contigs: ContigSet, genome_codes: np.ndarray,
                    *, min_length: int = 1) -> float:
    """Fraction of reference bases covered by correctly-placed contigs.

    Each contig that matches the reference (either strand) marks the
    corresponding reference interval covered (every occurrence, so repeats
    are handled); the result is covered bases / genome length.
    """
    forward, backward = _reference_strings(genome_codes)
    n = len(forward)
    covered = np.zeros(n, dtype=bool)

    def mark(text: str, haystack: str, *, reverse: bool) -> None:
        start = haystack.find(text)
        while start != -1:
            if reverse:
                covered[n - start - len(text):n - start] = True
            else:
                covered[start:start + len(text)] = True
            start = haystack.find(text, start + 1)

    for codes in contigs:
        if codes.shape[0] < min_length:
            continue
        text = decode(codes)
        mark(text, forward, reverse=False)
        mark(text, backward, reverse=True)
    return float(covered.sum() / n) if n else 1.0

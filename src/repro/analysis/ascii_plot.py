"""Terminal line charts for the figure benchmarks.

The paper's Figs. 8–10 are line plots; the benchmark harness renders the
regenerated series as monospace charts (one glyph per series) so shapes —
slopes, crossovers, convergence — are visible directly in the benchmark
output and in ``benchmarks/results/``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError

GLYPHS = "ox*+#@%&"


@dataclass
class AsciiChart:
    """A multi-series scatter/line chart on a character grid.

    X positions are categorical (one column block per x label); Y is linear
    or log10. Build with :meth:`add_series`, render with :meth:`render`.
    """

    title: str
    x_labels: list[str]
    y_log: bool = False
    height: int = 12
    series: list[tuple[str, list[float]]] = field(default_factory=list)

    def add_series(self, name: str, values: list[float]) -> None:
        """Add one series; must have one value per x label."""
        if len(values) != len(self.x_labels):
            raise ConfigError("series length must match x_labels")
        if len(self.series) >= len(GLYPHS):
            raise ConfigError("too many series")
        self.series.append((name, [float(v) for v in values]))

    def _transform(self, value: float) -> float:
        if self.y_log:
            if value <= 0:
                raise ConfigError("log-scale chart requires positive values")
            return math.log10(value)
        return value

    def render(self) -> str:
        """Render the chart plus a legend."""
        if not self.series:
            raise ConfigError("no series to plot")
        transformed = [[self._transform(v) for v in values]
                       for _, values in self.series]
        low = min(min(vals) for vals in transformed)
        high = max(max(vals) for vals in transformed)
        span = (high - low) or 1.0
        n_cols = len(self.x_labels)
        col_width = max(8, max(len(label) for label in self.x_labels) + 2)
        grid = [[" "] * (n_cols * col_width) for _ in range(self.height)]
        for series_index, vals in enumerate(transformed):
            glyph = GLYPHS[series_index]
            for col, value in enumerate(vals):
                row = int(round((high - value) / span * (self.height - 1)))
                x = col * col_width + col_width // 2
                if grid[row][x] not in (" ", glyph):
                    grid[row][x] = "!"  # overlapping series
                else:
                    grid[row][x] = glyph

        def y_tick(row: int) -> str:
            value = high - row / (self.height - 1) * span
            if self.y_log:
                value = 10 ** value
            return f"{value:9.3g} |"

        lines = [f"== {self.title} =="]
        for row in range(self.height):
            lines.append(y_tick(row) + "".join(grid[row]))
        lines.append(" " * 10 + "+" + "-" * (n_cols * col_width - 1))
        axis = " " * 11
        for label in self.x_labels:
            axis += label.center(col_width)
        lines.append(axis)
        legend = "   ".join(f"{GLYPHS[i]}={name}"
                            for i, (name, _) in enumerate(self.series))
        lines.append(f"           {legend}"
                     + ("   [log y]" if self.y_log else ""))
        return "\n".join(lines)

"""Rendering of paper-vs-model-vs-measured comparison tables.

Every benchmark prints one or more :class:`ComparisonTable` blocks so that
the regenerated rows can be read against the published ones at a glance
(and EXPERIMENTS.md captures the output verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import format_duration, format_size


def format_cell(value, kind: str = "raw") -> str:
    """Format one table cell: ``duration``, ``size``, ``ratio``, or ``raw``."""
    if value is None:
        return "OOM"
    if kind == "duration":
        return format_duration(float(value))
    if kind == "size":
        return format_size(float(value))
    if kind == "ratio":
        return f"{float(value):.2f}x"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class ComparisonTable:
    """A fixed-width text table with a title and typed columns."""

    title: str
    columns: list[str]
    kinds: list[str] = field(default_factory=list)
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row (first cell is the label)."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote printed under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        kinds = self.kinds or ["raw"] * len(self.columns)
        header = [self.columns]
        body = [
            [str(row[0])] + [format_cell(cell, kind)
                             for cell, kind in zip(row[1:], kinds[1:])]
            for row in self.rows
        ]
        widths = [max(len(line[i]) for line in header + body)
                  for i in range(len(self.columns))]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(name.ljust(w) for name, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(cell.rjust(w) if i else cell.ljust(w)
                                   for i, (cell, w) in enumerate(zip(line, widths))))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table."""
        print(self.render())

"""Distributed resilience: heartbeats, deterministic retry, node recovery.

The paper's distributed reduce is a chain: the out-degree bit-vector token
travels through partition owners in descending length order, so one dead
node stalls the whole assembly. This module gives the simulated cluster the
failure ladder a production deployment would have, entirely on the
simulated clock so every timeline is deterministic and replayable:

1. **Bounded in-place retry** — every node operation (map block, shuffle
   pull, sort, reduce attempt) runs under a
   :class:`~repro.faults.RetryPolicy`: exponential backoff with seeded
   jitter, charged to the node's ``retry`` clock category.
2. **Heartbeat/timeout detection** — when retries exhaust (or an injected
   ``node-crash`` kills the process outright), the supervisor declares the
   node dead at ``last_heartbeat + node_timeout`` on the simulated clock,
   emitting one ``heartbeat-miss`` instant per missed beat.
3. **Checkpointed node restart** — a fresh :class:`WorkerNode` reopens the
   dead node's private storage; the per-phase artifact ledger (digests
   written at each phase boundary) tells it which partitions survived and
   which must be replayed. Only damaged partitions are rebuilt — from the
   retained map-phase pieces of live peers, or recomputed from the shared
   packed store for lost peers — byte-identically, because a shuffled
   partition is the concatenation of per-peer pieces in node-id order and
   each piece is re-derived in its original block order.
4. **Failover re-shuffle** — a node whose restart budget is exhausted is
   *lost*; its orphaned partitions are reassigned to surviving owners and
   rebuilt on demand as the token reaches them.
5. **Degraded-mode completion** — when a partition survives no owner, the
   run finishes on the surviving nodes and reports the drop in a
   :class:`DegradedRunReport` instead of raising (``allow_degraded=False``
   restores the old fail-stop behaviour).

Three *cheap recovery* mechanisms shorten the ladder's rungs (DESIGN.md
§2g):

* **Incremental chunk checkpoints** (``chunk_checkpoint_every``) — the
  reduce loop commits sub-partition progress to the owner's durable ledger
  (mirrored in the supervisor), so a restart resumes from the last chunk
  boundary instead of replaying the whole partition. Safe because chunk
  boundaries fall on fingerprint-group boundaries, rebuilt streams are
  byte-identical, and duplicate candidate offers are rejected by the
  graph's out-degree bit-vector.
* **Speculative re-execution** (``speculation_threshold``) — a reduce
  owner that goes heartbeat-silent past the threshold is a *suspect*: an
  idle node resumes its remaining chunks from the mirror while the victim
  restarts, both executions run for real, and the first to complete wins
  (deterministic tie-break on node id). Output is byte-identical either
  way — the loser's duplicate offers are idempotent.
* **Elastic membership** (``allow_join``) — a node joining mid-reduce
  takes a fair share of the remaining partitions through the failover
  re-shuffle path run in reverse: rebuilt from lineage on the joiner,
  lazily as the token approaches.

Everything is instrumented: ``failover``/``backoff``/``speculation`` spans,
``heartbeat-miss``/``node-join`` instants on the cluster track, and an
:class:`~repro.telemetry.EventMeter` of resilience counters surfaced in
``DistributedResult.notes``.
"""

from __future__ import annotations

import math
import shutil
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from ..config import AssemblyConfig
from ..core.checkpoint import chunk_key
from ..core.map_phase import run_map
from ..device.specs import DiskSpec, HostSpec
from ..errors import DistributedProtocolError, FaultInjected, MessageDropped
from ..extmem import PartitionStore, RunReader
from ..faults import plan as faults
from ..faults.plan import NODE_CRASH
from ..faults.retry import RetryPolicy
from ..seq.packing import PackedReadStore
from ..telemetry import EventMeter
from ..trace.tracer import NULL_TRACER
from .message import ActiveMessageLayer
from .network import NetworkSpec
from .node import WorkerNode

#: Hard cap on heartbeat-miss instants emitted per detection (trace hygiene).
_MAX_MISS_INSTANTS = 16

#: Owners tried per partition before it is declared unrecoverable. Two is
#: deliberate: a partition that kills its restarted original owner *and* a
#: fresh failover owner is poisoned data, not node failure — burning every
#: surviving node on it would turn one bad partition into a dead cluster.
_MAX_OWNERS_PER_PARTITION = 2


@dataclass(frozen=True)
class DroppedPartition:
    """One partition degraded mode gave up on."""

    length: int
    owner: int           #: last owner that failed it
    records: int         #: candidate records lost (from the sort ledger)
    reason: str

    def __str__(self) -> str:
        return (f"partition {self.length} (node{self.owner:02d}, "
                f"{self.records:,} candidates): {self.reason}")


@dataclass
class DegradedRunReport:
    """What a degraded-mode completion left behind.

    Contig-level impact: every dropped partition removes its candidate
    overlaps of exactly that length from the greedy graph, so contigs that
    relied on them end (or split) where such an overlap would have extended
    them — quantified here as the share of candidate records lost.
    """

    dropped: tuple[DroppedPartition, ...]
    lost_nodes: tuple[int, ...]
    node_restarts: int
    failovers: int
    retries: int
    candidates_total: int = 0

    @property
    def dropped_lengths(self) -> tuple[int, ...]:
        """Overlap lengths missing from the assembly."""
        return tuple(sorted(d.length for d in self.dropped))

    @property
    def candidates_dropped(self) -> int:
        """Candidate overlap records that never reached the graph."""
        return sum(d.records for d in self.dropped)

    def summary(self) -> str:
        """Human-readable degraded-run report."""
        share = (100.0 * self.candidates_dropped / self.candidates_total
                 if self.candidates_total else 0.0)
        lines = [
            f"DEGRADED RUN: {len(self.dropped)} partition(s) dropped, "
            f"{len(self.lost_nodes)} node(s) lost "
            f"({self.node_restarts} restarts, {self.failovers} failovers, "
            f"{self.retries} retries)",
            f"  contig-level impact: {self.candidates_dropped:,} candidate "
            f"overlaps lost ({share:.2f}% of all candidates); contigs may "
            f"end early at overlap lengths {list(self.dropped_lengths)}",
        ]
        lines.extend(f"  dropped {d}" for d in self.dropped)
        return "\n".join(lines)


@dataclass
class ReduceOutcome:
    """What the supervisor reports back for one reduce partition."""

    ok: bool
    node: int
    t_graph: float = 0.0
    find_done: float = 0.0
    #: Failed attempts, in order: ``{"node", "attempt", "wasted_s"}``.
    failures: list[dict] = field(default_factory=list)
    attempts: int = 1
    dropped: DroppedPartition | None = None


class _NodeDeath(Exception):
    """Internal: a node (or a peer) must go through death detection."""

    def __init__(self, victims: list[str], cause: BaseException, op: str):
        super().__init__(f"{victims} died at {op}")
        self.victims = victims
        self.cause = cause
        self.op = op


class _NodeLost(Exception):
    """Internal: the target node's restart budget is exhausted."""

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} lost")
        self.node_id = node_id


class ClusterSupervisor:
    """Owns the worker nodes and the whole failure ladder.

    The cluster driver delegates every node operation here; clean runs take
    the zero-overhead fast path (one ``node_op`` hook visit per operation,
    nothing else), faulted runs go through retry → restart → failover →
    degraded, with all detection and backoff time charged to the simulated
    clocks so the token timeline stays causal and monotone.
    """

    def __init__(self, config: AssemblyConfig, n_nodes: int, root: Path,
                 network: NetworkSpec, messages: ActiveMessageLayer,
                 store: PackedReadStore, *, tracer=None,
                 disk: DiskSpec | None = None, host: HostSpec | None = None):
        self.config = config
        self.n_nodes = n_nodes
        self.root = root
        self.network = network
        self.messages = messages
        self.store = store
        self.tracer = tracer  # raw SpanTracer | None, for WorkerNode ctor
        self.ctracer = tracer if tracer is not None else NULL_TRACER
        self.disk = disk
        self.host = host
        self.policy = RetryPolicy(max_attempts=config.reduce_max_attempts,
                                  base_backoff_s=config.retry_backoff_s,
                                  seed=config.seed)
        self.meter = EventMeter()
        self.nodes = [WorkerNode(i, config, root, messages, disk=disk,
                                 host=host, tracer=tracer)
                      for i in range(n_nodes)]
        self.lost: set[int] = set()
        self.restarts_used: dict[int, int] = {}
        #: Read ranges each node mapped, in assignment order — the lineage
        #: that lets a lost node's map piece be recomputed byte-identically.
        self.block_ranges: dict[int, list[tuple[int, int]]] = {}
        self.pulled: set[int] = set()
        self.owner_of: dict[int, int] = {}
        self.phase = "map"
        self.dropped: list[DroppedPartition] = []
        #: Supervisor-side mirror of each partition's last durable chunk:
        #: ``length -> (index, s_off, p_off, key)``. A speculative backup
        #: (whose own ledger never saw the partition) resumes from here.
        self.chunk_mirror: dict[int, tuple[int, int, int, str]] = {}
        #: Nodes whose slow progress reports have already been observed for
        #: one full ``speculation_threshold`` — further races against them
        #: need no fresh observation window. Cleared when a suspect wins a
        #: race (it caught up).
        self.suspects: set[int] = set()
        self.joined: list[int] = []

    # -- small helpers ---------------------------------------------------------

    def alive(self) -> list[WorkerNode]:
        """Current nodes not declared lost, in node-id order."""
        return [n for n in self.nodes if n.node_id not in self.lost]

    def _least_loaded(self) -> WorkerNode:
        candidates = self.alive()
        if not candidates:
            raise DistributedProtocolError(
                "no surviving nodes: every worker exhausted its restart budget")
        return min(candidates, key=lambda n: n.ctx.clock.total_seconds)

    @staticmethod
    def _scope_id(scope: str) -> int:
        return int(scope.removeprefix("node"))

    def _last_event_kind(self) -> str | None:
        plan = faults.active_plan()
        if plan is None or not plan.events:
            return None
        return plan.events[-1].kind

    # -- the bounded attempt loop ---------------------------------------------

    def _attempt_cycle(self, node: WorkerNode, op: str, fn, *,
                       counter: list[int] | None = None,
                       failures: list[dict] | None = None,
                       in_place: bool = True):
        """Run ``fn(node, attempt)`` with bounded in-place retries.

        Raises :class:`_NodeDeath` when retries exhaust, when the fault was
        an explicit ``node-crash`` (the process is gone — retrying in place
        is meaningless), when the failure killed a *different* node (a peer
        died servicing our message), or immediately when ``in_place`` is
        off — operations that append to shared state (map blocks) cannot be
        re-run in place without duplicating their partial output, so they
        go straight to wipe-and-replay recovery.
        """
        for local in range(self.policy.max_attempts):
            if counter is not None:
                attempt = counter[0]
                counter[0] += 1
            else:
                attempt = local
            before = node.ctx.clock.total_seconds
            try:
                with faults.scoped(node.scope):
                    faults.node_op(node.scope, op)
                    return fn(node, attempt)
            except (FaultInjected, MessageDropped) as exc:
                wasted = node.ctx.clock.total_seconds - before
                self.meter.bump("retries")
                self.meter.bump("wasted_s", wasted)
                if failures is not None:
                    failures.append({"node": node.node_id, "attempt": attempt,
                                     "wasted_s": wasted})
                if isinstance(exc, MessageDropped):
                    # Nobody died — drops are retried in place; only an
                    # exhausted budget makes the destination a suspect.
                    victims, fatal = [], False
                else:
                    victims = self._victims_of(node, exc)
                    for scope in victims:
                        faults.clear_crash(scope=scope)
                    fatal = self._last_event_kind() == NODE_CRASH
                others = [s for s in victims if s != node.scope]
                if others or fatal or not in_place \
                        or local + 1 >= self.policy.max_attempts:
                    victims = victims or self._victims_of(node, exc)
                    raise _NodeDeath(victims or [node.scope], exc, op) from exc
                self._backoff(node, local + 1, op)
        raise AssertionError("unreachable")  # pragma: no cover

    def _victims_of(self, node: WorkerNode, exc: BaseException) -> list[str]:
        """Which node scopes this failure killed."""
        if isinstance(exc, MessageDropped):
            # Nobody died — but a *persistent* drop makes the destination
            # unreachable; the last recorded event names the suspect.
            plan = faults.active_plan()
            if plan is not None and plan.events:
                label = plan.events[-1].path  # "node00->node01:handler"
                if "->" in label:
                    return [label.split("->")[1].split(":")[0]]
            return [node.scope]
        return [s for s in faults.crashed_scopes() if s is not None] \
            or [node.scope]

    def _backoff(self, node: WorkerNode, attempt: int, op: str) -> None:
        """Charge one deterministic backoff wait to the node's clock."""
        delay = self.policy.backoff_s(attempt, key=op)
        sim0 = node.ctx.clock.total_seconds
        node.ctx.clock.charge("retry", delay)
        self.meter.bump("backoffs")
        self.meter.bump("backoff_s", delay)
        self.meter.gauge("backoff_s_max", delay)
        if self.ctracer.enabled:
            wall = time.perf_counter()
            self.ctracer.complete("backoff", wall, wall, track="cluster",
                                  cat="resilience", det=True, sim0=sim0,
                                  sim1=sim0 + delay, node=node.node_id,
                                  attempt=attempt, op=op)

    # -- death, detection, restart, loss ---------------------------------------

    def _run_on_node(self, node_id: int, op: str, fn, *,
                     counter: list[int] | None = None,
                     failures: list[dict] | None = None,
                     in_place: bool = True):
        """The full ladder for one operation on one node.

        Retries in place; on death runs heartbeat detection and either
        restarts the node (replaying damaged state) and tries again, or —
        budget exhausted — marks it lost and raises :class:`_NodeLost` for
        the phase driver to fail the work over.
        """
        cycles = 0
        while True:
            if node_id in self.lost:
                raise _NodeLost(node_id)
            cycles += 1
            if cycles > self.n_nodes * (self.config.node_restarts + 2) + 2:
                raise DistributedProtocolError(
                    f"recovery did not converge for {op} on node {node_id}")
            try:
                return self._attempt_cycle(self.nodes[node_id], op, fn,
                                           counter=counter, failures=failures,
                                           in_place=in_place)
            except _NodeDeath as death:
                for scope in death.victims:
                    self._handle_death(self._scope_id(scope))

    def _handle_death(self, node_id: int) -> None:
        """Detect, then restart or permanently lose one dead node."""
        if node_id in self.lost:
            return
        dead = self.nodes[node_id]
        detect_at, misses = self._detect(dead)
        used = self.restarts_used.get(node_id, 0)
        if used < self.config.node_restarts:
            self.restarts_used[node_id] = used + 1
            self._restart(node_id, detect_at, misses)
        else:
            self._mark_lost(node_id)

    def _detect(self, dead: WorkerNode) -> tuple[float, int]:
        """Heartbeat-timeout detection on the simulated clock.

        The node's last heartbeat went out at the last whole
        ``heartbeat_interval`` before it died; the supervisor declares it
        dead ``node_timeout`` after that beat. Pure arithmetic on the
        simulated clock — the same failure always detects at the same
        instant.
        """
        hb = self.config.heartbeat_interval
        t_fail = dead.ctx.clock.total_seconds
        last_hb = math.floor(t_fail / hb) * hb
        detect_at = max(t_fail, last_hb + self.config.node_timeout)
        misses = max(1, int(round((detect_at - last_hb) / hb)))
        self.meter.bump("heartbeat_misses", misses)
        if self.ctracer.enabled:
            for k in range(1, min(misses, _MAX_MISS_INSTANTS) + 1):
                self.ctracer.instant("heartbeat-miss", track="cluster",
                                     cat="resilience", det=True,
                                     sim_at=last_hb + k * hb,
                                     node=dead.node_id, miss=k)
        return detect_at, misses

    def _restart(self, node_id: int, detect_at: float, misses: int) -> None:
        """Replace a dead node with a fresh worker on the same storage."""
        dead = self.nodes[node_id]
        t_fail = dead.ctx.clock.total_seconds
        wall0 = time.perf_counter()
        dead.abandon()
        fresh = WorkerNode(node_id, self.config, self.root, self.messages,
                           disk=self.disk, host=self.host, tracer=self.tracer)
        fresh.ctx.clock.advance_to(dead.ctx.clock)
        gap = detect_at - fresh.ctx.clock.total_seconds
        if gap > 0:
            fresh.ctx.clock.charge("retry", gap)
        fresh.ctx.clock.charge(
            "network", misses * self.network.heartbeat_seconds())
        fresh.owned_lengths = list(dead.owned_lengths)
        fresh.mapped_reads = dead.mapped_reads
        self.nodes[node_id] = fresh
        self.meter.bump("node_restarts")
        try:
            self._replay(fresh)
            replay_ok = True
        except (FaultInjected, MessageDropped):
            # The replacement died during its own replay: acknowledge and
            # go around the ladder again — the restart budget bounds this.
            faults.clear_crash(scope=fresh.scope)
            replay_ok = False
        if self.ctracer.enabled:
            self.ctracer.complete("failover", wall0, time.perf_counter(),
                                  track="cluster", cat="resilience", det=True,
                                  sim0=t_fail,
                                  sim1=fresh.ctx.clock.total_seconds,
                                  node=node_id, action="restart",
                                  phase=self.phase)
        if not replay_ok:
            self._handle_death(node_id)

    def _mark_lost(self, node_id: int) -> None:
        dead = self.nodes[node_id]
        dead.abandon()
        self.lost.add(node_id)
        self.meter.bump("nodes_lost")
        if self.ctracer.enabled:
            self.ctracer.instant("node-lost", track="cluster",
                                 cat="resilience", det=True,
                                 sim_at=dead.ctx.clock.total_seconds,
                                 node=node_id, phase=self.phase)

    # -- checkpointed replay ---------------------------------------------------

    def _replay(self, node: WorkerNode) -> None:
        """Bring a restarted node's storage back to the current phase.

        Ledger-driven: only artifacts whose digests are missing or damaged
        are recomputed; everything the crash did not touch is kept as-is.
        """
        if self.phase == "map":
            # Map pieces are append-streams shared by every block the node
            # ran: there is no per-block undo, so wipe and re-run the
            # node's recorded blocks in their original order (byte-identical
            # by construction).
            blocks = self.block_ranges.get(node.node_id, [])
            for path in node.map_partitions.root.glob("*.run"):
                path.unlink()
            for start, stop in blocks:
                run_map(node.ctx, self.store, node.map_partitions,
                        read_range=(start, stop))
            self.meter.bump("partitions_replayed", len(blocks))
        elif self.phase == "shuffle":
            # A crash mid-pull needs no replay: the retried pull truncates
            # and rewrites each partition. Only ledger-recorded partitions
            # that no longer digest clean are rebuilt.
            damaged = node.damaged_lengths("shuffle")
            if damaged:
                self._rebuild_on(node, damaged)
                self.meter.bump("partitions_replayed", len(damaged))
        elif self.phase == "sort":
            damaged = self._damaged_for_sort(node)
            if damaged:
                self._rebuild_on(node, damaged)
            node.sort_owned()
        elif self.phase == "reduce":
            damaged = node.damaged_lengths("sort")
            if damaged:
                self._rebuild_on(node, damaged)
                node.sort_lengths(damaged)
                self.meter.bump("partitions_replayed", len(damaged))

    def _damaged_for_sort(self, node: WorkerNode) -> list[int]:
        """Shuffle artifacts to rebuild mid-sort.

        An unsorted partition that fails its shuffle-ledger digest is only
        *damaged* if its sorted successor is absent too — the sort consumes
        (deletes) its input after the atomic publish, which is indistinct
        from corruption by digest alone.
        """
        return [length for length in node.damaged_lengths("shuffle")
                if not (node.shuffled.path("S", length, sorted_run=True).exists()
                        and node.shuffled.path("P", length,
                                               sorted_run=True).exists())]

    def _rebuild_on(self, node: WorkerNode, lengths: Iterable[int]) -> int:
        """Rebuild shuffled partitions on ``node`` from retained lineage."""
        lengths = sorted(set(lengths))
        if not lengths:
            return 0
        alive = {n.node_id: n for n in self.alive() if n is not node}
        alive[node.node_id] = node
        recompute = self._piece_provider(node, lengths)
        sim0 = node.ctx.clock.total_seconds
        try:
            pulled = node.rebuild_partitions(self.n_nodes, alive, lengths,
                                             recompute)
        finally:
            shutil.rmtree(node.ctx.workdir / "recover", ignore_errors=True)
        self.meter.bump("partitions_rebuilt", len(lengths))
        # Rebuild time is work the failure destroyed — the benchmark's
        # "lost work" denominator.
        self.meter.bump("rebuild_s", node.ctx.clock.total_seconds - sim0)
        return pulled

    def _piece_provider(self, rebuilder: WorkerNode, lengths: list[int],
                        ) -> Callable[[int, str, int], np.ndarray]:
        """Recompute lost peers' map pieces from the shared packed store.

        One filtered map pass per peer covers every needed length; the
        piece comes out byte-identical because the peer's blocks are
        re-fingerprinted in their original assignment order. Work is
        charged to the rebuilding node's own clock — recovery is never
        free.
        """
        only = frozenset(lengths)
        stores: dict[int, PartitionStore] = {}

        def recompute(peer_id: int, side: str, length: int) -> np.ndarray:
            if peer_id not in stores:
                tmp = PartitionStore(
                    rebuilder.ctx.workdir / "recover" / f"peer{peer_id:02d}",
                    rebuilder.dtype, rebuilder.ctx.accountant)
                for start, stop in self.block_ranges.get(peer_id, []):
                    run_map(rebuilder.ctx, self.store, tmp,
                            read_range=(start, stop), only_lengths=only)
                tmp.finalize()
                stores[peer_id] = tmp
            path = stores[peer_id].path(side, length)
            if not path.exists():
                return np.empty(0, dtype=rebuilder.dtype)
            with RunReader(path, rebuilder.dtype,
                           rebuilder.ctx.accountant) as reader:
                return reader.read_all()

        return recompute

    # -- phase drivers ---------------------------------------------------------

    def map_phase(self, n_blocks: int) -> None:
        """Hand read blocks to the least-loaded alive node, surviving loss."""
        self.phase = "map"
        block_reads = -(-self.store.n_reads // n_blocks)
        queue = deque((start, min(start + block_reads, self.store.n_reads))
                      for start in range(0, self.store.n_reads, block_reads))
        while queue:
            start, stop = queue[0]
            target = self._least_loaded()
            try:
                self._run_on_node(
                    target.node_id, f"map[{start}:{stop}]",
                    lambda node, _a, s=start, e=stop:
                        node.map_block(self.store, s, e),
                    in_place=False)
                self.block_ranges.setdefault(target.node_id,
                                             []).append((start, stop))
                queue.popleft()
            except _NodeLost:
                # The lost node's completed blocks are orphaned with it:
                # requeue them (ahead of the current block) for survivors.
                self.meter.bump("failovers")
                queue.extendleft(
                    reversed(self.block_ranges.pop(target.node_id, [])))
        sealed: set[int] = set()
        for node_id in [n.node_id for n in self.alive()]:
            try:
                self._run_on_node(
                    node_id, "seal-map",
                    lambda n, _a: (n.finish_map(), n.record_ledger("map")))
                sealed.add(node_id)
            except _NodeLost:
                self._remap_lost_blocks(node_id, sealed)

    def _remap_lost_blocks(self, node_id: int, sealed: set[int]) -> None:
        """Re-run a seal-time casualty's blocks on a still-open survivor."""
        orphans = list(self.block_ranges.pop(node_id, []))
        while orphans:
            open_nodes = [n for n in self.alive() if n.node_id not in sealed]
            if not open_nodes:
                raise DistributedProtocolError(
                    f"node {node_id} lost after every survivor sealed its map "
                    f"output; {len(orphans)} read blocks are unrecoverable")
            target = min(open_nodes, key=lambda n: n.ctx.clock.total_seconds)
            self.meter.bump("failovers")
            try:
                while orphans:
                    start, stop = orphans[0]
                    self._run_on_node(
                        target.node_id, f"map[{start}:{stop}]",
                        lambda node, _a, s=start, e=stop:
                            node.map_block(self.store, s, e),
                        in_place=False)
                    self.block_ranges.setdefault(target.node_id,
                                                 []).append((start, stop))
                    orphans.pop(0)
            except _NodeLost:
                # The stand-in died too; everything it absorbed is orphaned
                # again and moves to the next open survivor.
                orphans = self.block_ranges.pop(target.node_id, []) + orphans

    def shuffle_phase(self, lengths: list[int]) -> int:
        """All-to-all aggregation with owner failover. Returns bytes pulled."""
        self.phase = "shuffle"
        alive_ids = [n.node_id for n in self.alive()]
        self.owner_of = {length: alive_ids[(length - lengths[0]) % len(alive_ids)]
                         for length in lengths}
        shuffle_bytes = 0
        orphans: list[int] = []
        for node_id in list(alive_ids):
            owned = [length for length in lengths
                     if self.owner_of[length] == node_id]
            try:
                shuffle_bytes += self._pull_on(node_id, owned)
            except _NodeLost:
                orphans.extend(owned)
        # Orphaned ownerships fail over to the least-loaded survivor, whose
        # rebuild recomputes the lost nodes' pieces from lineage.
        while orphans:
            new_owner = self._least_loaded()
            for length in orphans:
                self.owner_of[length] = new_owner.node_id
            self.meter.bump("failovers")
            try:
                shuffle_bytes += self._pull_on(new_owner.node_id,
                                               sorted(set(new_owner.owned_lengths)
                                                      | set(orphans)),
                                               rebuild=True)
                orphans = []
            except _NodeLost:
                continue
        return shuffle_bytes

    def _pull_on(self, node_id: int, owned: list[int], *,
                 rebuild: bool = False) -> int:
        """One node's shuffle pull (or lineage rebuild), guarded."""
        owned = sorted(owned)

        def pull(node: WorkerNode, _attempt: int) -> int:
            node.owned_lengths = owned
            if rebuild or self.lost:
                # Some peer is gone (or this is a failover): the rebuild
                # path pulls live pieces and recomputes lost ones from
                # lineage instead of messaging dead nodes.
                return self._rebuild_on(node, owned)
            return node.pull_owned_partitions(self.nodes, owned)

        pulled = self._run_on_node(node_id, "pull", pull)
        self.pulled.add(node_id)
        self._run_on_node(node_id, "ledger-shuffle",
                          lambda n, _a: n.record_ledger("shuffle"))
        return pulled

    def sort_phase(self) -> None:
        """Per-node local sorts with owner failover."""
        self.phase = "sort"
        orphans: list[int] = []
        for node_id in [n.node_id for n in self.alive()]:
            try:
                self._run_on_node(node_id, "sort",
                                  lambda node, _a: node.sort_owned())
                self._run_on_node(node_id, "ledger-sort",
                                  lambda n, _a: n.record_ledger("sort"))
            except _NodeLost:
                orphans.extend(self.nodes[node_id].owned_lengths)
        while orphans:
            new_owner = self._least_loaded()
            for length in orphans:
                self.owner_of[length] = new_owner.node_id
            self.meter.bump("failovers")
            batch = sorted(set(orphans))
            try:
                self._run_on_node(
                    new_owner.node_id, "sort-failover",
                    lambda node, _a, b=tuple(batch):
                        (self._rebuild_on(node, b), node.sort_lengths(b)))
                # Re-fetch by id: a restart mid-op replaced the object.
                survivor = self.nodes[new_owner.node_id]
                survivor.owned_lengths = sorted(set(survivor.owned_lengths)
                                                | set(batch))
                self._run_on_node(survivor.node_id, "ledger-sort",
                                  lambda n, _a: n.record_ledger("sort"))
                orphans = []
            except _NodeLost:
                continue

    # -- reduce ---------------------------------------------------------------

    def partition_has_data(self, length: int) -> bool:
        """Whether any node holds (or ever ledgered) data for ``length``.

        Genuinely empty partitions are skipped by the token loop exactly as
        in the fail-stop driver; partitions whose files are merely damaged
        or orphaned still have ledger records and go through recovery.
        """
        node = self.nodes[self.owner_of[length]]
        if node.node_id not in self.lost \
                and node.shuffled.path("S", length, sorted_run=True).exists() \
                and node.shuffled.path("P", length, sorted_run=True).exists():
            return True
        return self._ledgered_records(length) > 0

    # -- intra-partition chunk checkpoints --------------------------------------

    def commit_chunk(self, node: WorkerNode, length: int, index: int,
                     s_off: int, p_off: int) -> None:
        """Make one chunk of reduce progress durable.

        Ordering is the protocol: the chunk's candidate offers are already
        in the graph when this runs, then the :data:`~repro.faults.CHUNK`
        kill-point fires (a crash here loses only this one chunk — the
        resume point stays at the previous commit and the re-offered
        candidates are rejected as duplicates), then the entry lands in the
        owner's durable ledger and finally in the supervisor mirror. Chunk
        commits piggyback on heartbeats, so they cost no simulated time.
        """
        name = f"reduce[{length}]"
        faults.barrier(faults.CHUNK, f"{node.scope}:{name}#{index}")
        key = chunk_key(self.config, name, index, s_off, p_off)
        node.ledger.mark_chunk("reduce", name, index, s_off, p_off, key)
        self.chunk_mirror[length] = (index, s_off, p_off, key)
        self.meter.bump("chunks_committed")

    def chunk_resume(self, node: WorkerNode, length: int,
                     ) -> tuple[int, int, int] | None:
        """Where ``node`` may resume partition ``length``: the freshest of
        its own durable ledger entry and the supervisor mirror.

        Entries are trusted only when their scope-free
        :func:`~repro.core.checkpoint.chunk_key` re-derives — a stale entry
        from an earlier configuration (or a torn ledger) resumes nothing
        and the partition replays whole, which is always correct. The
        mirror is what lets a *different* node (failover owner or
        speculative backup) resume: rebuilt partitions are byte-identical,
        so record offsets carry across nodes.
        """
        if not self.config.chunk_checkpoint_every:
            return None
        name = f"reduce[{length}]"
        candidates = [node.ledger.chunk_progress("reduce", name)]
        mirror = self.chunk_mirror.get(length)
        if mirror is not None:
            candidates.append({"index": mirror[0], "s_off": mirror[1],
                               "p_off": mirror[2], "key": mirror[3]})
        best = None
        for entry in candidates:
            if not entry:
                continue
            expected = chunk_key(self.config, name, entry["index"],
                                 entry["s_off"], entry["p_off"])
            if entry.get("key") != expected:
                continue
            if best is None or entry["index"] > best["index"]:
                best = entry
        if best is None:
            return None
        self.meter.bump("chunk_resumes")
        return best["index"], best["s_off"], best["p_off"]

    def finish_partition(self, length: int) -> None:
        """Retire a reduced partition's chunk state (mark supersedes it)."""
        self.chunk_mirror.pop(length, None)
        name = f"reduce[{length}]"
        for node in self.alive():
            if node.ledger.chunk_progress("reduce", name) is not None:
                node.ledger.clear_chunks("reduce", name)

    # -- speculation ------------------------------------------------------------

    def _suspect_at(self, dead: WorkerNode) -> float:
        """When the supervisor may *suspect* (not yet declare) a silent node.

        Same heartbeat arithmetic as :meth:`_detect` with
        ``speculation_threshold`` in place of ``node_timeout`` — a suspect
        is observable strictly earlier than a declared death, which is the
        whole budget speculation has to win by.
        """
        hb = self.config.heartbeat_interval
        t_fail = dead.ctx.clock.total_seconds
        last_hb = math.floor(t_fail / hb) * hb
        return max(t_fail, last_hb + self.config.speculation_threshold)

    def _straggling(self, owner_id: int) -> bool:
        """Whether the owner's progress reports mark it a *suspect*.

        A node whose clock trails the least-loaded survivor by more than
        ``speculation_threshold`` (a restarted crash victim carrying its
        detection gap, or any straggler) would stall the token; its
        partitions are raced instead of waited for.
        """
        if not self.config.speculation_threshold:
            return False
        others = [n.ctx.clock.total_seconds for n in self.alive()
                  if n.node_id != owner_id]
        if not others:
            return False
        lag = self.nodes[owner_id].ctx.clock.total_seconds - min(others)
        # A race only pays when the owner's lag exceeds the observation
        # window plus what moving the partition costs — estimated from the
        # rebuilds this run has already done (0 until the first sample).
        counters = self.meter.counters()
        rebuilt = counters.get("partitions_rebuilt", 0)
        est_rebuild = counters.get("rebuild_s", 0.0) / rebuilt if rebuilt \
            else 0.0
        return lag > self.config.speculation_threshold + est_rebuild

    def _reduce_attempts(self, owner_id: int, length: int, attempt_fn, *,
                         counter: list[int], failures: list[dict],
                         ) -> tuple[int, float, float]:
        """The reduce-specialized ladder: like :meth:`_run_on_node`, plus
        speculative re-execution when the owner dies or straggles.

        Returns ``(winner_id, t_graph, find_done)``.
        """
        op = f"reduce[{length}]"
        cycles = 0
        while True:
            if owner_id in self.lost:
                raise _NodeLost(owner_id)
            cycles += 1
            if cycles > self.n_nodes * (self.config.node_restarts + 2) + 2:
                raise DistributedProtocolError(
                    f"recovery did not converge for {op} on node {owner_id}")
            if self._straggling(owner_id):
                # The owner is alive but far behind the cluster: its
                # progress heartbeats give it away after one threshold of
                # observation, so a backup races it without waiting for it
                # to fail.
                result = self._speculate(
                    owner_id, length, None, attempt_fn, counter, failures)
                if result is not None:
                    return result
            try:
                t_graph, find_done = self._attempt_cycle(
                    self.nodes[owner_id], op,
                    lambda node, _a: attempt_fn(node),
                    counter=counter, failures=failures)
                return owner_id, t_graph, find_done
            except _NodeDeath as death:
                speculate = (self.config.speculation_threshold > 0
                             and self.nodes[owner_id].scope in death.victims)
                suspect_at = self._suspect_at(self.nodes[owner_id]) \
                    if speculate else 0.0
                for scope in death.victims:
                    self._handle_death(self._scope_id(scope))
                if not speculate:
                    continue
                result = self._speculate(owner_id, length, suspect_at,
                                         attempt_fn, counter, failures)
                if result is not None:
                    return result

    def _speculate(self, owner_id: int, length: int, suspect_at: float | None,
                   attempt_fn, counter: list[int], failures: list[dict],
                   ) -> tuple[int, float, float] | None:
        """Race a backup execution against the (suspect) owner.

        The backup is the least-loaded survivor; it idles until the suspect
        instant (nobody may act on silence it has not yet observed —
        ``suspect_at=None`` marks a straggler race, where the backup
        instead spends one threshold watching the owner's slow progress
        reports), pulls a byte-identical rebuild of the partition if it
        lacks one, and resumes from the mirrored chunk. The owner replays
        from its own durable ledger. Both executions are *real* — every
        offer actually reaches the graph, duplicates rejected — so
        whichever completes first can be declared the winner purely by
        simulated arithmetic (earlier ``find_done``, node id breaking
        ties) without any byte-level consequence. Returns ``None`` when
        both contenders died, sending the caller around the ladder again.
        """
        op = f"reduce[{length}]"
        backups = [n for n in self.alive() if n.node_id != owner_id]
        if not backups:
            return None
        backup_id = min(backups,
                        key=lambda n: (n.ctx.clock.total_seconds,
                                       n.node_id)).node_id
        self.meter.bump("speculations")
        contenders: list[tuple[int, float, float, float]] = []
        wall0 = time.perf_counter()
        backup = self.nodes[backup_id]
        if suspect_at is None:
            # Straggler race: a *new* suspect costs one observation window;
            # a node already under suspicion is raced immediately.
            suspect_at = backup.ctx.clock.total_seconds
            if owner_id not in self.suspects:
                suspect_at += self.config.speculation_threshold
        self.suspects.add(owner_id)
        wait = suspect_at - backup.ctx.clock.total_seconds
        if wait > 0:
            # The suspicion clock, not the backup's: it may not act on
            # silence it has not yet observed.
            backup.ctx.clock.charge("retry", wait)
        sim0 = backup.ctx.clock.total_seconds
        try:
            self._ensure_partition(backup_id, length)
            t_graph, find_done = self._attempt_cycle(
                self.nodes[backup_id], op,
                lambda node, _a: attempt_fn(node),
                counter=counter, failures=failures)
            contenders.append((backup_id, t_graph, find_done, sim0))
        except _NodeDeath as death:
            for scope in death.victims:
                self._handle_death(self._scope_id(scope))
        except _NodeLost:
            pass
        if owner_id not in self.lost:
            owner = self.nodes[owner_id]
            sim0 = owner.ctx.clock.total_seconds
            try:
                t_graph, find_done = self._attempt_cycle(
                    owner, op, lambda node, _a: attempt_fn(node),
                    counter=counter, failures=failures)
                contenders.append((owner_id, t_graph, find_done, sim0))
            except _NodeDeath as death:
                for scope in death.victims:
                    self._handle_death(self._scope_id(scope))
            except _NodeLost:
                pass
        if not contenders:
            return None
        contenders.sort(key=lambda c: (c[2], c[0]))  # find_done, then node id
        winner_id, t_graph, find_done, _ = contenders[0]
        self.owner_of[length] = winner_id
        if winner_id == owner_id:
            self.suspects.discard(owner_id)
        self.meter.bump("speculation_wins" if winner_id == backup_id
                        else "speculation_losses")
        wall1 = time.perf_counter()
        for node_id, w_graph, w_done, w_sim0 in contenders:
            won = node_id == winner_id
            if not won:
                self.meter.bump("speculation_wasted_s",
                                (w_done + w_graph) - w_sim0)
            elif node_id != owner_id:
                # Work displaced off the suspect onto the backup (rebuild
                # plus the find itself): the other half of the benchmark's
                # "lost work" denominator.
                self.meter.bump("speculation_moved_s",
                                (w_done + w_graph) - w_sim0)
            if self.ctracer.enabled:
                self.ctracer.complete(
                    "speculation", wall0, wall1, track="cluster",
                    cat="resilience", det=True, sim0=w_sim0,
                    sim1=w_done + w_graph, node=node_id, length=length,
                    action="win" if won else "lose",
                    backup=node_id == backup_id)
        return winner_id, t_graph, find_done

    # -- elastic membership -----------------------------------------------------

    def join_node(self) -> WorkerNode:
        """Accept a node joining mid-reduce (requires ``allow_join``).

        The joiner gets the next node id and a clock advanced to the
        cluster frontier (it cannot have done work before it existed).
        ``n_nodes`` deliberately stays the mapping-time count: lineage
        rebuilds enumerate the peers that mapped read blocks, and the
        joiner never did.
        """
        if not self.config.allow_join:
            raise DistributedProtocolError(
                "a node offered to join but allow_join is off")
        node_id = len(self.nodes)
        joiner = WorkerNode(node_id, self.config, self.root, self.messages,
                            disk=self.disk, host=self.host, tracer=self.tracer)
        frontier = max((n.ctx.clock for n in self.alive()),
                       key=lambda c: c.total_seconds, default=None)
        if frontier is not None:
            joiner.ctx.clock.advance_to(frontier)
        joiner.ctx.clock.charge("network", self.network.heartbeat_seconds())
        self.nodes.append(joiner)
        self.joined.append(node_id)
        self.meter.bump("nodes_joined")
        if self.ctracer.enabled:
            self.ctracer.instant("node-join", track="cluster",
                                 cat="resilience", det=True,
                                 sim_at=joiner.ctx.clock.total_seconds,
                                 node=node_id, phase=self.phase)
        return joiner

    def rebalance_to(self, joiner: WorkerNode,
                     remaining_lengths: list[int]) -> list[int]:
        """Reassign a fair share of unreduced partitions to a joiner.

        The failover re-shuffle run in reverse: ownership moves now, the
        byte-identical lineage rebuild happens lazily in
        :meth:`_ensure_partition` as the token approaches each partition —
        charged to the joiner's clock, overlapping earlier token hops,
        which is what bends the scaling curve.
        """
        share = len(self.alive())
        taken = [length for i, length in enumerate(remaining_lengths)
                 if i % share == share - 1]
        for length in taken:
            self.owner_of[length] = joiner.node_id
        self.meter.bump("join_rebalanced", len(taken))
        return taken

    def reduce_partition(self, length: int, attempt_fn) -> ReduceOutcome:
        """Run one token hop through the ladder.

        ``attempt_fn(node)`` performs the actual read + reduce on ``node``
        and returns ``(t_graph, find_done)``. Ownership moves to a survivor
        when the owner is lost; after :data:`_MAX_OWNERS_PER_PARTITION`
        owners have failed the same partition it is dropped (degraded) or,
        with ``allow_degraded=False``, the historical
        ``DistributedProtocolError`` is raised.
        """
        self.phase = "reduce"
        counter = [0]
        failures: list[dict] = []
        tried: set[int] = set()
        while True:
            owner_id = self.owner_of[length]
            if owner_id in self.lost or len(tried) >= _MAX_OWNERS_PER_PARTITION:
                replacement = self._next_owner(length, tried, failures, counter)
                if isinstance(replacement, ReduceOutcome):
                    return replacement
                owner_id = replacement
            tried.add(owner_id)
            try:
                self._ensure_partition(owner_id, length)
                winner_id, t_graph, find_done = self._reduce_attempts(
                    owner_id, length, attempt_fn,
                    counter=counter, failures=failures)
                self.finish_partition(length)
                return ReduceOutcome(ok=True, node=winner_id, t_graph=t_graph,
                                     find_done=find_done, failures=failures,
                                     attempts=max(counter[0], 1))
            except _NodeLost:
                continue

    def _next_owner(self, length: int, tried: set[int], failures: list[dict],
                    counter: list[int]):
        """Fail a partition over, or give up on it (degrade / raise)."""
        candidates = [n for n in self.alive() if n.node_id not in tried]
        last_owner = self.owner_of[length]
        if len(tried) >= _MAX_OWNERS_PER_PARTITION or not candidates:
            if not self.config.allow_degraded:
                raise DistributedProtocolError(
                    f"reduce token lost: partition {length} unrecoverable "
                    f"after {max(counter[0], 1)} attempts on nodes "
                    f"{sorted(tried) or [last_owner]}")
            drop = DroppedPartition(
                length=length, owner=last_owner,
                records=self._ledgered_records(length),
                reason=f"no surviving owner after "
                       f"{max(counter[0], 1)} attempts")
            self.dropped.append(drop)
            self.meter.bump("partitions_dropped")
            if self.ctracer.enabled:
                self.ctracer.instant("partition-dropped", track="cluster",
                                     cat="resilience", det=True,
                                     sim_at=self.nodes[last_owner]
                                     .ctx.clock.total_seconds,
                                     length=length, node=last_owner)
            return ReduceOutcome(ok=False, node=last_owner, failures=failures,
                                 attempts=max(counter[0], 1), dropped=drop)
        new_owner = min(candidates, key=lambda n: n.ctx.clock.total_seconds)
        self.owner_of[length] = new_owner.node_id
        self.meter.bump("failovers")
        if self.ctracer.enabled:
            wall = time.perf_counter()
            self.ctracer.complete("failover", wall, wall, track="cluster",
                                  cat="resilience", det=True,
                                  sim0=new_owner.ctx.clock.total_seconds,
                                  sim1=new_owner.ctx.clock.total_seconds,
                                  node=new_owner.node_id, action="reassign",
                                  length=length)
        return new_owner.node_id

    def _ensure_partition(self, owner_id: int, length: int) -> None:
        """Make sure the owner holds sorted data for ``length`` (failover)."""
        node = self.nodes[owner_id]
        s_sorted = node.shuffled.path("S", length, sorted_run=True)
        p_sorted = node.shuffled.path("P", length, sorted_run=True)
        if s_sorted.exists() and p_sorted.exists():
            return
        if length in node.owned_lengths and not self._ledgered_records(length):
            return  # genuinely empty partition: nothing to rebuild
        self._run_on_node(
            owner_id, f"rebuild[{length}]",
            lambda n, _a: (self._rebuild_on(n, [length]),
                           n.sort_lengths([length])))
        if length not in node.owned_lengths:
            node.owned_lengths = sorted(set(node.owned_lengths) | {length})

    def _ledgered_records(self, length: int) -> int:
        """Candidate records of one partition, from the sort ledgers.

        Several nodes may have ledgered the same partition (the original
        owner and a failover owner record byte-identical rebuilds), so the
        count is the *max* over nodes of each node's S+P record total —
        never the sum.
        """
        per_node = []
        for node in self.nodes:
            total = 0
            for rel, digest in node.ledger.recorded_artifacts("sort").items():
                name = Path(rel).name
                if name.endswith(".sorted.run") and \
                        int(name.split(".")[0].split("_")[1]) == length:
                    total += int(digest.split(":")[0]) // node.dtype.itemsize
            per_node.append(total)
        return max(per_node, default=0)

    # -- reporting -------------------------------------------------------------

    def degraded_report(self, candidates_total: int) -> DegradedRunReport | None:
        """The degraded-run report, or ``None`` for a fully recovered run."""
        if not self.dropped:
            return None
        counters = self.meter.counters()
        return DegradedRunReport(
            dropped=tuple(self.dropped),
            lost_nodes=tuple(sorted(self.lost)),
            node_restarts=int(counters.get("node_restarts", 0)),
            failovers=int(counters.get("failovers", 0)),
            retries=int(counters.get("retries", 0)),
            # Processed candidates plus the dropped ones = the clean total.
            candidates_total=candidates_total
            + sum(d.records for d in self.dropped))

"""Fingerprint-range partitioning for the reduce phase (paper future work).

The paper's length partitioning serializes graph building: the node owning
length ``l`` must wait for the out-degree bit-vector from the node owning
``l+1``, bounding reduce scalability at ``n_max = t_o / t_g`` (§III.E.3).
The authors' stated future direction is "partitioning the suffixes/prefixes
based on their fingerprints rather than on lengths".

This module implements that alternative in the simulated cluster:

* every sorted partition (length ``l``, sides S/P) is split into ``n``
  *contiguous key ranges* (the runs are key-sorted, so a range is a
  contiguous slice — each node reads only its share of every partition),
* nodes find suffix–prefix matches for **all lengths of their own range in
  parallel** — no cross-node data dependency, because a fingerprint match
  can only pair records inside one range,
* the resulting candidate lists are applied to the greedy graph centrally,
  still in descending length order (and, within a length, range-major
  stream order), so the greedy semantics stay deterministic.

The reduce critical path becomes ``max_node(t_find) + t_apply`` instead of
``t_o·p/n + t_g·p``: edge application is no longer interleaved with ``p``
token hops. ``benchmarks/bench_ablation_partitioning.py`` compares both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import AssemblyConfig
from ..core.reduce_phase import REDUCE_WINDOW_DIVISOR, ReduceReport, reduce_partition
from ..core.context import RunContext
from ..device import SimClock, VirtualGPU
from ..device.specs import DiskSpec
from ..errors import ConfigError
from ..extmem import IOAccountant, PartitionStore
from ..extmem.records import KEY_FIELD
from ..graph import GreedyStringGraph
from ..seq.packing import PackedReadStore


@dataclass
class FPReduceResult:
    """Outcome of a fingerprint-partitioned reduce."""

    graph: GreedyStringGraph
    report: ReduceReport
    critical_seconds: float
    per_node_find_seconds: list[float]
    apply_seconds: float
    notes: dict[str, float] = field(default_factory=dict)


class _NodeContext:
    """The slice of :class:`~repro.core.context.RunContext` reduce needs:
    a clock, a metered virtual GPU, a disk accountant, and host charging."""

    def __init__(self, config: AssemblyConfig, disk: DiskSpec | None):
        from ..device.specs import HostSpec

        self.config = config
        self.clock = SimClock()
        self.accountant = IOAccountant(disk if disk is not None else DiskSpec(),
                                       self.clock)
        self.gpu = VirtualGPU(config.device_name,
                              capacity_bytes=config.memory.device_bytes,
                              clock=self.clock)
        self.host_spec = HostSpec()

    charge_host = RunContext.charge_host


class _ArrayRun:
    """RunReader-shaped view over an in-memory record slice."""

    def __init__(self, records: np.ndarray):
        self._records = records
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= self._records.shape[0]

    @property
    def remaining(self) -> int:
        return self._records.shape[0] - self._cursor

    def read(self, n: int) -> np.ndarray:
        chunk = self._records[self._cursor:self._cursor + n]
        self._cursor += chunk.shape[0]
        return chunk


def _range_boundaries(n_ranges: int) -> np.ndarray:
    """Key-space split points: n equal slices of the uint64 key space."""
    edges = np.linspace(0, float(2**63), n_ranges + 1)
    return edges.astype(np.uint64)


def reduce_fingerprint_partitioned(config: AssemblyConfig,
                                   partitions: PartitionStore,
                                   store: PackedReadStore,
                                   n_nodes: int, *,
                                   disk: DiskSpec | None = None) -> FPReduceResult:
    """Run the fingerprint-partitioned reduce over sorted partitions.

    ``partitions`` must already be sorted (the standard sort phase output).
    The per-node find work really executes; per-node clocks model the time;
    the critical path is ``max(find) + apply``.
    """
    if n_nodes < 1:
        raise ConfigError("n_nodes must be >= 1")
    boundaries = _range_boundaries(n_nodes)
    graph = GreedyStringGraph(store.n_reads, store.read_length)
    report = ReduceReport()
    _, m_d = config.resolved_blocks(partitions.dtype.itemsize)
    window = max(1, m_d // REDUCE_WINDOW_DIVISOR)

    node_contexts = [_NodeContext(config, disk) for _ in range(n_nodes)]

    # Collected candidates: (length, node, sources, targets) in stream order.
    collected: list[tuple[int, int, np.ndarray, np.ndarray]] = []

    class _CollectingGraph:
        """Greedy-graph stand-in that records candidates instead of applying."""

        read_length = store.read_length

        def __init__(self, length: int, node_id: int):
            self._length = length
            self._node_id = node_id

        def add_candidates(self, sources, targets, length):
            collected.append((length, self._node_id,
                              np.asarray(sources), np.asarray(targets)))
            return 0

    for length in sorted(partitions.lengths(), reverse=True):
        s_path = partitions.path("S", length, sorted_run=True)
        p_path = partitions.path("P", length, sorted_run=True)
        if not (s_path.exists() and p_path.exists()):
            continue
        with partitions.open_run("S", length, sorted_run=True) as reader:
            suffixes = reader.read_all()
        with partitions.open_run("P", length, sorted_run=True) as reader:
            prefixes = reader.read_all()
        s_cuts = np.searchsorted(suffixes[KEY_FIELD], boundaries)
        p_cuts = np.searchsorted(prefixes[KEY_FIELD], boundaries)
        for node_id, ctx in enumerate(node_contexts):
            s_slice = suffixes[s_cuts[node_id]:s_cuts[node_id + 1]]
            p_slice = prefixes[p_cuts[node_id]:p_cuts[node_id + 1]]
            # Each node reads only its contiguous slice of the sorted run.
            ctx.accountant.add_read(int(s_slice.nbytes + p_slice.nbytes), seeks=2)
            if s_slice.shape[0] == 0 or p_slice.shape[0] == 0:
                continue
            sink = _CollectingGraph(length, node_id)
            reduce_partition(ctx, sink, _ArrayRun(s_slice), _ArrayRun(p_slice),
                             length, window, report)
        report.partitions_processed += 1

    find_seconds = [ctx.clock.total_seconds for ctx in node_contexts]

    # Central application: descending length, then node (range) order — the
    # same deterministic order a single node streaming ranges would produce.
    apply_clock = SimClock()
    from ..device import costs
    from ..device.specs import HostSpec

    collected.sort(key=lambda item: (-item[0], item[1]))
    for length, _node, sources, targets in collected:
        graph.add_candidates(sources, targets, length)
        apply_clock.charge("host", costs.host_work_seconds(
            HostSpec(), int(sources.shape[0]) * 16))
    report.edges_added = graph.n_edges
    apply_seconds = apply_clock.total_seconds
    return FPReduceResult(
        graph=graph,
        report=report,
        critical_seconds=(max(find_seconds) if find_seconds else 0.0) + apply_seconds,
        per_node_find_seconds=find_seconds,
        apply_seconds=apply_seconds,
        notes={"candidates": float(report.candidates)},
    )

"""Distributed LaSAGNA (§III.E): a simulated multi-node cluster.

The paper distributes the pipeline over GASNet active messages: a master
load-balances map blocks, nodes shuffle partitions all-to-all into private
storage, sort locally, and serialize graph building by passing the
out-degree bit-vector between the nodes that own consecutive length
partitions. This package reproduces that structure in-process:

* :mod:`repro.distributed.network` — the interconnect model (56 Gb/s IB
  class) charging per-byte transfer time,
* :mod:`repro.distributed.message` — the active-message layer (handlers
  registered per node, request/response with payload accounting),
* :mod:`repro.distributed.node` — one worker: private storage directory,
  private budgets, its own virtual GPU and simulated clock,
* :mod:`repro.distributed.cluster` — the distributed assembler and its
  phase barriers; produces per-node, per-phase timings (the data behind
  Fig. 10) and the same contigs a single-node run yields,
* :mod:`repro.distributed.resilience` — the failure ladder: heartbeat
  detection, deterministic bounded retry, checkpointed node restart with
  ledger-verified replay, partition failover and degraded-mode completion.

Every node's work actually executes (on this process), so the distributed
pipeline is functionally real; only *time* is simulated, with barriers
taking the maximum clock across participants.
"""

from .network import NetworkSpec
from .message import ActiveMessageLayer, node_scope
from .node import WorkerNode
from .resilience import (ClusterSupervisor, DegradedRunReport,
                         DroppedPartition)
from .cluster import DistributedAssembler, DistributedResult

__all__ = [
    "NetworkSpec",
    "ActiveMessageLayer",
    "node_scope",
    "WorkerNode",
    "ClusterSupervisor",
    "DegradedRunReport",
    "DroppedPartition",
    "DistributedAssembler",
    "DistributedResult",
]

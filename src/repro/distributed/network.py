"""Interconnect model for the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Payload of one heartbeat probe (a liveness ping carries no data).
HEARTBEAT_BYTES = 64


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point network characteristics.

    Defaults model the paper's SuperMIC interconnect: 56 Gb/s FDR
    InfiniBand (≈ 7 GB/s payload bandwidth) with microsecond-scale latency.
    """

    name: str = "infiniband-fdr"
    bandwidth: float = 7e9  #: bytes/second point-to-point
    latency_seconds: float = 2e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency_seconds < 0:
            raise ConfigError("invalid network parameters")

    def transfer_seconds(self, nbytes: int) -> float:
        """Modeled time to move ``nbytes`` between two nodes."""
        return self.latency_seconds + max(0, nbytes) / self.bandwidth

    def heartbeat_seconds(self) -> float:
        """Modeled cost of one supervisor heartbeat probe (tiny payload)."""
        return self.transfer_seconds(HEARTBEAT_BYTES)

    @staticmethod
    def ethernet_10g() -> "NetworkSpec":
        """A slower 10 GbE alternative for sensitivity studies."""
        return NetworkSpec(name="10gbe", bandwidth=1.1e9, latency_seconds=3e-5)

"""One worker of the simulated cluster.

Each worker owns a private storage directory (the paper: "each node also
has access to private storage for shuffling and sorting intermediate data
… must not be shared across nodes"), its own memory budgets, virtual GPU
and simulated clock, and registers active-message handlers for serving its
map-phase partition pieces during the shuffle.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..config import AssemblyConfig
from ..core.context import RunContext
from ..core.map_phase import run_map
from ..core.sort_phase import run_sort
from ..device.specs import DiskSpec, HostSpec
from ..extmem import PartitionStore, RunReader, RunWriter
from ..extmem.records import kv_dtype
from ..seq.packing import PackedReadStore
from ..trace.tracer import NULL_TRACER
from .message import ActiveMessageLayer

#: AM handler name for pulling a map-phase partition piece from a peer.
FETCH_PARTITION = "fetch_partition"


class WorkerNode:
    """Private state + handlers of one cluster node."""

    def __init__(self, node_id: int, config: AssemblyConfig, root: Path,
                 messages: ActiveMessageLayer, *,
                 disk: DiskSpec | None = None, host: HostSpec | None = None,
                 tracer=None):
        self.node_id = node_id
        # All of this node's spans land on "nodeNN/..." tracks of the shared
        # cluster tracer, stamped against this node's own simulated clock
        # (the RunContext binds the clock on top of the prefix).
        node_tracer = (tracer if tracer is not None else NULL_TRACER).bind(
            prefix=f"node{node_id:02d}/")
        self.ctx = RunContext(config, workdir=root / f"node{node_id:02d}",
                              disk=disk, host=host, tracer=node_tracer)
        self.messages = messages
        self.dtype = kv_dtype(config.fingerprint_lanes)
        self.map_partitions = PartitionStore(self.ctx.workdir / "map_parts",
                                             self.dtype, self.ctx.accountant)
        self.shuffled = PartitionStore(self.ctx.workdir / "partitions",
                                       self.dtype, self.ctx.accountant)
        self.owned_lengths: list[int] = []
        self.mapped_reads = 0
        messages.register_node(node_id, self.ctx.clock)
        messages.register_handler(node_id, FETCH_PARTITION, self._serve_partition)

    # -- map ---------------------------------------------------------------

    def map_block(self, store: PackedReadStore, start: int, stop: int) -> None:
        """Fingerprint reads ``[start, stop)`` into the local map partitions."""
        run_map(self.ctx, store, self.map_partitions, read_range=(start, stop))
        self.mapped_reads += stop - start

    def finish_map(self) -> None:
        """Close local map-phase partition writers."""
        self.map_partitions.finalize()

    # -- shuffle ------------------------------------------------------------

    def _serve_partition(self, side: str, length: int) -> tuple[np.ndarray, int]:
        """AM handler: read one local map partition and return its records."""
        path = self.map_partitions.path(side, length)
        if not path.exists():
            empty = np.empty(0, dtype=self.dtype)
            return empty, 0
        with RunReader(path, self.dtype, self.ctx.accountant) as reader:
            records = reader.read_all()
        return records, records.nbytes

    def pull_owned_partitions(self, peers: list["WorkerNode"], lengths: list[int],
                              ) -> int:
        """Aggregate this node's partitions from every peer (incl. itself).

        Returns the number of bytes pulled over the network.
        """
        pulled = 0
        remote_peers = [peer for peer in peers if peer.node_id != self.node_id]
        for length in lengths:
            for side in ("S", "P"):
                destination = self.shuffled.path(side, length)
                local_piece = self.map_partitions.path(side, length)
                if not remote_peers:
                    # Single node: the data is already in place — rename only.
                    if local_piece.exists():
                        local_piece.replace(destination)
                    continue
                writer = RunWriter(destination, self.dtype, self.ctx.accountant)
                try:
                    for peer in peers:
                        records = self.messages.request(
                            self.node_id, peer.node_id, FETCH_PARTITION, side, length)
                        if records.shape[0]:
                            writer.append(records)
                            if peer.node_id != self.node_id:
                                pulled += records.nbytes
                finally:
                    writer.close()
        self.owned_lengths = sorted(lengths)
        return pulled

    def drop_map_partitions(self) -> None:
        """Delete served map-phase files (consumed by the shuffle)."""
        for path in self.map_partitions.root.glob("*.run"):
            path.unlink()

    # -- sort ----------------------------------------------------------------

    def sort_owned(self):
        """Sort every owned shuffled partition with local budgets."""
        return run_sort(self.ctx, self.shuffled)

"""One worker of the simulated cluster.

Each worker owns a private storage directory (the paper: "each node also
has access to private storage for shuffling and sorting intermediate data
… must not be shared across nodes"), its own memory budgets, virtual GPU
and simulated clock, and registers active-message handlers for serving its
map-phase partition pieces during the shuffle.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from typing import Callable, Iterable

from ..config import AssemblyConfig
from ..core.checkpoint import CheckpointManager, config_fingerprint
from ..core.context import RunContext
from ..core.map_phase import run_map
from ..core.sort_phase import make_sorter, run_sort
from ..device.specs import DiskSpec, HostSpec
from ..extmem import PartitionStore, RunReader, RunWriter
from ..extmem.records import kv_dtype
from ..seq.packing import PackedReadStore
from ..trace.tracer import NULL_TRACER
from .message import ActiveMessageLayer, node_scope

#: AM handler name for pulling a map-phase partition piece from a peer.
FETCH_PARTITION = "fetch_partition"

#: Per-node ledger phases, in pipeline order.
LEDGER_PHASES = ("map", "shuffle", "sort")


class WorkerNode:
    """Private state + handlers of one cluster node."""

    def __init__(self, node_id: int, config: AssemblyConfig, root: Path,
                 messages: ActiveMessageLayer, *,
                 disk: DiskSpec | None = None, host: HostSpec | None = None,
                 tracer=None):
        self.node_id = node_id
        # All of this node's spans land on "nodeNN/..." tracks of the shared
        # cluster tracer, stamped against this node's own simulated clock
        # (the RunContext binds the clock on top of the prefix).
        node_tracer = (tracer if tracer is not None else NULL_TRACER).bind(
            prefix=f"node{node_id:02d}/")
        self.ctx = RunContext(config, workdir=root / f"node{node_id:02d}",
                              disk=disk, host=host, tracer=node_tracer)
        self.messages = messages
        self.dtype = kv_dtype(config.fingerprint_lanes)
        self.map_partitions = PartitionStore(self.ctx.workdir / "map_parts",
                                             self.dtype, self.ctx.accountant)
        self.shuffled = PartitionStore(self.ctx.workdir / "partitions",
                                       self.dtype, self.ctx.accountant)
        self.owned_lengths: list[int] = []
        self.mapped_reads = 0
        # Per-node artifact ledger (state.json in the node's private dir):
        # each phase records digests of the files it produced, so a
        # restarted replacement can tell intact partitions from damaged
        # ones and replay only the latter. A fresh WorkerNode on the same
        # workdir reloads the dead node's surviving ledger — that survival
        # is the whole point of checkpointed node recovery.
        self.ledger = CheckpointManager(
            self.ctx.workdir,
            config_fingerprint(config, node_scope(node_id)))
        messages.register_node(node_id, self.ctx.clock)
        messages.register_handler(node_id, FETCH_PARTITION, self._serve_partition)

    @property
    def scope(self) -> str:
        """This node's fault-plan scope label (``node00``, ``node01``, …)."""
        return node_scope(self.node_id)

    # -- map ---------------------------------------------------------------

    def map_block(self, store: PackedReadStore, start: int, stop: int) -> None:
        """Fingerprint reads ``[start, stop)`` into the local map partitions."""
        run_map(self.ctx, store, self.map_partitions, read_range=(start, stop))
        self.mapped_reads += stop - start

    def finish_map(self) -> None:
        """Close local map-phase partition writers."""
        self.map_partitions.finalize()

    # -- shuffle ------------------------------------------------------------

    def _serve_partition(self, side: str, length: int) -> tuple[np.ndarray, int]:
        """AM handler: read one local map partition and return its records."""
        path = self.map_partitions.path(side, length)
        if not path.exists():
            empty = np.empty(0, dtype=self.dtype)
            return empty, 0
        with RunReader(path, self.dtype, self.ctx.accountant) as reader:
            records = reader.read_all()
        return records, records.nbytes

    def pull_owned_partitions(self, peers: list["WorkerNode"], lengths: list[int],
                              ) -> int:
        """Aggregate this node's partitions from every peer (incl. itself).

        Returns the number of bytes pulled over the network.
        """
        pulled = 0
        remote_peers = [peer for peer in peers if peer.node_id != self.node_id]
        for length in lengths:
            for side in ("S", "P"):
                destination = self.shuffled.path(side, length)
                local_piece = self.map_partitions.path(side, length)
                if not remote_peers:
                    # Single node: the data is already in place — rename only.
                    if local_piece.exists():
                        local_piece.replace(destination)
                    continue
                writer = RunWriter(destination, self.dtype, self.ctx.accountant)
                try:
                    for peer in peers:
                        records = self.messages.request(
                            self.node_id, peer.node_id, FETCH_PARTITION, side, length)
                        if records.shape[0]:
                            writer.append(records)
                            if peer.node_id != self.node_id:
                                pulled += records.nbytes
                finally:
                    writer.close()
        self.owned_lengths = sorted(lengths)
        return pulled

    def drop_map_partitions(self) -> None:
        """Delete served map-phase files (consumed by the shuffle)."""
        for path in self.map_partitions.root.glob("*.run"):
            path.unlink()

    # -- sort ----------------------------------------------------------------

    def sort_owned(self):
        """Sort every owned shuffled partition with local budgets.

        Idempotent: partitions whose sorted file already exists (a restarted
        node replaying the phase) are skipped by :func:`run_sort`.
        """
        return run_sort(self.ctx, self.shuffled)

    def sort_lengths(self, lengths: Iterable[int]) -> None:
        """Sort just the given shuffled partitions (targeted recovery)."""
        sorter = make_sorter(self.ctx, self.dtype)
        for length in sorted(lengths):
            for side in ("S", "P"):
                unsorted_path = self.shuffled.path(side, length)
                if not unsorted_path.exists():
                    continue
                sorter.sort_file(unsorted_path,
                                 self.shuffled.path(side, length, sorted_run=True))
                self.shuffled.delete(side, length)

    # -- recovery ------------------------------------------------------------

    def record_ledger(self, phase: str) -> None:
        """Digest this phase's on-disk artifacts into the node ledger."""
        if phase == "map":
            artifacts = sorted(self.map_partitions.root.glob("[SP]_*.run"))
        elif phase == "shuffle":
            artifacts = [self.shuffled.path(side, length)
                         for length in self.owned_lengths for side in ("S", "P")
                         if self.shuffled.path(side, length).exists()]
        elif phase == "sort":
            artifacts = [self.shuffled.path(side, length, sorted_run=True)
                         for length in self.owned_lengths for side in ("S", "P")
                         if self.shuffled.path(side, length, sorted_run=True).exists()]
        else:
            raise ValueError(f"no ledger phase {phase!r}")
        self.ledger.mark(phase, artifacts)

    def damaged_lengths(self, phase: str) -> list[int]:
        """Owned lengths whose ``phase`` artifacts fail their ledger digest."""
        damaged = set()
        for rel in self.ledger.damaged(phase):
            stem = Path(rel).name.split(".")[0]  # e.g. "S_00033"
            damaged.add(int(stem.split("_")[1]))
        return sorted(damaged)

    def rebuild_partitions(self, n_nodes: int, alive: dict[int, "WorkerNode"],
                           lengths: Iterable[int],
                           recompute_piece: Callable[[int, str, int], np.ndarray],
                           ) -> int:
        """Reconstruct shuffled partitions byte-identically from lineage.

        A shuffled partition is the concatenation, in node-id order, of each
        peer's retained map-phase piece. Pieces of live peers are re-pulled
        over the active-message layer; pieces of lost peers (or of this node
        itself after a single-node rename consumed the piece) come from
        ``recompute_piece(peer_id, side, length)``, which re-derives them
        from the shared packed store. Returns bytes pulled over the network.
        """
        pulled = 0
        for length in sorted(lengths, reverse=True):
            for side in ("S", "P"):
                # Drop damaged leftovers of the dead attempt first: a stale
                # sorted file would make the sort skip the rebuilt input.
                self.shuffled.delete(side, length)
                self.shuffled.delete(side, length, sorted_run=True)
                writer = RunWriter(self.shuffled.path(side, length), self.dtype,
                                   self.ctx.accountant)
                try:
                    for peer_id in range(n_nodes):
                        peer = alive.get(peer_id)
                        if peer is not None and \
                                peer.map_partitions.path(side, length).exists():
                            records = self.messages.request(
                                self.node_id, peer_id, FETCH_PARTITION,
                                side, length)
                        else:
                            records = recompute_piece(peer_id, side, length)
                        if records.shape[0]:
                            writer.append(records)
                            if peer_id != self.node_id:
                                pulled += records.nbytes
                finally:
                    writer.close()
        return pulled

    def abandon(self) -> None:
        """Tear down a declared-dead node's in-process residue.

        The simulated process died but its private storage survives; the
        replacement node reopens the same directory. What must not survive
        are this object's open stream writers (the exclusivity registry
        would reject the replacement's files) and its executor threads.
        """
        for writer in list(self.map_partitions._writers.values()):
            try:
                writer.close()
            except Exception:
                pass
        self.map_partitions._writers.clear()
        for writer in list(self.shuffled._writers.values()):
            try:
                writer.close()
            except Exception:
                pass
        self.shuffled._writers.clear()
        self.ctx.executor.shutdown()

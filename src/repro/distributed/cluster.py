"""The distributed assembler and its phase barriers (§III.E).

Execution model: every node's work really runs (in this process, against
its private storage and budgets); *time* comes from each node's simulated
clock, and a barrier at the end of each phase advances every clock to the
slowest participant's. The phase timings this produces are the series
behind Fig. 10:

* **map** — the master hands read blocks to whichever node is least loaded
  (modeling GASNet work-request messages); scales ~1/n.
* **shuffle** — all-to-all: each node pulls its owned length partitions
  from every peer; only exists for n > 1 (the scaling overhead the paper
  calls out).
* **sort** — per-node local external sorts; scales ~1/n via aggregate
  disk bandwidth.
* **reduce** — overlap finding is parallel per partition owner, but edge
  insertion is serialized by the out-degree bit-vector token traveling
  through partitions in descending length order; the critical path follows
  the paper's ``t_o · p/n + t_g · p`` law.
* **compress** — on the master, as in the single-node pipeline.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..config import AssemblyConfig
from ..core.compress_phase import run_compress
from ..core.map_phase import overlap_lengths
from ..core.reduce_phase import (REDUCE_WINDOW_DIVISOR, ReduceReport,
                                 reduce_partition)
from ..device.specs import DiskSpec, HostSpec
from ..errors import ConfigError
from ..extmem import RunReader
from ..graph import GreedyStringGraph
from ..graph.contigs import ContigSet
from ..seq.packing import PackedReadStore
from ..seq.stats import assembly_stats
from ..trace.tracer import NULL_TRACER, SpanTracer
from .message import ActiveMessageLayer
from .network import NetworkSpec
from .node import WorkerNode
from .resilience import ClusterSupervisor, DegradedRunReport

#: Map blocks handed out per node on average (load-balancing granularity).
BLOCKS_PER_NODE = 4


@dataclass
class DistributedResult:
    """Everything a distributed run reports."""

    n_nodes: int
    n_reads: int
    read_length: int
    contigs: ContigSet
    phase_seconds: dict[str, float]
    per_node_seconds: dict[str, list[float]]
    shuffle_bytes: int
    reduce_report: ReduceReport
    edges: int
    notes: dict[str, float] = field(default_factory=dict)
    #: Bit-vector token hand-offs: one entry per reduce attempt, recording
    #: which node held the token for which partition and whether it survived.
    #: Failed attempts carry ``wasted_s`` (simulated seconds the aborted
    #: attempt burned); successful hops carry ``sim0``/``sim1`` (the token
    #: hold window on the simulated timeline).
    token_trace: tuple[dict, ...] = ()
    #: ``None`` for clean/fully recovered runs; a report naming the dropped
    #: partitions when the run completed in degraded mode.
    degraded: DegradedRunReport | None = None

    @property
    def total_seconds(self) -> float:
        """Modeled end-to-end time (sum of phase critical paths)."""
        return sum(self.phase_seconds.values())

    def stats(self) -> dict[str, int | float]:
        """Assembly summary statistics."""
        return assembly_stats(self.contigs.lengths())


class DistributedAssembler:
    """Run the pipeline over ``n_nodes`` simulated workers."""

    def __init__(self, config: AssemblyConfig, n_nodes: int, *,
                 network: NetworkSpec | None = None,
                 disk: DiskSpec | None = None, host: HostSpec | None = None,
                 joins: tuple[int, ...] = ()):
        if n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        self.config = config
        self.n_nodes = n_nodes
        self.network = network if network is not None else NetworkSpec()
        self.disk = disk
        self.host = host
        #: Elastic-membership schedule: each entry is a reduce token-hop
        #: count after which one new node joins the cluster (requires
        #: ``allow_join``). The joiner takes a fair share of the remaining
        #: partitions and rebuilds them lazily from lineage.
        self.joins = tuple(sorted(joins))
        if self.joins and not config.allow_join:
            raise ConfigError(
                "a join schedule requires allow_join=true")
        if any(j < 0 for j in self.joins):
            raise ConfigError("join hop counts must be >= 0")

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _clock_totals(nodes: list[WorkerNode]) -> list[float]:
        return [node.ctx.clock.total_seconds for node in nodes]

    @staticmethod
    def _barrier(nodes: list[WorkerNode]) -> None:
        slowest = max(nodes, key=lambda n: n.ctx.clock.total_seconds)
        for node in nodes:
            node.ctx.clock.advance_to(slowest.ctx.clock)

    def _phase_delta(self, nodes: list[WorkerNode], before: list[float],
                     ) -> tuple[float, list[float]]:
        per_node = [node.ctx.clock.total_seconds - b
                    for node, b in zip(nodes, before)]
        return max(per_node), per_node

    @staticmethod
    def _cluster_span(tracer, name: str, wall0: float, sim0: float,
                      seconds: float, **args) -> None:
        """One span on the ``cluster`` track covering a phase's critical path.

        The simulated extent is the *modeled* one — from the common
        post-barrier start to start + the phase's critical-path seconds —
        so the cluster track tiles exactly like Fig. 10's stacked bars.
        """
        if tracer.enabled:
            tracer.complete(name, wall0, time.perf_counter(), track="cluster",
                            cat="cluster", det=True, sim0=sim0,
                            sim1=sim0 + seconds, **args)

    # -- the run -------------------------------------------------------------

    def assemble(self, source: str | Path | PackedReadStore, *,
                 workdir: str | Path | None = None) -> DistributedResult:
        """Assemble ``source`` across the simulated cluster."""
        owns_workdir = workdir is None
        root = Path(tempfile.mkdtemp(prefix="lasagna-dist-")) if owns_workdir \
            else Path(workdir)
        try:
            return self._assemble(source, root)
        finally:
            if owns_workdir:
                shutil.rmtree(root, ignore_errors=True)

    def _assemble(self, source, root: Path) -> DistributedResult:
        tracer = None
        if self.config.trace:
            tracer = SpanTracer(meta={"mode": "distributed",
                                      "n_nodes": self.n_nodes,
                                      "workers": self.config.resolved_workers(),
                                      "seed": self.config.seed})
        try:
            return self._run(source, root, tracer)
        finally:
            # Dump even when a phase raised — a trace of a failed run is
            # exactly what the chaos harness wants to look at.
            if tracer is not None:
                tracer.write(Path(self.config.trace))

    def _run(self, source, root: Path,
             tracer: SpanTracer | None) -> DistributedResult:
        messages = ActiveMessageLayer(self.network)
        ctracer = tracer if tracer is not None else NULL_TRACER
        store = source if isinstance(source, PackedReadStore) \
            else PackedReadStore.open(source)
        supervisor = ClusterSupervisor(self.config, self.n_nodes, root,
                                       self.network, messages, store,
                                       tracer=tracer, disk=self.disk,
                                       host=self.host)
        nodes = supervisor.nodes  # mutated in place on node restarts
        phase_seconds: dict[str, float] = {}
        per_node_seconds: dict[str, list[float]] = {}

        # -- map: master hands blocks to the least-loaded node ---------------
        before = self._clock_totals(nodes)
        wall0 = time.perf_counter()
        n_blocks = max(1, self.n_nodes * BLOCKS_PER_NODE)
        supervisor.map_phase(n_blocks)
        phase_seconds["map"], per_node_seconds["map"] = self._phase_delta(nodes, before)
        self._cluster_span(ctracer, "map", wall0, max(before),
                           phase_seconds["map"], blocks=n_blocks)
        self._barrier(nodes)

        # -- shuffle: all-to-all partition aggregation ------------------------
        before = self._clock_totals(nodes)
        wall0 = time.perf_counter()
        lengths = list(overlap_lengths(nodes[0].ctx, store.read_length))
        shuffle_bytes = supervisor.shuffle_phase(lengths)
        phase_seconds["shuffle"], per_node_seconds["shuffle"] = \
            self._phase_delta(nodes, before)
        self._cluster_span(ctracer, "shuffle", wall0, max(before),
                           phase_seconds["shuffle"], bytes=shuffle_bytes)
        self._barrier(nodes)

        # -- sort: local per-node external sorts --------------------------------
        before = self._clock_totals(nodes)
        wall0 = time.perf_counter()
        supervisor.sort_phase()
        phase_seconds["sort"], per_node_seconds["sort"] = self._phase_delta(nodes, before)
        self._cluster_span(ctracer, "sort", wall0, max(before),
                           phase_seconds["sort"])
        self._barrier(nodes)

        # -- reduce: parallel overlap finding, token-serialized edges ------------
        reduce_start = max(self._clock_totals(nodes))
        wall0 = time.perf_counter()
        reduce_result = self._reduce(supervisor, store, lengths,
                                     tracer=ctracer)
        graph, reduce_report, reduce_time, reduce_per_node, token_trace = \
            reduce_result
        phase_seconds["reduce"] = reduce_time
        per_node_seconds["reduce"] = reduce_per_node
        self._cluster_span(ctracer, "reduce", wall0, reduce_start, reduce_time,
                           partitions=reduce_report.partitions_processed)
        self._barrier(nodes)
        # Map pieces are the recovery lineage: only now, with every
        # partition reduced (or formally dropped), may they be released.
        for node in supervisor.alive():
            node.drop_map_partitions()

        # -- compress: on the master --------------------------------------------
        master = (supervisor.alive() or [nodes[0]])[0]
        before = self._clock_totals(nodes)
        wall0 = time.perf_counter()
        contigs, _paths = run_compress(master.ctx, graph, store)
        phase_seconds["compress"], per_node_seconds["compress"] = \
            self._phase_delta(nodes, before)
        self._cluster_span(ctracer, "compress", wall0, max(before),
                           phase_seconds["compress"])

        edges = graph.n_edges
        graph.release()
        degraded = supervisor.degraded_report(reduce_report.candidates)
        notes = {"am_messages": float(messages.messages_sent),
                 "am_dropped": float(messages.messages_dropped),
                 "am_delayed": float(messages.messages_delayed)}
        notes.update(supervisor.meter.counters())
        result = DistributedResult(
            n_nodes=self.n_nodes,
            n_reads=store.n_reads,
            read_length=store.read_length,
            contigs=contigs,
            phase_seconds=phase_seconds,
            per_node_seconds=per_node_seconds,
            shuffle_bytes=shuffle_bytes,
            reduce_report=reduce_report,
            edges=edges,
            notes=notes,
            token_trace=token_trace,
            degraded=degraded,
        )
        if not isinstance(source, PackedReadStore):
            store.close()
        return result

    def _reduce(self, supervisor: ClusterSupervisor, store: PackedReadStore,
                lengths: list[int], *, tracer=NULL_TRACER,
                ) -> tuple[GreedyStringGraph, ReduceReport, float, list[float],
                           tuple[dict, ...]]:
        """Token-serialized distributed reduce under the failure ladder.

        Overlap finding for partition ``l`` happens on its owner and is
        charged to that node's clock; the greedy edge insertion must hold
        the bit-vector token, whose timeline is tracked explicitly:
        ``token_time = max(token_time + transfer, find_done) + t_graph``.

        A node failing mid-partition does not lose the token: the master
        still holds it while the supervisor runs retry → restart → failover
        on the owner — duplicate candidate re-submissions from replays are
        rejected by the bit-vector, so the edge set is unchanged and
        recovered runs are byte-identical. Because ``find_done`` is taken
        from the surviving attempt's clock (which absorbed every wasted
        attempt, backoff and recovery charge) and ``token_hold ≥
        token_time``, the token timeline accrues transfer + recompute costs
        and never goes backward. Partitions that exhaust every owner are
        dropped into the degraded report by the supervisor (or raise when
        ``allow_degraded`` is off).
        """
        nodes = supervisor.nodes
        master = nodes[0]
        graph = GreedyStringGraph(store.n_reads, store.read_length,
                                  master.ctx.host_pool)
        report = ReduceReport()
        token_trace: list[dict] = []
        before = self._clock_totals(nodes)
        phase_start = max(before)
        token_time = phase_start
        bitvec_transfer = self.network.transfer_seconds(graph.out_bits.nbytes)
        ordered = sorted(lengths, reverse=True)
        pending_joins = list(self.joins)
        for idx, length in enumerate(ordered):
            supervisor.phase = "reduce"
            while pending_joins and \
                    report.partitions_processed >= pending_joins[0]:
                # A node joins after the scheduled token hop: it takes a
                # fair share of the not-yet-reduced tail and rebuilds each
                # partition lazily as the token approaches it.
                pending_joins.pop(0)
                joiner = supervisor.join_node()
                supervisor.rebalance_to(joiner, ordered[idx:])
            if not supervisor.partition_has_data(length):
                continue
            attempt_wall = time.perf_counter()

            def attempt(node: WorkerNode, length=length) -> tuple[float, float]:
                s_path = node.shuffled.path("S", length, sorted_run=True)
                p_path = node.shuffled.path("P", length, sorted_run=True)
                _, m_d = node.ctx.config.resolved_blocks(node.dtype.itemsize)
                window = max(1, m_d // REDUCE_WINDOW_DIVISOR)
                chunk_every = node.ctx.config.chunk_checkpoint_every
                host_before = node.ctx.clock.seconds("host")
                with RunReader(s_path, node.dtype,
                               node.ctx.accountant) as suffixes, \
                        RunReader(p_path, node.dtype,
                                  node.ctx.accountant) as prefixes:
                    # Resume from the last durable chunk (this node's ledger
                    # or the supervisor mirror): seek past the committed
                    # prefix instead of reprocessing it. New commits carry
                    # absolute offsets so a later resume composes.
                    resume = supervisor.chunk_resume(node, length)
                    base, s_off, p_off = (-1, 0, 0) if resume is None \
                        else resume
                    if resume is not None:
                        suffixes.skip(s_off)
                        prefixes.skip(p_off)
                    on_chunk = None
                    if chunk_every:
                        def on_chunk(i, s_done, p_done, node=node,
                                     length=length, base=base,
                                     s_off=s_off, p_off=p_off):
                            supervisor.commit_chunk(
                                node, length, base + 1 + i,
                                s_off + s_done, p_off + p_done)
                    reduce_partition(node.ctx, graph, suffixes, prefixes,
                                     length, window, report,
                                     chunk_records=chunk_every,
                                     on_chunk=on_chunk)
                t_graph = node.ctx.clock.seconds("host") - host_before
                find_done = node.ctx.clock.total_seconds - t_graph
                return t_graph, find_done

            outcome = supervisor.reduce_partition(length, attempt)
            for failure in outcome.failures:
                token_trace.append({"length": length, "node": failure["node"],
                                    "attempt": failure["attempt"],
                                    "ok": False,
                                    "wasted_s": failure["wasted_s"]})
                if tracer.enabled:
                    failed = nodes[failure["node"]]
                    tracer.instant("token-retry", track="cluster",
                                   cat="reduce", det=True,
                                   sim_at=failed.ctx.clock.total_seconds,
                                   length=length, node=failure["node"],
                                   attempt=failure["attempt"])
            if not outcome.ok:
                continue  # dropped partition: the token never visits it
            report.partitions_processed += 1
            # The node holds the token from the instant it both received
            # the bit-vector and finished overlap finding, until its
            # edge insertions are folded in (t_g).
            token_hold = max(token_time + bitvec_transfer, outcome.find_done)
            token_time = token_hold + outcome.t_graph
            token_trace.append({"length": length, "node": outcome.node,
                                "attempt": outcome.attempts - 1, "ok": True,
                                "sim0": token_hold, "sim1": token_time})
            if tracer.enabled:
                tracer.complete("token", attempt_wall, time.perf_counter(),
                                track="cluster", cat="reduce", det=True,
                                sim0=token_hold, sim1=token_time,
                                length=length, node=outcome.node,
                                attempt=outcome.attempts - 1)
        report.edges_added = graph.n_edges
        # The phase ends when the token has folded in every partition's
        # edges: ``token_time`` already waited on every find_done (and every
        # recovery charge) the graph consumed. A node still recovering past
        # that point — a speculation loser replaying in the background — is
        # off the critical path and re-enters at the next barrier.
        reduce_time = token_time - phase_start
        per_node = [node.ctx.clock.total_seconds - b
                    for node, b in zip(nodes, before)]
        return graph, report, reduce_time, per_node, tuple(token_trace)

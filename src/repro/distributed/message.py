"""The active-message layer (the GASNet analog).

Nodes register named handlers; a request invokes the handler *on the
destination node* and returns its response to the requester. Both request
and response payload bytes are charged to the requester's simulated clock
under the ``network`` category (the destination's disk/compute costs are
charged by the handler itself through the destination node's own meters,
exactly as a GASNet AM handler runs on the target).

Message counts and byte totals are tracked per (src, dst) pair so the
all-to-all shuffle volume of Fig. 10 can be reported.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import DistributedProtocolError, MessageDropped
from ..faults import plan as faults
from .network import NetworkSpec


def node_scope(node_id: int) -> str:
    """Fault-plan scope label of one node (shared by supervisor and layer)."""
    return f"node{node_id:02d}"

Handler = Callable[..., tuple[Any, int]]
"""A handler returns ``(response_object, response_payload_bytes)``."""


class ActiveMessageLayer:
    """Registry and dispatcher for inter-node requests."""

    def __init__(self, network: NetworkSpec):
        self.network = network
        self._handlers: dict[tuple[int, str], Handler] = {}
        self._clocks: dict[int, Any] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.bytes_by_pair: dict[tuple[int, int], int] = {}

    def register_node(self, node_id: int, clock) -> None:
        """Attach a node's simulated clock (charged for its requests)."""
        self._clocks[node_id] = clock

    def register_handler(self, node_id: int, name: str, handler: Handler) -> None:
        """Expose ``handler`` as AM target ``name`` on ``node_id``."""
        self._handlers[(node_id, name)] = handler

    def request(self, src: int, dst: int, name: str, *args,
                request_bytes: int = 64) -> Any:
        """Send an active message; returns the handler's response object.

        ``request_bytes`` sizes the request payload (default: a small
        header). Local requests (``src == dst``) skip the network charge.
        """
        key = (dst, name)
        if key not in self._handlers:
            raise DistributedProtocolError(f"node {dst} has no handler {name!r}")
        if src not in self._clocks:
            raise DistributedProtocolError(f"unregistered source node {src}")
        # Node-level chaos: the delivery itself may be dropped (the sender
        # pays for the attempted request, then sees MessageDropped), delayed
        # (extra in-flight latency on the sender's clock) or may kill the
        # destination node mid-request (FaultInjected unwinds to the sender).
        try:
            extra_delay = faults.deliver_message(
                node_scope(src), node_scope(dst), name)
        except MessageDropped:
            self.messages_dropped += 1
            if src != dst:
                self._clocks[src].charge(
                    "network", self.network.transfer_seconds(request_bytes))
            raise
        if extra_delay > 0.0:
            self.messages_delayed += 1
            self._clocks[src].charge("network", extra_delay)
        response, response_bytes = self._handlers[key](*args)
        self.messages_sent += 1
        if src != dst:
            total = request_bytes + response_bytes
            self._clocks[src].charge(
                "network", self.network.transfer_seconds(request_bytes)
                + self.network.transfer_seconds(response_bytes))
            pair = (src, dst)
            self.bytes_by_pair[pair] = self.bytes_by_pair.get(pair, 0) + total
        return response

    @property
    def total_bytes(self) -> int:
        """All payload bytes that crossed the network."""
        return sum(self.bytes_by_pair.values())

"""Deterministic simulated traffic for the assembly service.

The service's concurrency and cache behaviour is only testable under a
reproducible load: :class:`TrafficMix` describes a seeded mix of tenants
and input datasets, :func:`build_sources` materializes the distinct read
sets, and :func:`generate_jobs` draws the job sequence — the same seed
always produces byte-identical sources and the same submission order, so
the harness can assert exact execution orders, fairness shares and cache
hit counts.

The mix deliberately *repeats* sources across jobs: repeats submitted in
one run exercise single-flight dedup; repeats across runs exercise the
content-addressed cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..config import AssemblyConfig, MemoryConfig
from ..errors import ConfigError
from ..seq.simulate import ReadSimulator, simulate_genome
from .jobs import JobSpec


@dataclass(frozen=True)
class TrafficMix:
    """A seeded description of service load.

    ``n_sources`` distinct read sets are sampled from independent genomes;
    each of the ``n_jobs`` jobs picks a tenant and a source with the
    seeded generator, so with ``n_jobs > n_sources`` repeats are
    guaranteed — the repeated-jobs regime the cache benchmark measures.
    """

    n_jobs: int = 12
    n_sources: int = 3
    tenants: tuple[str, ...] = ("alice", "bob")
    genome_length: int = 600
    read_length: int = 40
    coverage: float = 6.0
    min_overlap: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_jobs < 1 or self.n_sources < 1:
            raise ConfigError("traffic needs >= 1 job and >= 1 source")
        if not self.tenants:
            raise ConfigError("traffic needs at least one tenant")


def default_job_config(mix: TrafficMix) -> AssemblyConfig:
    """A laptop-scale per-job config sized for the mix's tiny datasets.

    The small host/device demand lets a modest service budget admit a few
    jobs concurrently while still forcing admission waits under load.
    """
    return AssemblyConfig(
        min_overlap=mix.min_overlap,
        memory=MemoryConfig(32 << 20, 4 << 20, name="service-tiny"),
    )


def build_sources(root: str | Path, mix: TrafficMix) -> list[Path]:
    """Write the mix's distinct FASTQ read sets under ``root``.

    Idempotent for a fixed mix: source ``i`` is a pure function of
    ``(mix.seed, i)``, so re-running over an existing directory rewrites
    byte-identical files (and therefore preserves cache identities).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    sources = []
    for index in range(mix.n_sources):
        path = root / f"source_{index:02d}.fastq"
        genome = simulate_genome(mix.genome_length, seed=mix.seed * 1000 + index)
        ReadSimulator(genome, mix.read_length, mix.coverage,
                      seed=mix.seed * 1000 + index).to_fastq(path)
        sources.append(path)
    return sources


def generate_jobs(sources: list[Path], mix: TrafficMix,
                  config: AssemblyConfig | None = None, *,
                  deadline_s: float = 0.0) -> list[JobSpec]:
    """Draw the mix's job sequence over pre-built ``sources``.

    Tenant and source choices come from one seeded generator; job ids are
    ``job000, job001, …`` in submission order. ``deadline_s`` (simulated
    seconds, 0 = none) applies uniformly — chaos harnesses use it to put
    the whole mix on a clock without changing the drawn sequence.
    """
    if len(sources) < mix.n_sources:
        raise ConfigError(f"mix wants {mix.n_sources} sources, "
                          f"got {len(sources)}")
    config = config if config is not None else default_job_config(mix)
    rng = np.random.default_rng(mix.seed)
    jobs = []
    for index in range(mix.n_jobs):
        tenant = mix.tenants[int(rng.integers(0, len(mix.tenants)))]
        source = sources[int(rng.integers(0, mix.n_sources))]
        jobs.append(JobSpec(f"job{index:03d}", tenant, source, config,
                            deadline_s=deadline_s))
    return jobs

"""Multi-tenant assembly service: async scheduler over the pipeline.

One :class:`AssemblyService` admits many concurrent assembly jobs and
arbitrates the shared (virtual) GPU and host-memory budget between tenants:

* **Weighted fair queuing** — jobs queue per tenant; the scheduler always
  serves the tenant with the smallest ``served_units / weight`` ratio, so
  over any execution prefix a tenant's share of service tracks its
  configured weight (ties break on tenant name: fully deterministic).
* **Admission control** — a job's demand is its config's host/device
  budget; it is admitted only when a :class:`~repro.device.memory.MemoryPool`
  grant for *both* succeeds, so the sum of admitted demands can never
  exceed the service budget. Blocked admissions park the scheduler until a
  running batch releases its grant (strict fair order, no bypass — a large
  job cannot be starved by small ones slipping past it).
* **Batch coalescing** — consecutive small jobs of one tenant share a
  single admission grant and run as one batch, so a burst of tiny
  assemblies does not pay per-job admission latency.
* **Single-flight dedup** — jobs submitted together whose input content
  *and* semantic configuration are identical execute once; the followers
  join the leader's result (and the content cache serves later
  re-submissions across service runs).

On top of admission sits the **service failure ladder** (the serving-layer
mirror of the cluster's ladder in :mod:`repro.distributed.resilience`),
entirely deterministic on the simulated clock:

1. **Bounded retry** — a failed job re-enters admission (its budget demand
   is re-acquired fairly, never held across the backoff) up to
   ``job_max_attempts`` times; the backoff before attempt *k* comes from
   the same seeded-jitter :class:`repro.faults.RetryPolicy` schedule the
   distributed supervisor uses, keyed by job id and charged to the
   ``retry_backoff_sim_s`` counter.
2. **Deadlines and cancellation** — ``JobSpec.deadline_s`` bounds a job's
   *modeled* seconds and :meth:`AssemblyService.cancel` requests a
   cooperative stop; both are checked at pipeline phase boundaries and
   produce the distinct ``"timed_out"`` / ``"cancelled"`` outcomes (never
   ``"failed"``).
3. **Single-flight leader failover** — when a leader dies (quarantined,
   cancelled or timed out), the oldest follower is promoted and re-runs
   the cohort's work instead of every follower inheriting the failure.
4. **Quarantine** — a job that exhausts its attempts lands in the service's
   quarantine list with its full error chain; submissions with the same
   content identity fail fast (``quarantine_hits``) and never poison the
   queue again.
5. **Drain and load shedding** — :meth:`AssemblyService.drain` stops
   admission (queued jobs are shed, in-flight jobs finish), and a
   ``max_queued`` bound sheds the lowest-weight queued jobs with a typed
   ``admission_shed`` outcome under overload.

``max_parallel=1`` (the default) executes batches inline on the scheduler
thread — fully deterministic, the mode the traffic harness asserts
against. Higher values ship batches to worker threads; admission and fair
ordering still hold (the pools and meters are lock-protected), but
completion interleaving is OS-scheduled.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

from ..config import ServiceConfig
from ..core.checkpoint import file_digest
from ..core.pipeline import Assembler
from ..device.memory import MemoryPool
from ..errors import (AdmissionError, FaultInjected, JobCancelled,
                      JobDeadlineExceeded, ReproError)
from ..faults import plan as faults
from ..faults.retry import RetryPolicy
from ..telemetry import EventMeter, Telemetry
from .content_store import ContentStore, phase_key
from .jobs import JobOutcome, JobSpec, QuarantineEntry, ServiceReport, TenantReport

#: Leader outcomes that promote the oldest follower instead of spreading
#: to the cohort. ``"failed"`` (admission rejection) and ``"shed"`` are
#: excluded: identical content implies an identical demand or an equally
#: draining service, so a promoted re-run could only fail the same way.
_PROMOTE_ON = ("quarantined", "cancelled", "timed_out")


class JobQueue:
    """Per-tenant FIFO queues with weighted-fair tenant selection.

    ``pick()`` returns the tenant minimizing ``served_units / weight``
    among tenants with pending work (name-ordered tie-break); the caller
    reports what it served via ``charge()``. Weights come from
    :meth:`~repro.config.ServiceConfig.weight`.
    """

    def __init__(self, config: ServiceConfig):
        self._config = config
        self._queues: dict[str, deque[JobSpec]] = {}
        self.served: dict[str, float] = {}

    def push(self, spec: JobSpec) -> None:
        """Append a job to its tenant's queue."""
        self._queues.setdefault(spec.tenant, deque()).append(spec)
        self.served.setdefault(spec.tenant, 0.0)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def pick(self) -> str | None:
        """The tenant to serve next, or ``None`` when all queues are empty."""
        candidates = [t for t, queue in self._queues.items() if queue]
        if not candidates:
            return None
        return min(candidates, key=lambda t: (
            self.served[t] / self._config.weight(t), t))

    def take_batch(self, tenant: str) -> list[JobSpec]:
        """Pop the tenant's next batch: one job, or several coalesced.

        Consecutive *small* jobs (input no larger than ``batch_max_bytes``)
        at the head of the queue coalesce up to ``batch_max_jobs``; a large
        job always forms a batch of one.
        """
        queue = self._queues[tenant]
        batch = [queue.popleft()]
        limit = self._config.batch_max_bytes
        if limit and batch[0].size_bytes <= limit:
            while (queue and len(batch) < self._config.batch_max_jobs
                   and queue[0].size_bytes <= limit):
                batch.append(queue.popleft())
        return batch

    def shed_lowest(self) -> JobSpec | None:
        """Pop the shedding victim: the *newest* job of the lowest-weight
        tenant with queued work (weight then name tie-break — deterministic).

        Newest-first keeps the victim the job that has waited least, so
        shedding under overload behaves like a bounded queue refusing new
        arrivals rather than starving old ones.
        """
        candidates = [t for t, queue in self._queues.items() if queue]
        if not candidates:
            return None
        tenant = min(candidates,
                     key=lambda t: (self._config.weight(t), t))
        return self._queues[tenant].pop()

    def charge(self, tenant: str, units: float) -> None:
        """Account ``units`` of service against ``tenant``'s fair share."""
        self.served[tenant] = self.served.get(tenant, 0.0) + units


class AssemblyService:
    """The multi-tenant assembly service (see the module docstring).

    Construct once, then :meth:`run_jobs` a list of :class:`JobSpec`s.
    The content cache (when configured) and the quarantine list persist
    across runs of the same service instance — a warm second run serves
    phase artifacts from the cache and refuses known-poison content.
    """

    def __init__(self, config: ServiceConfig | None = None, *, tracer=None):
        self.config = config if config is not None else ServiceConfig()
        if tracer is None:
            from ..trace.tracer import NULL_TRACER as tracer
        self.tracer = tracer
        #: The shared budgets admission control allocates jobs' demands
        #: from; their lifetime peaks are the oversubscription audit trail.
        self.host_pool = MemoryPool("service_host",
                                    self.config.host_budget_bytes)
        self.device_pool = MemoryPool("service_device",
                                      self.config.device_budget_bytes)
        self.meter = EventMeter()
        self.store: ContentStore | None = None
        if self.config.cache_dir:
            self.store = ContentStore(self.config.cache_dir,
                                      self.config.cache_bytes, tracer=tracer)
        #: Aggregate telemetry over all jobs, phase rows namespaced by job
        #: id (see :meth:`repro.telemetry.Telemetry.absorb`).
        self.telemetry = Telemetry(tracer=tracer)
        for meter in (self.host_pool, self.device_pool, self.meter):
            self.telemetry.register(meter)
        if self.store is not None:
            self.telemetry.register(self.store.meter)
        #: Poison jobs that exhausted their attempts, oldest first; their
        #: content identities are barred from future admission.
        self.quarantine: list[QuarantineEntry] = []
        self._poisoned: dict[str, QuarantineEntry] = {}
        self._cancel_lock = threading.Lock()
        self._cancelled: set[str] = set()
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._release: asyncio.Event | None = None

    # -- public entry points ---------------------------------------------------

    def run_jobs(self, specs: list[JobSpec]) -> ServiceReport:
        """Schedule and run ``specs`` to completion; blocking wrapper."""
        return asyncio.run(self.run(specs))

    def cancel(self, job_id: str) -> None:
        """Request cooperative cancellation of ``job_id``.

        Queued jobs are dropped before execution; a running job observes
        the request at its next pipeline phase boundary. Either way the
        outcome is ``"cancelled"`` (metered and traced distinctly from
        ``"failed"``). Unknown or already-finished ids are a no-op — the
        request simply never matches.
        """
        with self._cancel_lock:
            self._cancelled.add(job_id)
        self.meter.bump("cancel_requests")

    def drain(self) -> None:
        """Stop admission: queued jobs are shed, in-flight jobs finish.

        Thread-safe and idempotent; callable before a run (everything
        submitted is shed) or during one (from another thread). Jobs whose
        admission grant was already acquired always run to completion —
        drain never sheds admitted work. The final :class:`ServiceReport`
        carries ``drained=True`` and the shed outcomes.
        """
        self._draining = True
        self.meter.bump("drain_requests")
        loop, release = self._loop, self._release
        if loop is not None and release is not None:
            try:
                # The scheduler may be parked on the release event with an
                # empty running set; wake it so the drain is observed.
                loop.call_soon_threadsafe(release.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    @property
    def draining(self) -> bool:
        """Whether admission has been stopped by :meth:`drain`."""
        return self._draining

    async def run(self, specs: list[JobSpec]) -> ServiceReport:
        """Schedule and run ``specs`` to completion on the current loop."""
        seen: set[str] = set()
        for spec in specs:
            if spec.job_id in seen:
                raise AdmissionError(f"duplicate job id {spec.job_id!r}")
            seen.add(spec.job_id)
        root = Path(self.config.workdir) if self.config.workdir \
            else Path(tempfile.mkdtemp(prefix="lasagna-service-"))
        root.mkdir(parents=True, exist_ok=True)
        quarantined_before = len(self.quarantine)
        start = time.perf_counter()
        try:
            outcomes = await self._run_async(specs, root)
        finally:
            if not self.config.workdir:
                shutil.rmtree(root, ignore_errors=True)
        wall = time.perf_counter() - start
        tenants: dict[str, TenantReport] = {}
        for outcome in outcomes.values():
            spec = outcome.spec
            report = tenants.setdefault(spec.tenant, TenantReport(
                spec.tenant, self.config.weight(spec.tenant)))
            report.jobs += 1
            for status, slot in (("failed", "failed"),
                                 ("quarantined", "quarantined"),
                                 ("cancelled", "cancelled"),
                                 ("timed_out", "timed_out"),
                                 ("shed", "shed")):
                if outcome.status == status:
                    setattr(report, slot, getattr(report, slot) + 1)
        for tenant, units in self._queue.served.items():
            if tenant in tenants:
                tenants[tenant].served_units = units
        return ServiceReport(
            outcomes=[outcomes[spec.job_id] for spec in specs],
            wall_seconds=wall,
            execution_order=list(self._execution_order),
            tenants=tenants,
            counters=self.meter.counters(),
            cache=self.store.stats() if self.store is not None else {},
            peak_host_bytes=self.host_pool.lifetime_peak_bytes,
            peak_device_bytes=self.device_pool.lifetime_peak_bytes,
            quarantine=tuple(self.quarantine[quarantined_before:]),
            drained=self._draining,
        )

    # -- scheduling core -------------------------------------------------------

    @staticmethod
    def _identity(spec: JobSpec) -> str | None:
        """Content identity of a job: what it assembles and how.

        Two jobs with equal identity produce byte-identical artifacts, so
        only one needs to run (single-flight). ``None`` (unreadable input)
        disables dedup for the job — it will fail on its own terms.
        """
        digest = file_digest(Path(spec.source))
        if digest is None:
            return None
        return phase_key("job", [f"reads:{digest}"], spec.config)

    def _is_cancelled(self, job_id: str) -> bool:
        with self._cancel_lock:
            return job_id in self._cancelled

    def _retry_policy(self, spec: JobSpec) -> RetryPolicy:
        """The job's deterministic backoff schedule (seeded by its config)."""
        return RetryPolicy(max_attempts=self.config.job_max_attempts,
                           base_backoff_s=self.config.job_retry_backoff_s,
                           seed=spec.config.seed)

    async def _run_async(self, specs: list[JobSpec],
                         root: Path) -> dict[str, JobOutcome]:
        self._queue = JobQueue(self.config)
        self._execution_order: list[str] = []
        self._release = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._inflight = 0
        self._attempts: dict[str, int] = {}
        self._error_chains: dict[str, list[str]] = {}
        self._followers: dict[str, list[JobSpec]] = {}
        self._identities: dict[str, str | None] = {}
        self._promoted: dict[str, str] = {}
        outcomes: dict[str, JobOutcome] = {}
        # Single-flight grouping at submit time: the first job of each
        # identity leads; the rest join its result without executing.
        leaders: dict[str, str] = {}
        for spec in specs:
            if self._is_cancelled(spec.job_id):
                outcomes[spec.job_id] = self._interrupted(
                    spec, None, "cancelled",
                    f"job {spec.job_id} cancelled before admission",
                    executed=False)
                continue
            identity = self._identity(spec)
            self._identities[spec.job_id] = identity
            entry = self._poisoned.get(identity) if identity else None
            if entry is not None:
                # Known-poison content: fail fast, never re-enter the queue.
                self.meter.bump("quarantine_hits")
                self.tracer.instant("quarantine-hit", track="service",
                                    job=spec.job_id, poison=entry.job_id)
                outcomes[spec.job_id] = JobOutcome(
                    spec, "failed", executed=False,
                    error=f"content quarantined (poison job {entry.job_id} "
                          f"exhausted {entry.attempts} attempts: "
                          f"{entry.error_chain[-1]})")
                continue
            if identity is not None and identity in leaders:
                self._followers.setdefault(leaders[identity], []).append(spec)
                self.meter.bump("singleflight_joined")
                continue
            if identity is not None:
                leaders[identity] = spec.job_id
            self._push_bounded(spec, outcomes)
        semaphore = asyncio.Semaphore(self.config.max_parallel)
        tasks: list[asyncio.Task] = []
        while True:
            if self._draining and len(self._queue):
                self._shed_queue(outcomes, counter="drain_shed",
                                 reason="service draining")
            if not len(self._queue):
                if self._inflight == 0:
                    break
                # No await between clear() and wait(): batch settlement
                # (which sets the event) runs on this same loop thread.
                self._release.clear()
                await self._release.wait()
                continue
            tenant = self._queue.pick()
            batch = self._queue.take_batch(tenant)
            admitted = []
            for spec in batch:
                if self._is_cancelled(spec.job_id):
                    self._finish_terminal(spec, self._interrupted(
                        spec, None, "cancelled",
                        f"job {spec.job_id} cancelled while queued",
                        executed=False), outcomes)
                elif (spec.config.memory.host_bytes
                        > self.host_pool.capacity_bytes
                        or spec.config.memory.device_bytes
                        > self.device_pool.capacity_bytes):
                    # No release can ever satisfy this demand: fail the job
                    # fast instead of deadlocking the admission queue.
                    self.meter.bump("admission_rejected")
                    self._finish_terminal(spec, JobOutcome(
                        spec, "failed", executed=False,
                        error="job memory demand exceeds the service budget"),
                        outcomes)
                else:
                    admitted.append(spec)
            batch = admitted
            if not batch:
                continue
            demand_host = max(s.config.memory.host_bytes for s in batch)
            demand_device = max(s.config.memory.device_bytes for s in batch)
            if len(batch) > 1:
                self.meter.bump("batches_coalesced")
                self.meter.bump("jobs_batched", float(len(batch)))
            await semaphore.acquire()
            grants = await self._admit(demand_host, demand_device)
            if grants is None:
                # The service started draining while this batch was parked
                # at admission: it never held a grant, so it is shed.
                semaphore.release()
                for spec in batch:
                    self._shed_one(spec, outcomes, counter="drain_shed",
                                   reason="service draining")
                continue
            self._queue.charge(tenant, float(len(batch)))
            for spec in batch:
                self._execution_order.append(spec.job_id)
            if self.config.max_parallel == 1:
                # Inline on the scheduler thread: strict weighted-fair
                # execution order, which the determinism tests pin down.
                try:
                    results = self._execute_batch(batch, root)
                finally:
                    self._finish_batch(grants, semaphore)
                self._settle_batch(batch, results, outcomes)
            else:
                self._inflight += 1
                tasks.append(asyncio.create_task(
                    self._run_batch_task(batch, root, outcomes, grants,
                                         semaphore)))
        if tasks:
            await asyncio.gather(*tasks)
        self._resolve_followers(outcomes)
        return outcomes

    def _push_bounded(self, spec: JobSpec,
                      outcomes: dict[str, JobOutcome]) -> None:
        """Queue a submission, shedding past the ``max_queued`` bound."""
        self._queue.push(spec)
        bound = self.config.max_queued
        while bound and len(self._queue) > bound:
            victim = self._queue.shed_lowest()
            self._shed_one(
                victim, outcomes, counter="admission_shed",
                reason=f"queue depth exceeded max_queued={bound}")

    def _shed_queue(self, outcomes: dict[str, JobOutcome], *,
                    counter: str, reason: str) -> None:
        while len(self._queue):
            self._shed_one(self._queue.shed_lowest(), outcomes,
                           counter=counter, reason=reason)

    def _shed_one(self, spec: JobSpec, outcomes: dict[str, JobOutcome], *,
                  counter: str, reason: str) -> None:
        self.meter.bump(counter)
        self.tracer.instant("shed", track="service", job=spec.job_id,
                            tenant=spec.tenant, reason=counter)
        self._finish_terminal(spec, JobOutcome(
            spec, "shed", executed=False,
            error=f"{counter}: {reason}",
            attempts=self._attempts.get(spec.job_id, 0)), outcomes)

    async def _admit(self, demand_host: int,
                     demand_device: int) -> list | None:
        """Wait until both budget grants succeed; returns the grants.

        Pool ``try_alloc`` is the whole mechanism: a grant that would
        oversubscribe simply fails, and the scheduler parks until a
        running batch signals a release. Returns ``None`` when the
        service starts draining before the grant lands (the batch was
        never admitted and must be shed, not run).
        """
        while True:
            if self._draining:
                return None
            host_grant = self.host_pool.try_alloc(demand_host, label="admission")
            if host_grant is not None:
                device_grant = self.device_pool.try_alloc(demand_device,
                                                          label="admission")
                if device_grant is not None:
                    return [host_grant, device_grant]
                host_grant.free()
            self.meter.bump("admission_blocked")
            self._release.clear()
            await self._release.wait()

    def _finish_batch(self, grants: list, semaphore: asyncio.Semaphore) -> None:
        for grant in grants:
            grant.free()
        semaphore.release()
        self._release.set()

    async def _run_batch_task(self, batch, root, outcomes, grants,
                              semaphore) -> None:
        try:
            results = await asyncio.to_thread(self._execute_batch, batch, root)
            # Settlement (telemetry absorption, retry re-queueing, follower
            # promotion) is not thread-safe: it runs on the loop thread,
            # after the worker thread is done with the batch.
            self._settle_batch(batch, results, outcomes)
        finally:
            self._inflight -= 1
            self._finish_batch(grants, semaphore)

    # -- execution -------------------------------------------------------------

    def _execute_batch(self, batch: list[JobSpec],
                       root: Path) -> list[JobOutcome]:
        """Run a batch; returns raw outcomes (settlement happens elsewhere)."""
        return [self._execute_job(spec, root) for spec in batch]

    def _settle_batch(self, batch: list[JobSpec], results: list[JobOutcome],
                      outcomes: dict[str, JobOutcome]) -> None:
        """Apply the failure ladder to each raw outcome.

        Retryable failures re-enter admission; exhausted jobs are
        quarantined; everything terminal is recorded, absorbed into the
        service telemetry and may promote a single-flight follower.
        """
        for spec, outcome in zip(batch, results):
            if outcome.status == "failed" and outcome.executed:
                chain = self._error_chains.setdefault(spec.job_id, [])
                chain.append(outcome.error)
                attempts = self._attempts.get(spec.job_id, 1)
                if attempts < self.config.job_max_attempts \
                        and not self._draining:
                    self._requeue_retry(spec, attempts, outcome)
                    continue
                if attempts >= self.config.job_max_attempts:
                    outcome = self._quarantine(spec, outcome, chain)
            self._finish_terminal(spec, outcome, outcomes)

    def _requeue_retry(self, spec: JobSpec, attempts: int,
                       outcome: JobOutcome) -> None:
        """Send a failed job back through admission with a modeled backoff."""
        backoff = self._retry_policy(spec).backoff_s(attempts,
                                                     key=spec.job_id)
        self.meter.bump("job_retries")
        self.meter.bump("retry_backoff_sim_s", backoff)
        self.tracer.instant("job-retry", track="service", job=spec.job_id,
                            attempt=attempts + 1, backoff_s=backoff,
                            error=outcome.error)
        self._queue.push(spec)
        self._release.set()

    def _quarantine(self, spec: JobSpec, outcome: JobOutcome,
                    chain: list[str]) -> JobOutcome:
        """Exhausted attempts: record the poison job and bar its identity."""
        entry = QuarantineEntry(
            job_id=spec.job_id, tenant=spec.tenant,
            identity=self._identities.get(spec.job_id),
            attempts=self._attempts.get(spec.job_id, 1),
            error_chain=tuple(chain))
        self.quarantine.append(entry)
        if entry.identity is not None:
            self._poisoned[entry.identity] = entry
        self.meter.bump("jobs_quarantined")
        self.tracer.instant("quarantined", track="service", job=spec.job_id,
                            attempts=entry.attempts, error=outcome.error)
        return JobOutcome(
            spec, "quarantined", error=outcome.error,
            error_chain=entry.error_chain, attempts=entry.attempts,
            wall_seconds=outcome.wall_seconds, workdir=outcome.workdir,
            promoted_from=self._promoted.get(spec.job_id))

    def _finish_terminal(self, spec: JobSpec, outcome: JobOutcome,
                         outcomes: dict[str, JobOutcome]) -> None:
        if outcome.promoted_from is None and spec.job_id in self._promoted:
            outcome.promoted_from = self._promoted[spec.job_id]
        outcomes[spec.job_id] = outcome
        self._absorb(outcome)
        self._maybe_promote(spec, outcome, outcomes)

    def _maybe_promote(self, spec: JobSpec, outcome: JobOutcome,
                       outcomes: dict[str, JobOutcome]) -> None:
        """Single-flight failover: a dead leader's oldest follower re-runs."""
        followers = self._followers.get(spec.job_id)
        if not followers or outcome.status not in _PROMOTE_ON:
            return
        del self._followers[spec.job_id]
        promoted: JobSpec | None = None
        while followers:
            candidate = followers.pop(0)
            if self._is_cancelled(candidate.job_id):
                outcomes[candidate.job_id] = self._interrupted(
                    candidate, None, "cancelled",
                    f"job {candidate.job_id} cancelled while following "
                    f"{spec.job_id}", executed=False)
                continue
            promoted = candidate
            break
        if promoted is None:
            return
        if followers:
            self._followers[promoted.job_id] = followers
        self._promoted[promoted.job_id] = spec.job_id
        self.meter.bump("leader_promoted")
        self.tracer.instant("leader-promoted", track="service",
                            job=promoted.job_id, leader=spec.job_id,
                            leader_status=outcome.status)
        self._queue.push(promoted)
        self._release.set()

    def _phase_guard(self, spec: JobSpec):
        """The per-job cooperative stop check, run at phase boundaries.

        Cancellation wins over the deadline when both hold at one boundary
        (an explicit operator request beats a policy timeout). Both checks
        compare deterministic state — the cancel set and the job's own
        modeled clock — so the same seed stops at the same boundary.
        """
        def hook(boundary: str, sim_seconds: float) -> None:
            if self._is_cancelled(spec.job_id):
                raise JobCancelled(
                    f"job {spec.job_id} cancelled at the {boundary} "
                    f"phase boundary")
            if spec.deadline_s and sim_seconds > spec.deadline_s:
                raise JobDeadlineExceeded(
                    f"job {spec.job_id} exceeded deadline_s="
                    f"{spec.deadline_s:g} at the {boundary} phase boundary "
                    f"(modeled {sim_seconds:.6f}s)")
        return hook

    def _execute_job(self, spec: JobSpec, root: Path) -> JobOutcome:
        if self._is_cancelled(spec.job_id):
            return self._interrupted(
                spec, None, "cancelled",
                f"job {spec.job_id} cancelled before execution",
                executed=False)
        attempt = self._attempts.get(spec.job_id, 0) + 1
        self._attempts[spec.job_id] = attempt
        workdir = root / "jobs" / spec.job_id
        workdir.mkdir(parents=True, exist_ok=True)
        assembler = Assembler(spec.config, content_store=self.store,
                              phase_hook=self._phase_guard(spec))
        self.meter.bump("pipeline_runs")
        self.tracer.instant("job-start", track="service",
                            job=spec.job_id, tenant=spec.tenant,
                            attempt=attempt)
        start = time.perf_counter()
        try:
            # resume=True re-enters the checkpoint ledger, so a retried
            # attempt resumes the previous attempt's completed phases —
            # the byte-identity contract the chaos sweep asserts.
            result = assembler.assemble(spec.source, workdir=workdir,
                                        resume=True)
        except JobCancelled as exc:
            return self._interrupted(spec, workdir, "cancelled", str(exc),
                                     start=start, attempts=attempt)
        except JobDeadlineExceeded as exc:
            return self._interrupted(spec, workdir, "timed_out", str(exc),
                                     start=start, attempts=attempt)
        except FaultInjected as exc:
            # An injected crash killed the job, not the service: clear the
            # armed crash like the chaos harness's process restart would.
            faults.clear_crash()
            return self._failed(spec, workdir, exc, start, attempt)
        except (ReproError, OSError) as exc:
            return self._failed(spec, workdir, exc, start, attempt)
        wall = time.perf_counter() - start
        self.tracer.instant("job-done", track="service",
                            job=spec.job_id, wall_s=wall)
        return JobOutcome(spec, "done", result=result, wall_seconds=wall,
                          sim_seconds=result.telemetry.total_sim_seconds(),
                          workdir=workdir, attempts=attempt,
                          error_chain=tuple(
                              self._error_chains.get(spec.job_id, ())))

    def _interrupted(self, spec: JobSpec, workdir: Path | None, status: str,
                     error: str, *, executed: bool = True,
                     start: float | None = None,
                     attempts: int | None = None) -> JobOutcome:
        """A service-interrupted outcome: ``cancelled`` or ``timed_out``."""
        meter_key, instant = {
            "cancelled": ("jobs_cancelled", "job-cancelled"),
            "timed_out": ("jobs_timed_out", "job-timed-out"),
        }[status]
        self.meter.bump(meter_key)
        self.tracer.instant(instant, track="service", job=spec.job_id,
                            error=error)
        return JobOutcome(
            spec, status, error=error, workdir=workdir, executed=executed,
            attempts=attempts if attempts is not None
            else self._attempts.get(spec.job_id, 0),
            wall_seconds=time.perf_counter() - start if start else 0.0)

    def _failed(self, spec: JobSpec, workdir: Path, exc: BaseException,
                start: float, attempt: int) -> JobOutcome:
        self.meter.bump("job_attempts_failed")
        error = f"{type(exc).__name__}: {exc}"
        self.tracer.instant("job-failed", track="service",
                            job=spec.job_id, error=error, attempt=attempt)
        return JobOutcome(spec, "failed", error=error, workdir=workdir,
                          attempts=attempt,
                          wall_seconds=time.perf_counter() - start)

    def _absorb(self, outcome: JobOutcome) -> None:
        if outcome.result is None:
            return
        for stats in outcome.result.telemetry:
            self.telemetry.absorb(stats, namespace=outcome.spec.job_id)

    def _resolve_followers(self, outcomes: dict[str, JobOutcome]) -> None:
        """Resolve single-flight followers whose leader reached a verdict.

        A successful leader shares its result. A leader that failed
        without triggering promotion (admission rejection, shed) gives
        each follower *its own* outcome naming the leader — followers
        never inherit the leader's error string wholesale.
        """
        for leader_id, specs in self._followers.items():
            leader = outcomes[leader_id]
            for spec in specs:
                if self._is_cancelled(spec.job_id):
                    outcomes[spec.job_id] = self._interrupted(
                        spec, None, "cancelled",
                        f"job {spec.job_id} cancelled while following "
                        f"{leader_id}", executed=False)
                elif leader.ok:
                    outcomes[spec.job_id] = JobOutcome(
                        spec, "done", result=leader.result, executed=False,
                        joined=leader_id, sim_seconds=leader.sim_seconds)
                else:
                    outcomes[spec.job_id] = JobOutcome(
                        spec, leader.status, executed=False, joined=leader_id,
                        error=f"single-flight leader {leader_id} "
                              f"{leader.status}: {leader.error}")
        self._followers = {}

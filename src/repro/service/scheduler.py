"""Multi-tenant assembly service: async scheduler over the pipeline.

One :class:`AssemblyService` admits many concurrent assembly jobs and
arbitrates the shared (virtual) GPU and host-memory budget between tenants:

* **Weighted fair queuing** — jobs queue per tenant; the scheduler always
  serves the tenant with the smallest ``served_units / weight`` ratio, so
  over any execution prefix a tenant's share of service tracks its
  configured weight (ties break on tenant name: fully deterministic).
* **Admission control** — a job's demand is its config's host/device
  budget; it is admitted only when a :class:`~repro.device.memory.MemoryPool`
  grant for *both* succeeds, so the sum of admitted demands can never
  exceed the service budget. Blocked admissions park the scheduler until a
  running batch releases its grant (strict fair order, no bypass — a large
  job cannot be starved by small ones slipping past it).
* **Batch coalescing** — consecutive small jobs of one tenant share a
  single admission grant and run as one batch, so a burst of tiny
  assemblies does not pay per-job admission latency.
* **Single-flight dedup** — jobs submitted together whose input content
  *and* semantic configuration are identical execute once; the followers
  join the leader's result (and the content cache serves later
  re-submissions across service runs).

``max_parallel=1`` (the default) executes batches inline on the scheduler
thread — fully deterministic, the mode the traffic harness asserts
against. Higher values ship batches to worker threads; admission and fair
ordering still hold (the pools and meters are lock-protected), but
completion interleaving is OS-scheduled.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from collections import deque
from pathlib import Path

from ..config import ServiceConfig
from ..core.checkpoint import file_digest
from ..core.pipeline import Assembler
from ..device.memory import MemoryPool
from ..errors import FaultInjected, ReproError
from ..faults import plan as faults
from ..telemetry import EventMeter, Telemetry
from .content_store import ContentStore, phase_key
from .jobs import JobOutcome, JobSpec, ServiceReport, TenantReport


class JobQueue:
    """Per-tenant FIFO queues with weighted-fair tenant selection.

    ``pick()`` returns the tenant minimizing ``served_units / weight``
    among tenants with pending work (name-ordered tie-break); the caller
    reports what it served via ``charge()``. Weights come from
    :meth:`~repro.config.ServiceConfig.weight`.
    """

    def __init__(self, config: ServiceConfig):
        self._config = config
        self._queues: dict[str, deque[JobSpec]] = {}
        self.served: dict[str, float] = {}

    def push(self, spec: JobSpec) -> None:
        """Append a job to its tenant's queue."""
        self._queues.setdefault(spec.tenant, deque()).append(spec)
        self.served.setdefault(spec.tenant, 0.0)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def pick(self) -> str | None:
        """The tenant to serve next, or ``None`` when all queues are empty."""
        candidates = [t for t, queue in self._queues.items() if queue]
        if not candidates:
            return None
        return min(candidates, key=lambda t: (
            self.served[t] / self._config.weight(t), t))

    def take_batch(self, tenant: str) -> list[JobSpec]:
        """Pop the tenant's next batch: one job, or several coalesced.

        Consecutive *small* jobs (input no larger than ``batch_max_bytes``)
        at the head of the queue coalesce up to ``batch_max_jobs``; a large
        job always forms a batch of one.
        """
        queue = self._queues[tenant]
        batch = [queue.popleft()]
        limit = self._config.batch_max_bytes
        if limit and batch[0].size_bytes <= limit:
            while (queue and len(batch) < self._config.batch_max_jobs
                   and queue[0].size_bytes <= limit):
                batch.append(queue.popleft())
        return batch

    def charge(self, tenant: str, units: float) -> None:
        """Account ``units`` of service against ``tenant``'s fair share."""
        self.served[tenant] = self.served.get(tenant, 0.0) + units


class AssemblyService:
    """The multi-tenant assembly service (see the module docstring).

    Construct once, then :meth:`run_jobs` a list of :class:`JobSpec`s.
    The content cache (when configured) persists across runs of the same
    service instance — a warm second run serves phase artifacts from it.
    """

    def __init__(self, config: ServiceConfig | None = None, *, tracer=None):
        self.config = config if config is not None else ServiceConfig()
        if tracer is None:
            from ..trace.tracer import NULL_TRACER as tracer
        self.tracer = tracer
        #: The shared budgets admission control allocates jobs' demands
        #: from; their lifetime peaks are the oversubscription audit trail.
        self.host_pool = MemoryPool("service_host",
                                    self.config.host_budget_bytes)
        self.device_pool = MemoryPool("service_device",
                                      self.config.device_budget_bytes)
        self.meter = EventMeter()
        self.store: ContentStore | None = None
        if self.config.cache_dir:
            self.store = ContentStore(self.config.cache_dir,
                                      self.config.cache_bytes, tracer=tracer)
        #: Aggregate telemetry over all jobs, phase rows namespaced by job
        #: id (see :meth:`repro.telemetry.Telemetry.absorb`).
        self.telemetry = Telemetry(tracer=tracer)
        for meter in (self.host_pool, self.device_pool, self.meter):
            self.telemetry.register(meter)
        if self.store is not None:
            self.telemetry.register(self.store.meter)

    # -- public entry points ---------------------------------------------------

    def run_jobs(self, specs: list[JobSpec]) -> ServiceReport:
        """Schedule and run ``specs`` to completion; blocking wrapper."""
        return asyncio.run(self.run(specs))

    async def run(self, specs: list[JobSpec]) -> ServiceReport:
        """Schedule and run ``specs`` to completion on the current loop."""
        seen: set[str] = set()
        for spec in specs:
            if spec.job_id in seen:
                raise ReproError(f"duplicate job id {spec.job_id!r}")
            seen.add(spec.job_id)
        root = Path(self.config.workdir) if self.config.workdir \
            else Path(tempfile.mkdtemp(prefix="lasagna-service-"))
        root.mkdir(parents=True, exist_ok=True)
        start = time.perf_counter()
        try:
            outcomes = await self._run_async(specs, root)
        finally:
            if not self.config.workdir:
                shutil.rmtree(root, ignore_errors=True)
        wall = time.perf_counter() - start
        tenants: dict[str, TenantReport] = {}
        for outcome in outcomes.values():
            spec = outcome.spec
            report = tenants.setdefault(spec.tenant, TenantReport(
                spec.tenant, self.config.weight(spec.tenant)))
            report.jobs += 1
            if not outcome.ok:
                report.failed += 1
        for tenant, units in self._queue.served.items():
            if tenant in tenants:
                tenants[tenant].served_units = units
        return ServiceReport(
            outcomes=[outcomes[spec.job_id] for spec in specs],
            wall_seconds=wall,
            execution_order=list(self._execution_order),
            tenants=tenants,
            counters=self.meter.counters(),
            cache=self.store.stats() if self.store is not None else {},
            peak_host_bytes=self.host_pool.lifetime_peak_bytes,
            peak_device_bytes=self.device_pool.lifetime_peak_bytes,
        )

    # -- scheduling core -------------------------------------------------------

    @staticmethod
    def _identity(spec: JobSpec) -> str | None:
        """Content identity of a job: what it assembles and how.

        Two jobs with equal identity produce byte-identical artifacts, so
        only one needs to run (single-flight). ``None`` (unreadable input)
        disables dedup for the job — it will fail on its own terms.
        """
        digest = file_digest(Path(spec.source))
        if digest is None:
            return None
        return phase_key("job", [f"reads:{digest}"], spec.config)

    async def _run_async(self, specs: list[JobSpec],
                         root: Path) -> dict[str, JobOutcome]:
        self._queue = JobQueue(self.config)
        self._execution_order: list[str] = []
        self._release = asyncio.Event()
        outcomes: dict[str, JobOutcome] = {}
        # Single-flight grouping at submit time: the first job of each
        # identity leads; the rest join its result without executing.
        followers: dict[str, list[JobSpec]] = {}
        leaders: dict[str, str] = {}
        for spec in specs:
            identity = self._identity(spec)
            if identity is not None and identity in leaders:
                followers.setdefault(leaders[identity], []).append(spec)
                self.meter.bump("singleflight_joined")
                continue
            if identity is not None:
                leaders[identity] = spec.job_id
            self._queue.push(spec)
        semaphore = asyncio.Semaphore(self.config.max_parallel)
        tasks: list[asyncio.Task] = []
        while len(self._queue):
            tenant = self._queue.pick()
            batch = self._queue.take_batch(tenant)
            admitted = []
            for spec in batch:
                if (spec.config.memory.host_bytes
                        > self.host_pool.capacity_bytes
                        or spec.config.memory.device_bytes
                        > self.device_pool.capacity_bytes):
                    # No release can ever satisfy this demand: fail the job
                    # fast instead of deadlocking the admission queue.
                    self.meter.bump("admission_rejected")
                    outcomes[spec.job_id] = JobOutcome(
                        spec, "failed", executed=False,
                        error="job memory demand exceeds the service budget")
                else:
                    admitted.append(spec)
            batch = admitted
            if not batch:
                continue
            demand_host = max(s.config.memory.host_bytes for s in batch)
            demand_device = max(s.config.memory.device_bytes for s in batch)
            if len(batch) > 1:
                self.meter.bump("batches_coalesced")
                self.meter.bump("jobs_batched", float(len(batch)))
            await semaphore.acquire()
            grants = await self._admit(demand_host, demand_device)
            self._queue.charge(tenant, float(len(batch)))
            for spec in batch:
                self._execution_order.append(spec.job_id)
            if self.config.max_parallel == 1:
                # Inline on the scheduler thread: strict weighted-fair
                # execution order, which the determinism tests pin down.
                try:
                    self._execute_batch(batch, root, outcomes)
                finally:
                    self._finish_batch(grants, semaphore)
            else:
                tasks.append(asyncio.create_task(
                    self._run_batch_task(batch, root, outcomes, grants,
                                         semaphore)))
        if tasks:
            await asyncio.gather(*tasks)
        self._resolve_followers(followers, outcomes)
        return outcomes

    async def _admit(self, demand_host: int,
                     demand_device: int) -> list:
        """Wait until both budget grants succeed; returns the grants.

        Pool ``try_alloc`` is the whole mechanism: a grant that would
        oversubscribe simply fails, and the scheduler parks until a
        running batch signals a release.
        """
        while True:
            host_grant = self.host_pool.try_alloc(demand_host, label="admission")
            if host_grant is not None:
                device_grant = self.device_pool.try_alloc(demand_device,
                                                          label="admission")
                if device_grant is not None:
                    return [host_grant, device_grant]
                host_grant.free()
            self.meter.bump("admission_blocked")
            self._release.clear()
            await self._release.wait()

    def _finish_batch(self, grants: list, semaphore: asyncio.Semaphore) -> None:
        for grant in grants:
            grant.free()
        semaphore.release()
        self._release.set()

    async def _run_batch_task(self, batch, root, outcomes, grants,
                              semaphore) -> None:
        try:
            await asyncio.to_thread(self._execute_batch, batch, root, outcomes,
                                    absorb=False)
            # Telemetry is not thread-safe: fold the jobs' stats in from
            # the loop thread, after the worker thread is done with them.
            for spec in batch:
                self._absorb(outcomes[spec.job_id])
        finally:
            self._finish_batch(grants, semaphore)

    # -- execution -------------------------------------------------------------

    def _execute_batch(self, batch: list[JobSpec], root: Path,
                       outcomes: dict[str, JobOutcome], *,
                       absorb: bool = True) -> None:
        for spec in batch:
            outcome = self._execute_job(spec, root)
            outcomes[spec.job_id] = outcome
            if absorb:
                self._absorb(outcome)

    def _execute_job(self, spec: JobSpec, root: Path) -> JobOutcome:
        workdir = root / "jobs" / spec.job_id
        workdir.mkdir(parents=True, exist_ok=True)
        assembler = Assembler(spec.config, content_store=self.store)
        self.meter.bump("pipeline_runs")
        self.tracer.instant("job-start", track="service",
                            job=spec.job_id, tenant=spec.tenant)
        start = time.perf_counter()
        try:
            result = assembler.assemble(spec.source, workdir=workdir,
                                        resume=True)
        except FaultInjected as exc:
            # An injected crash killed the job, not the service: clear the
            # armed crash like the chaos harness's process restart would.
            faults.clear_crash()
            return self._failed(spec, workdir, exc, start)
        except (ReproError, OSError) as exc:
            return self._failed(spec, workdir, exc, start)
        wall = time.perf_counter() - start
        self.tracer.instant("job-done", track="service",
                            job=spec.job_id, wall_s=wall)
        return JobOutcome(spec, "done", result=result, wall_seconds=wall,
                          sim_seconds=result.telemetry.total_sim_seconds(),
                          workdir=workdir)

    def _failed(self, spec: JobSpec, workdir: Path, exc: BaseException,
                start: float) -> JobOutcome:
        self.meter.bump("jobs_failed")
        error = f"{type(exc).__name__}: {exc}"
        self.tracer.instant("job-failed", track="service",
                            job=spec.job_id, error=error)
        return JobOutcome(spec, "failed", error=error, workdir=workdir,
                          wall_seconds=time.perf_counter() - start)

    def _absorb(self, outcome: JobOutcome) -> None:
        if outcome.result is None:
            return
        for stats in outcome.result.telemetry:
            self.telemetry.absorb(stats, namespace=outcome.spec.job_id)

    def _resolve_followers(self, followers: dict[str, list[JobSpec]],
                           outcomes: dict[str, JobOutcome]) -> None:
        """Give each single-flight follower its leader's outcome."""
        for leader_id, specs in followers.items():
            leader = outcomes[leader_id]
            for spec in specs:
                outcomes[spec.job_id] = JobOutcome(
                    spec, leader.status, result=leader.result,
                    error=leader.error, executed=False, joined=leader_id,
                    sim_seconds=leader.sim_seconds)

"""Multi-tenant assembly service: scheduler + content-addressed cache.

Public surface:

* :class:`~repro.service.scheduler.AssemblyService` /
  :class:`~repro.service.scheduler.JobQueue` — the async job scheduler
  (weighted fair queuing, admission control, batching, single-flight).
* :class:`~repro.service.content_store.ContentStore` /
  :func:`~repro.service.content_store.phase_key` — the content-addressed
  phase-artifact cache shared across jobs and tenants.
* :class:`~repro.service.jobs.JobSpec` and friends — the job/report value
  types.
* :class:`~repro.service.traffic.TrafficMix` — deterministic simulated
  load for tests and benchmarks.
"""

from .content_store import CacheEntry, ContentStore, phase_key
from .jobs import (STATUSES, JobOutcome, JobSpec, QuarantineEntry,
                   ServiceReport, TenantReport)
from .scheduler import AssemblyService, JobQueue
from .traffic import TrafficMix, build_sources, default_job_config, generate_jobs

__all__ = [
    "AssemblyService",
    "CacheEntry",
    "ContentStore",
    "JobOutcome",
    "JobQueue",
    "JobSpec",
    "QuarantineEntry",
    "STATUSES",
    "ServiceReport",
    "TenantReport",
    "TrafficMix",
    "build_sources",
    "default_job_config",
    "generate_jobs",
    "phase_key",
]

"""Content-addressed cache of assembly phase artifacts.

The checkpoint ledger (PR 2) already proves each phase's output is a pure
function of its input files and the semantic configuration — that is what
lets a resumed run trust an on-disk artifact whose digest matches. This
module lifts that property out of the single-workdir ledger into a cache
shared across jobs, tenants and re-submissions: an entry is keyed on
``(phase, input digests, semantic config payload)``, so two different
users assembling byte-identical reads under equivalent configurations hit
the same entry no matter which path their files live at.

Design points:

* **Keys** come from :func:`phase_key`, which hashes the same
  :func:`~repro.core.checkpoint.semantic_payload` the resume fingerprint
  uses — execution-only knobs (``workers``, ``executor_backend``,
  ``trace``, the resilience policy) can never split the cache.
* **Entries** are directories ``<root>/<key>/files/<relpath>`` plus a
  ``entry.json`` manifest recording each file's expected digest. The
  manifest is the commit point: a ``put`` that dies mid-copy leaves no
  manifest and the partial entry is garbage-collected, never served.
* **Verification**: every ``fetch`` re-digests the stored files against
  the manifest. A torn-write or bitflip-damaged entry (the cache's own
  writes run through the :mod:`repro.faults` hooks, so chaos plans can
  damage them) is evicted and reported as a miss — the caller recomputes.
* **Eviction** is LRU by bytes against a hard capacity; hits refresh
  recency, evictions and damage show up in the telemetry meter.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..config import AssemblyConfig
from ..core.checkpoint import file_digest, semantic_payload
from ..errors import ConfigError
from ..faults import plan as faults
from ..telemetry import EventMeter
from ..trace.tracer import NULL_TRACER

#: Per-entry manifest file name (the entry's commit point).
MANIFEST_FILE = "entry.json"
#: Subdirectory of an entry holding the cached artifact files.
FILES_DIR = "files"


def phase_key(phase: str, inputs: Sequence[str], config: AssemblyConfig) -> str:
    """Cache key of one phase execution: what it is, what it ate, how.

    ``inputs`` are the content digests of the phase's input artifacts (in a
    canonical order chosen by the caller). The config contributes only its
    :func:`~repro.core.checkpoint.semantic_payload`, so any knob that
    cannot change artifact bytes leaves the key unchanged.
    """
    payload = {
        "phase": phase,
        "inputs": list(inputs),
        "config": semantic_payload(config),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()[:24]


@dataclass(frozen=True)
class CacheEntry:
    """One committed cache entry (in-memory index record)."""

    key: str
    phase: str
    nbytes: int
    #: ``{relative path: expected digest}`` of every cached file.
    files: Mapping[str, str]
    #: Phase report metadata (JSON-able), round-tripped verbatim.
    meta: Mapping[str, object]
    #: Monotonic insertion stamp (restores LRU order across restarts).
    seq: int


class ContentStore:
    """Content-addressed artifact cache with LRU-by-bytes eviction.

    Thread-safe: service jobs running in worker threads fetch and put
    concurrently under one lock (entries are small at service scale; the
    copy under lock also pins an entry against concurrent eviction).
    """

    def __init__(self, root: str | Path, capacity_bytes: int, *,
                 tracer=None):
        if capacity_bytes <= 0:
            raise ConfigError("cache capacity must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity_bytes = int(capacity_bytes)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.meter = EventMeter()
        self._lock = threading.Lock()
        self._entries: dict[str, CacheEntry] = {}  # insertion order = LRU
        self._seq = 0
        self._adopt_existing()

    # -- persistence -----------------------------------------------------------

    def _entry_dir(self, key: str) -> Path:
        return self.root / key

    def _adopt_existing(self) -> None:
        """Re-index entries a previous service process committed here.

        Uncommitted residue (an entry directory without a manifest — a put
        that died mid-copy) is removed. LRU order is restored from the
        persisted sequence stamps.
        """
        found = []
        for child in sorted(self.root.iterdir() if self.root.exists() else ()):
            if not child.is_dir():
                continue
            manifest = child / MANIFEST_FILE
            try:
                data = json.loads(manifest.read_text())
                entry = CacheEntry(key=child.name, phase=data["phase"],
                                   nbytes=int(data["nbytes"]),
                                   files=dict(data["files"]),
                                   meta=dict(data.get("meta", {})),
                                   seq=int(data.get("seq", 0)))
            except (OSError, ValueError, KeyError, TypeError):
                shutil.rmtree(child, ignore_errors=True)
                continue
            found.append(entry)
        for entry in sorted(found, key=lambda e: e.seq):
            self._entries[entry.key] = entry
            self._seq = max(self._seq, entry.seq + 1)
        self._enforce_capacity()

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def total_bytes(self) -> int:
        """Bytes held across all committed entries."""
        return sum(entry.nbytes for entry in self._entries.values())

    def keys(self) -> tuple[str, ...]:
        """Entry keys in LRU order (least recently used first)."""
        return tuple(self._entries)

    def stats(self) -> dict[str, float]:
        """Hit/miss/eviction counters plus current occupancy."""
        out = dict(self.meter.counters())
        out["entries"] = float(len(self._entries))
        out["bytes"] = float(self.total_bytes)
        hits = out.get("cache_hits", 0.0)
        misses = out.get("cache_misses", 0.0)
        out["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
        return out

    # -- lookup ----------------------------------------------------------------

    def fetch(self, key: str, workdir: str | Path, *, phase: str = "",
              tracer=None) -> dict | None:
        """Restore ``key``'s files into ``workdir``; returns the entry meta.

        Misses (absent key) and *damage* (a stored file whose digest no
        longer matches the manifest — torn write, bitflip, truncation)
        both return ``None``; damaged entries are evicted so the caller's
        recompute can repopulate them. The restore writes run through the
        fault hooks like every other substrate write.
        """
        tracer = tracer if tracer is not None else self.tracer
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                src_root = self._entry_dir(key) / FILES_DIR
                damaged = [rel for rel, digest in sorted(entry.files.items())
                           if file_digest(src_root / rel) != digest]
                if damaged:
                    # Digest re-verification caught a damaged entry: drop it
                    # and fall back to recompute (never serve corrupt bytes).
                    self._drop(entry)
                    self.meter.bump("cache_damaged")
                    entry = None
                    tracer.instant("cache-damaged", track="cache",
                                   key=key, phase=phase,
                                   files=damaged)
            if entry is None:
                self.meter.bump("cache_misses")
                tracer.instant("cache-miss", track="cache",
                               key=key, phase=phase)
                return None
            src_root = self._entry_dir(key) / FILES_DIR
            for rel in sorted(entry.files):
                destination = Path(workdir) / rel
                destination.parent.mkdir(parents=True, exist_ok=True)
                payload = (src_root / rel).read_bytes()
                with open(destination, "wb") as handle:
                    faults.deliver_write(destination, payload, handle)
            # LRU refresh: re-insert at the most-recent end.
            self._entries.pop(key)
            self._entries[key] = entry
            self.meter.bump("cache_hits")
            if entry.phase:
                self.meter.bump(f"cache_hits_{entry.phase}")
            tracer.instant("cache-hit", track="cache",
                           key=key, phase=entry.phase,
                           bytes=entry.nbytes)
            return dict(entry.meta)

    # -- insertion -------------------------------------------------------------

    def put(self, key: str, phase: str, workdir: str | Path,
            files: Iterable[Path], meta: Mapping[str, object] | None = None,
            *, tracer=None) -> bool:
        """Copy ``files`` (paths under ``workdir``) into a new entry.

        Best-effort: returns ``False`` (and leaves no entry behind) when
        the artifacts cannot be committed — a source file is missing, the
        payload exceeds the whole cache capacity, or the copy hits a
        survivable I/O error (e.g. injected ENOSPC). Injected crashes
        propagate like any substrate write. Digests recorded in the
        manifest are taken from the *source* files, so damage introduced
        while writing the cache copy is caught at fetch time.
        """
        tracer = tracer if tracer is not None else self.tracer
        workdir = Path(workdir)
        with self._lock:
            if key in self._entries:
                return True
            digests: dict[str, str] = {}
            nbytes = 0
            for path in files:
                path = Path(path)
                digest = file_digest(path)
                if digest is None:
                    return False
                digests[str(path.relative_to(workdir))] = digest
                nbytes += path.stat().st_size
            if not digests or nbytes > self.capacity_bytes:
                self.meter.bump("cache_uncacheable")
                return False
            entry_dir = self._entry_dir(key)
            try:
                for rel in sorted(digests):
                    destination = entry_dir / FILES_DIR / rel
                    destination.parent.mkdir(parents=True, exist_ok=True)
                    payload = (workdir / rel).read_bytes()
                    with open(destination, "wb") as handle:
                        faults.deliver_write(destination, payload, handle)
                entry = CacheEntry(key=key, phase=phase, nbytes=nbytes,
                                   files=digests, meta=dict(meta or {}),
                                   seq=self._seq)
                # The manifest write commits the entry; until it lands the
                # directory is invisible residue.
                faults.ledger_write(entry_dir / MANIFEST_FILE, json.dumps({
                    "phase": phase, "nbytes": nbytes, "files": digests,
                    "meta": dict(meta or {}), "seq": self._seq,
                }))
            except OSError:
                shutil.rmtree(entry_dir, ignore_errors=True)
                self.meter.bump("cache_put_failed")
                return False
            self._seq += 1
            self._entries[key] = entry
            self.meter.bump("cache_puts")
            self._enforce_capacity()
            self.meter.gauge("cache_bytes", float(self.total_bytes))
            tracer.instant("cache-put", track="cache",
                           key=key, phase=phase, bytes=nbytes)
            return True

    # -- eviction --------------------------------------------------------------

    def _drop(self, entry: CacheEntry) -> None:
        self._entries.pop(entry.key, None)
        shutil.rmtree(self._entry_dir(entry.key), ignore_errors=True)

    def _enforce_capacity(self) -> None:
        """Evict least-recently-used entries until under capacity."""
        while self.total_bytes > self.capacity_bytes and self._entries:
            victim = next(iter(self._entries.values()))
            self._drop(victim)
            self.meter.bump("cache_evictions")
            self.meter.bump("cache_evicted_bytes", float(victim.nbytes))
            self.tracer.instant("cache-evict", track="cache",
                                key=victim.key,
                                bytes=victim.nbytes)

"""Job and report value types for the multi-tenant assembly service."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..config import AssemblyConfig
from ..core.results import AssemblyResult
from ..errors import ConfigError
from ..units import format_duration, format_size

#: Every status a job outcome can carry. ``done`` is the only success;
#: the rest are *distinct* failure classes — ``failed`` means the job's
#: own execution or admission failed, ``quarantined`` that it exhausted
#: its attempt budget, and ``cancelled``/``timed_out``/``shed`` that the
#: service interrupted or refused it (never counted as ``failed``).
STATUSES = ("done", "failed", "quarantined", "cancelled", "timed_out", "shed")


@dataclass(frozen=True)
class JobSpec:
    """One assembly request submitted to the service.

    ``size_bytes`` (the input file's size) is the admission and batching
    proxy for job weight; ``config.memory`` is the job's host/device
    demand against the service budget. ``deadline_s`` bounds the job's
    *simulated* seconds: the pipeline checks its own modeled clock at
    phase boundaries and times out deterministically (0 = no deadline).
    """

    job_id: str
    tenant: str
    source: str | Path
    config: AssemblyConfig
    deadline_s: float = 0.0

    def __post_init__(self) -> None:
        if self.deadline_s < 0:
            raise ConfigError("deadline_s must be >= 0 (0 = no deadline)")

    @property
    def size_bytes(self) -> int:
        """Input size in bytes (0 when the file is missing)."""
        try:
            return Path(self.source).stat().st_size
        except OSError:
            return 0


@dataclass
class JobOutcome:
    """What one job produced (or why it did not)."""

    spec: JobSpec
    status: str  #: One of :data:`STATUSES`.
    result: AssemblyResult | None = None
    error: str | None = None
    #: Wall seconds from execution start to finish (0 for joined jobs).
    wall_seconds: float = 0.0
    #: Modeled hardware seconds accrued by the job's pipeline.
    sim_seconds: float = 0.0
    #: Whether this job ran its own pipeline (False = joined an identical
    #: in-flight job's result via single-flight dedup, or never started).
    executed: bool = True
    #: Job id of the single-flight leader this job joined, if any.
    joined: str | None = None
    #: The job's private working directory (holds the checkpoint ledger).
    workdir: Path | None = None
    #: Executions this job was granted (retries count; joined jobs get 0).
    attempts: int = 0
    #: One error string per failed attempt, oldest first — the quarantine
    #: audit trail. The final entry equals ``error`` for terminal failures.
    error_chain: tuple[str, ...] = ()
    #: Job id of the failed single-flight leader this job was promoted
    #: over (it re-ran the cohort's work instead of inheriting failure).
    promoted_from: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the job completed with a result."""
        return self.status == "done" and self.result is not None

    def contig_bytes(self) -> bytes:
        """Canonical byte string of the job's contigs (for identity checks)."""
        if self.result is None:
            return b""
        return (self.result.contigs.flat_codes.tobytes()
                + self.result.contigs.offsets.tobytes())


@dataclass(frozen=True)
class QuarantineEntry:
    """One poison job: it exhausted its attempts and is barred from the queue.

    The service keeps these across :meth:`~repro.service.AssemblyService.run`
    calls; a later submission with the same content identity fails fast
    (``quarantine_hits``) instead of burning attempts on known-poison work.
    """

    job_id: str
    tenant: str
    #: Content identity (``None`` = unreadable input, identity unknown).
    identity: str | None
    attempts: int
    error_chain: tuple[str, ...]


@dataclass
class TenantReport:
    """Per-tenant service accounting (one counter per outcome class)."""

    tenant: str
    weight: float
    jobs: int = 0
    failed: int = 0
    quarantined: int = 0
    cancelled: int = 0
    timed_out: int = 0
    shed: int = 0
    served_units: float = 0.0


@dataclass
class ServiceReport:
    """Everything one service run produced, for benchmarks and audits."""

    outcomes: list[JobOutcome]
    wall_seconds: float
    #: Job ids in the order their execution *started* (the fairness audit
    #: trail: weighted-fair scheduling bounds every prefix of this list).
    execution_order: list[str]
    tenants: dict[str, TenantReport]
    #: Service meter counters (admissions, batches, single-flight joins…).
    counters: Mapping[str, float]
    #: Content-store counters (hits/misses/evictions/bytes), {} if disabled.
    cache: Mapping[str, float] = field(default_factory=dict)
    #: Peak admitted bytes against each service budget.
    peak_host_bytes: int = 0
    peak_device_bytes: int = 0
    #: Poison jobs quarantined during this run (error chains included).
    quarantine: tuple[QuarantineEntry, ...] = ()
    #: Whether the service was draining when the run finished.
    drained: bool = False

    def _count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def n_done(self) -> int:
        """Jobs that completed with a result."""
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def n_failed(self) -> int:
        """Jobs whose own execution or admission failed.

        Excludes ``cancelled``/``timed_out``/``shed`` (the service
        interrupted or refused those) and counts ``quarantined`` jobs —
        quarantine *is* terminal failure, just with an attempt audit trail.
        """
        return self._count("failed") + self.n_quarantined

    @property
    def n_quarantined(self) -> int:
        """Jobs that exhausted their attempt budget this run."""
        return self._count("quarantined")

    @property
    def n_cancelled(self) -> int:
        """Jobs cancelled before or during execution."""
        return self._count("cancelled")

    @property
    def n_timed_out(self) -> int:
        """Jobs that exceeded their simulated-clock deadline."""
        return self._count("timed_out")

    @property
    def n_shed(self) -> int:
        """Jobs refused by load shedding or a drain."""
        return self._count("shed")

    @property
    def jobs_per_second(self) -> float:
        """Completed jobs per wall second of service time."""
        return self.n_done / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over this run (0.0 with caching off)."""
        hits = self.cache.get("cache_hits", 0.0)
        misses = self.cache.get("cache_misses", 0.0)
        return hits / (hits + misses) if hits + misses else 0.0

    def summary(self) -> str:
        """Multi-line human-readable service report."""
        classes = [f"{self.n_done} done", f"{self.n_failed} failed"]
        for label, count in (("quarantined", self.n_quarantined),
                             ("cancelled", self.n_cancelled),
                             ("timed out", self.n_timed_out),
                             ("shed", self.n_shed)):
            if count:
                classes.append(f"{count} {label}")
        lines = [
            f"jobs: {', '.join(classes)} "
            f"in {format_duration(self.wall_seconds)} "
            f"({self.jobs_per_second:.2f} jobs/s)"
            + (" [drained]" if self.drained else ""),
        ]
        if self.cache:
            lines.append(
                f"cache: {self.cache.get('cache_hits', 0):.0f} hits / "
                f"{self.cache.get('cache_misses', 0):.0f} misses "
                f"(rate {self.hit_rate:.0%}), "
                f"{self.cache.get('cache_evictions', 0):.0f} evictions, "
                f"{format_size(self.cache.get('bytes', 0))} held")
        joins = self.counters.get("singleflight_joined", 0)
        batches = self.counters.get("batches_coalesced", 0)
        if joins or batches:
            lines.append(f"dedup: {joins:.0f} jobs joined in flight; "
                         f"{batches:.0f} coalesced batches")
        retries = self.counters.get("job_retries", 0)
        promotions = self.counters.get("leader_promoted", 0)
        if retries or promotions:
            lines.append(f"resilience: {retries:.0f} retries "
                         f"({self.counters.get('retry_backoff_sim_s', 0.0):.3f}"
                         f" sim-s backoff); {promotions:.0f} leaders promoted")
        lines.append(f"admitted peaks: host {format_size(self.peak_host_bytes)}"
                     f", device {format_size(self.peak_device_bytes)}")
        for entry in self.quarantine:
            lines.append(f"quarantined {entry.job_id} ({entry.tenant}) after "
                         f"{entry.attempts} attempts: {entry.error_chain[-1]}")
        for report in self.tenants.values():
            parts = [f"{report.jobs} jobs", f"{report.failed} failed"]
            for label in ("quarantined", "cancelled", "timed_out", "shed"):
                count = getattr(report, label)
                if count:
                    parts.append(f"{count} {label.replace('_', ' ')}")
            lines.append(
                f"tenant {report.tenant} (w={report.weight:g}): "
                f"{', '.join(parts)}, served {report.served_units:g} units")
        return "\n".join(lines)

"""Job and report value types for the multi-tenant assembly service."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..config import AssemblyConfig
from ..core.results import AssemblyResult
from ..units import format_duration, format_size


@dataclass(frozen=True)
class JobSpec:
    """One assembly request submitted to the service.

    ``size_bytes`` (the input file's size) is the admission and batching
    proxy for job weight; ``config.memory`` is the job's host/device
    demand against the service budget.
    """

    job_id: str
    tenant: str
    source: str | Path
    config: AssemblyConfig

    @property
    def size_bytes(self) -> int:
        """Input size in bytes (0 when the file is missing)."""
        try:
            return Path(self.source).stat().st_size
        except OSError:
            return 0


@dataclass
class JobOutcome:
    """What one job produced (or why it did not)."""

    spec: JobSpec
    status: str  #: ``"done"`` | ``"failed"``
    result: AssemblyResult | None = None
    error: str | None = None
    #: Wall seconds from execution start to finish (0 for joined jobs).
    wall_seconds: float = 0.0
    #: Modeled hardware seconds accrued by the job's pipeline.
    sim_seconds: float = 0.0
    #: Whether this job ran its own pipeline (False = joined an identical
    #: in-flight job's result via single-flight dedup).
    executed: bool = True
    #: Job id of the single-flight leader this job joined, if any.
    joined: str | None = None
    #: The job's private working directory (holds the checkpoint ledger).
    workdir: Path | None = None

    @property
    def ok(self) -> bool:
        """Whether the job completed with a result."""
        return self.status == "done" and self.result is not None

    def contig_bytes(self) -> bytes:
        """Canonical byte string of the job's contigs (for identity checks)."""
        if self.result is None:
            return b""
        return (self.result.contigs.flat_codes.tobytes()
                + self.result.contigs.offsets.tobytes())


@dataclass
class TenantReport:
    """Per-tenant service accounting."""

    tenant: str
    weight: float
    jobs: int = 0
    failed: int = 0
    served_units: float = 0.0


@dataclass
class ServiceReport:
    """Everything one service run produced, for benchmarks and audits."""

    outcomes: list[JobOutcome]
    wall_seconds: float
    #: Job ids in the order their execution *started* (the fairness audit
    #: trail: weighted-fair scheduling bounds every prefix of this list).
    execution_order: list[str]
    tenants: dict[str, TenantReport]
    #: Service meter counters (admissions, batches, single-flight joins…).
    counters: Mapping[str, float]
    #: Content-store counters (hits/misses/evictions/bytes), {} if disabled.
    cache: Mapping[str, float] = field(default_factory=dict)
    #: Peak admitted bytes against each service budget.
    peak_host_bytes: int = 0
    peak_device_bytes: int = 0

    @property
    def n_done(self) -> int:
        """Jobs that completed with a result."""
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def n_failed(self) -> int:
        """Jobs that failed."""
        return len(self.outcomes) - self.n_done

    @property
    def jobs_per_second(self) -> float:
        """Completed jobs per wall second of service time."""
        return self.n_done / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over this run (0.0 with caching off)."""
        hits = self.cache.get("cache_hits", 0.0)
        misses = self.cache.get("cache_misses", 0.0)
        return hits / (hits + misses) if hits + misses else 0.0

    def summary(self) -> str:
        """Multi-line human-readable service report."""
        lines = [
            f"jobs: {self.n_done} done, {self.n_failed} failed "
            f"in {format_duration(self.wall_seconds)} "
            f"({self.jobs_per_second:.2f} jobs/s)",
        ]
        if self.cache:
            lines.append(
                f"cache: {self.cache.get('cache_hits', 0):.0f} hits / "
                f"{self.cache.get('cache_misses', 0):.0f} misses "
                f"(rate {self.hit_rate:.0%}), "
                f"{self.cache.get('cache_evictions', 0):.0f} evictions, "
                f"{format_size(self.cache.get('bytes', 0))} held")
        joins = self.counters.get("singleflight_joined", 0)
        batches = self.counters.get("batches_coalesced", 0)
        if joins or batches:
            lines.append(f"dedup: {joins:.0f} jobs joined in flight; "
                         f"{batches:.0f} coalesced batches")
        lines.append(f"admitted peaks: host {format_size(self.peak_host_bytes)}"
                     f", device {format_size(self.peak_device_bytes)}")
        for report in self.tenants.values():
            lines.append(
                f"tenant {report.tenant} (w={report.weight:g}): "
                f"{report.jobs} jobs, {report.failed} failed, "
                f"served {report.served_units:g} units")
        return "\n".join(lines)

"""Exception hierarchy for the LaSAGNA reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class DeviceError(ReproError):
    """The virtual GPU's transfer/ownership contract was violated.

    Raised for use-after-consume: an array surrendered to a zero-copy
    ``to_device(consume=True)`` transfer is poisoned (read-only) and must
    not be re-consumed or written through ``to_host(out=)`` — both would
    alias memory the device now owns. The message names the owning
    transfer so the offending call site is attributable.
    """


class DeviceMemoryError(DeviceError, MemoryError):
    """A device-memory allocation exceeded the virtual GPU's capacity.

    Mirrors a CUDA out-of-memory failure: the virtual device enforces its
    configured capacity exactly, so pipeline code must chunk its working set
    the same way the paper's CUDA implementation does.
    """


class HostMemoryError(ReproError, MemoryError):
    """A host-memory allocation exceeded the configured host budget."""


class StreamProtocolError(ReproError):
    """A read-only/write-only stream was used against its access contract.

    The semi-streaming model (paper Fig. 3) requires that run files are read
    and written strictly sequentially and never both at once; violations are
    programming errors and surface as this exception.
    """


class SortContractError(ReproError):
    """Input to a merge/reduce stage violated its sortedness precondition."""


class GraphInvariantError(ReproError):
    """A string-graph invariant (degree bounds, complement symmetry) broke."""


class DatasetError(ReproError):
    """A dataset descriptor or on-disk dataset artefact is invalid."""


class DistributedProtocolError(ReproError):
    """A node violated the distributed pipeline's message protocol."""


class MessageDropped(DistributedProtocolError):
    """An active message was lost in flight (injected ``msg-drop``).

    The requester's handler never ran; the sender may retry — the supervisor
    treats this as a transient failure, unlike handler-side protocol errors.
    """


class RetryExhausted(ReproError):
    """A bounded :class:`repro.faults.RetryPolicy` ran out of attempts.

    Carries no recovery semantics itself; the distributed supervisor
    escalates it to node restart, partition failover or degraded mode.
    """


class ServiceError(ReproError):
    """Base class for assembly-service (``repro.service``) failures.

    Distinguishes service-layer conditions — admission decisions, job
    lifecycle control — from pipeline errors: a caller of
    :meth:`~repro.service.AssemblyService.run` can treat a
    :class:`ServiceError` as "the service refused or interrupted the job"
    rather than "the assembly itself broke".
    """


class AdmissionError(ServiceError):
    """A job submission was invalid (e.g. duplicate job ids in one batch).

    Raised before any job executes; the submitter fixes the batch and
    retries. Distinct from per-job ``admission_rejected``/``admission_shed``
    outcomes, which fail individual jobs without aborting the batch.
    """


class JobCancelled(ServiceError):
    """A job observed its cancellation request at a phase boundary.

    Cooperative: :meth:`~repro.service.AssemblyService.cancel` only sets a
    flag, and the job's pipeline raises this at its next phase boundary.
    Maps to the ``"cancelled"`` job outcome — never to ``"failed"``.
    """


class JobDeadlineExceeded(ServiceError):
    """A job's simulated-clock budget (``JobSpec.deadline_s``) ran out.

    Checked at phase boundaries against the job's own modeled seconds, so
    the same seed and config time out at exactly the same boundary. Maps
    to the ``"timed_out"`` job outcome — never to ``"failed"``.
    """


class TraceError(ReproError):
    """A span trace is malformed (unbalanced events, bad Perfetto JSON)."""


class FaultInjected(ReproError):
    """A scheduled chaos fault fired (simulated crash, torn write, …).

    Raised only while a :class:`repro.faults.FaultPlan` is active; it models
    the process dying at an exact byte boundary, so production code must
    never catch it except where a real deployment would survive the
    corresponding failure (e.g. the distributed reduce retrying a dead
    node's partition).
    """


class RecoveryError(ReproError):
    """Crash recovery failed to converge to the golden run.

    Raised by the :class:`repro.faults.CrashLoop` driver when a resumed run
    diverges from the unfaulted golden result or leaves scratch/ledger
    residue behind — the exact failure the checkpointed multi-pass design
    exists to prevent.
    """

"""The multiprocessing worker pool and its modeled-hardware protocol.

Worker processes run *tasks*: module-level functions named by an
``"module:function"`` path (import-path dispatch keeps the protocol
spawn-safe and guarantees the worker runs the same kernel code as the
serial path — there is no second implementation to drift). Task payloads
and results are small picklable dicts; bulk data travels through named
shared-memory segments (:mod:`repro.parallel.shm`), so nothing big is
ever pickled.

Modeled hardware across the process boundary
--------------------------------------------

The virtual GPU (capacity pool + simulated clock) lives in the parent —
its counters, peaks and simulated seconds must be byte-identical to the
serial schedule. A worker cannot charge it directly, and the charges of a
sort task cannot be recomputed from sizes alone (the k-way merge window
schedule is data-dependent). So workers run their compute against a
*recording* device — :class:`RecordingClock` and :class:`RecordingPool`
log every ``charge``/``alloc``/``free`` event in execution order while
still enforcing the real capacity — and return the log with the result.
The parent replays the log against the real clock and pools at delivery
time, in submission order: the identical float charges are summed in the
serial order, and the identical allocation interleaving reproduces the
serial peaks and counts exactly.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from typing import Any, Callable, Iterable, Iterator

from ..device.clock import SimClock
from ..device.memory import Allocation, MemoryPool
from ..errors import ConfigError, ReproError

#: Seconds granted to worker processes to exit cleanly at shutdown.
SHUTDOWN_TIMEOUT_S = 5.0

#: Per-process cache of resolved task functions (populated in workers).
_TASK_CACHE: dict[str, Callable[[dict], dict]] = {}


def resolve_task(path: str) -> Callable[[dict], dict]:
    """Resolve an ``"module:function"`` task path (cached per process)."""
    fn = _TASK_CACHE.get(path)
    if fn is None:
        import importlib

        module_name, _, attr = path.partition(":")
        if not module_name or not attr:
            raise ConfigError(f"task path must be 'module:function', got {path!r}")
        fn = getattr(importlib.import_module(module_name), attr)
        _TASK_CACHE[path] = fn
    return fn


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: ``(seq, path, payload)`` in, ``(seq, ok, …)`` out."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        seq, path, payload = item
        begin = time.perf_counter()
        try:
            result = resolve_task(path)(payload)
            busy = time.perf_counter() - begin
            result_queue.put((seq, True, result, busy, worker_id))
        except BaseException as exc:  # noqa: BLE001 — relayed to the parent
            busy = time.perf_counter() - begin
            detail = traceback.format_exc()
            try:
                result_queue.put((seq, False, (exc, detail), busy, worker_id))
            except Exception:  # exception not picklable: ship a summary
                fallback = ReproError(f"{type(exc).__name__}: {exc}")
                result_queue.put((seq, False, (fallback, detail), busy,
                                  worker_id))


class ProcessBackend:
    """A pool of task-running worker processes with ordered delivery.

    Workers are started eagerly at construction — the caller creates the
    backend before any helper threads exist, so ``fork`` (preferred where
    available: it inherits warm imports) never snapshots a multithreaded
    parent.
    """

    name = "processes"

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigError("process backend needs workers >= 1")
        self.workers = workers
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        # Start the shared-memory resource tracker *before* forking: forked
        # workers then inherit its pipe and every register/unregister lands
        # in one tracker, instead of each worker lazily spawning its own
        # (whose ledger the parent's unlinks could never reach).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._tasks = self._context.SimpleQueue()
        self._results = self._context.SimpleQueue()
        self._procs = [
            self._context.Process(target=_worker_main,
                                  args=(i, self._tasks, self._results),
                                  name=f"repro-proc-worker-{i}", daemon=True)
            for i in range(workers)]
        for proc in self._procs:
            proc.start()
        self._closed = False

    def map_tasks(self, task_path: str, payloads: Iterable[dict], *,
                  window: int) -> Iterator[tuple[dict, float, int]]:
        """Run payloads through the pool, yielding in submission order.

        Yields ``(result, busy_seconds, worker_id)`` per payload. A worker
        exception re-raises here (with the worker traceback attached as an
        exception note) when its result's turn comes, exactly like the
        thread pool's ordered map.
        """
        if self._closed:
            raise ConfigError("process backend used after shutdown")
        if window < 1:
            raise ConfigError("map_tasks window must be >= 1")
        ready: dict[int, tuple] = {}
        submitted = 0
        received = 0

        def deliver(seq: int) -> tuple[dict, float, int]:
            nonlocal received
            while seq not in ready:
                entry = self._results.get()
                received += 1
                ready[entry[0]] = entry
            _, ok, result, busy, worker_id = ready.pop(seq)
            if not ok:
                exc, detail = result
                if hasattr(exc, "add_note"):
                    exc.add_note(f"[worker process traceback]\n{detail}")
                raise exc
            return result, busy, worker_id

        try:
            delivered = 0
            for payload in payloads:
                self._tasks.put((submitted, task_path, payload))
                submitted += 1
                if submitted - delivered >= window:
                    yield deliver(delivered)
                    delivered += 1
            while delivered < submitted:
                yield deliver(delivered)
                delivered += 1
        finally:
            # On early exit, drain outstanding results so stale sequence
            # numbers can never bleed into a later map_tasks call, and
            # unlink any shared segments the abandoned results reference.
            for _ in range(submitted - received):
                ready[-1] = self._results.get()
                self._discard(ready.pop(-1))
            for entry in ready.values():
                self._discard(entry)
            ready.clear()

    @staticmethod
    def _discard(entry: tuple) -> None:
        """Release the shared segments of a result that will never be used."""
        from . import shm

        _, ok, result, _, _ = entry
        if ok and isinstance(result, dict):
            for key in ("shm_in", "shm_out"):
                name = result.get(key)
                if name:
                    shm.unlink(name)

    def shutdown(self) -> None:
        """Stop the workers (idempotent); stragglers are terminated."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        deadline = time.monotonic() + SHUTDOWN_TIMEOUT_S
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)


# -- modeled-hardware capture & replay ---------------------------------------


class RecordingClock(SimClock):
    """A :class:`SimClock` that also appends every charge to a log."""

    def __init__(self, log: list):
        super().__init__()
        self._log = log

    def charge(self, category: str, seconds: float) -> None:
        """Charge the clock (validating category/sign) and log the event."""
        super().charge(category, seconds)
        self._log.append(("charge", category, seconds))


class RecordingPool(MemoryPool):
    """A :class:`MemoryPool` that logs the alloc/free interleaving.

    Capacity is still enforced during the worker's compute (a task that
    would blow the device budget fails in the worker exactly as it would
    have inline); the log lets the parent reproduce the same usage curve
    on the real pool.
    """

    def __init__(self, name: str, capacity_bytes: int, exhausted_error,
                 log: list):
        super().__init__(name, capacity_bytes, exhausted_error)
        self._log = log

    def alloc(self, nbytes: int, *, label: str = "") -> Allocation:
        """Reserve capacity (enforced) and log the allocation event."""
        allocation = super().alloc(nbytes, label=label)
        self._log.append(("alloc", int(nbytes), label))
        return allocation

    def _release(self, nbytes: int) -> None:
        super()._release(nbytes)
        self._log.append(("free", int(nbytes)))


def replay_device_log(log: Iterable[tuple], *, clock: SimClock,
                      pool: MemoryPool) -> None:
    """Apply a worker's recorded device events to the real clock and pool.

    Charges are identical floats applied in identical order, so the
    simulated clock matches the serial schedule bit-for-bit; allocations
    and frees are matched FIFO per size (only amounts drive used/peak), so
    the pool's peaks and counters match too.
    """
    outstanding: dict[int, deque[Allocation]] = {}
    try:
        for event in log:
            kind = event[0]
            if kind == "charge":
                clock.charge(event[1], event[2])
            elif kind == "alloc":
                outstanding.setdefault(event[1], deque()).append(
                    pool.alloc(event[1], label=event[2]))
            elif kind == "free":
                outstanding[event[1]].popleft().free()
            else:
                raise ConfigError(f"unknown device-log event {kind!r}")
    finally:
        # Never leak pool capacity, even on a malformed log.
        for allocations in outstanding.values():
            for allocation in allocations:
                allocation.free()


# -- introspection helpers (used by tests) -----------------------------------


def _probe_task(payload: dict) -> dict:
    """Echo task reporting which process ran it (test/debug helper)."""
    import os

    return {"pid": os.getpid(), **payload}


def _failing_probe_task(payload: dict) -> dict:
    """Probe variant that always raises (exception-relay test helper)."""
    raise RuntimeError(f"probe failure on {payload!r}")

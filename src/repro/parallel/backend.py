"""Executor backend selection: ``serial`` | ``threads`` | ``processes``.

The :class:`~repro.parallel.PipelineExecutor` facade owns the determinism
rules (submission-order delivery, forced-serial under armed fault plans);
a *backend* only decides where work runs:

* ``serial`` — everything inline on the caller's thread, whatever the
  worker count says. The paper-faithful reference schedule.
* ``threads`` — the worker pool is a ``ThreadPoolExecutor``; numpy
  releases the GIL on the large vectorized kernels, so threads overlap
  I/O with compute but leave Python-level work GIL-bound.
* ``processes`` — fingerprint scans and sort run formation additionally
  ship to worker *processes* via shared-memory buffers
  (:mod:`repro.parallel.shm`), escaping the GIL entirely; thread-based
  read-ahead / write-behind still handles the I/O overlap.

``auto`` (the config default) resolves to ``processes`` when the
effective worker count exceeds 1, else ``serial``.
"""

from __future__ import annotations

from ..errors import ConfigError

#: Backend names accepted by config / CLI (``auto`` resolves at run time).
VALID_BACKENDS = ("auto", "serial", "threads", "processes")

#: Concrete backends an executor can be built with.
CONCRETE_BACKENDS = ("serial", "threads", "processes")


def check_backend(name: str) -> str:
    """Validate a backend name (including ``auto``); returns it normalized."""
    normalized = str(name).strip().lower()
    if normalized not in VALID_BACKENDS:
        raise ConfigError(
            f"executor backend must be one of {VALID_BACKENDS}, got {name!r}")
    return normalized


def resolve_backend(name: str, workers: int) -> str:
    """Resolve ``auto`` against an effective worker count."""
    normalized = check_backend(name)
    if normalized != "auto":
        return normalized
    return "processes" if workers > 1 else "serial"

"""Named shared-memory segments for zero-pickle bulk transfer.

The process backend ships only *descriptors* (segment name + shape +
dtype) through its task queues; the bulk payloads — packed read blocks,
fingerprint record blocks, sorted KV runs — live in
``multiprocessing.shared_memory`` segments that both sides map directly.
One copy in (producer), one copy or direct view out (consumer), nothing
pickled on the hot path.

Lifecycle protocol (single-owner unlink):

* the side that *creates* a segment closes its own mapping as soon as the
  data is written; the name alone travels in the task payload,
* the consumer attaches, reads, closes — and the **parent process**
  unlinks every segment (its own inputs and worker-created outputs) once
  the result is delivered, so a clean run leaves nothing in ``/dev/shm``,
* :func:`attach` detaches the mapping from Python's ``resource_tracker``:
  on 3.11 the tracker registers segments on *attach* as well as create,
  and a worker exiting would otherwise unlink segments the parent still
  owns (and spam ``KeyError`` warnings at interpreter shutdown).
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np


def create(nbytes: int) -> shared_memory.SharedMemory:
    """Create a new anonymous-named segment of at least one byte."""
    return shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))


def disown(segment: shared_memory.SharedMemory) -> None:
    """Drop this process's unlink responsibility for a segment it created.

    Worker tasks create *output* segments whose names travel back to the
    parent, which unlinks them after delivery. Without disowning, the
    worker-side resource tracker would try to unlink them again at worker
    exit (ENOENT warnings — or worse, a racing unlink of a reused name).
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # noqa: BLE001 — tracker internals vary across 3.x
        pass


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink responsibility."""
    segment = shared_memory.SharedMemory(name=name)
    try:
        # Attach-side registration would make *this* process's resource
        # tracker unlink the segment at exit; the creator owns unlinking.
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # noqa: BLE001 — tracker internals vary across 3.x
        pass
    return segment


def unlink(name: str) -> None:
    """Remove a segment by name (idempotent: a missing segment is fine)."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def as_array(segment: shared_memory.SharedMemory, shape, dtype) -> np.ndarray:
    """A numpy view over a segment's buffer (no copy).

    The view is only valid while ``segment`` is open; copy before closing
    if the data must outlive the mapping.
    """
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


def put_array(array: np.ndarray) -> str:
    """Copy ``array`` into a fresh segment; returns the segment name.

    The local mapping is closed before returning — only the name travels.
    """
    array = np.ascontiguousarray(array)
    segment = create(array.nbytes)
    as_array(segment, array.shape, array.dtype)[...] = array
    segment.close()
    return segment.name


def get_array(name: str, shape, dtype) -> np.ndarray:
    """Copy a segment's contents out as a regular array and detach."""
    segment = attach(name)
    try:
        return as_array(segment, shape, dtype).copy()
    finally:
        segment.close()

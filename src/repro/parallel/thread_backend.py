"""The thread worker pool behind :class:`~repro.parallel.PipelineExecutor`.

A thin lifecycle wrapper over ``ThreadPoolExecutor``: lazy start (serial
runs never spawn a thread), idempotent shutdown, and the thread-name
prefix the tracer's lane mapping keys on. The facade owns submission
order, metering and tracing; this class only runs callables.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable


def current_lane() -> str:
    """The trace track for the current thread (one row per worker lane)."""
    name = threading.current_thread().name
    if name.startswith("repro-worker_"):
        return "worker-" + name[len("repro-worker_"):]
    if name.startswith("repro-"):
        return name[len("repro-"):]
    return "main"


class ThreadBackend:
    """Lazily started, idempotently stopped thread pool."""

    name = "threads"

    def __init__(self, workers: int):
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._guard = threading.Lock()

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)`` on the pool (starting it on first use)."""
        with self._guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-worker")
            pool = self._pool
        return pool.submit(fn, *args)

    def shutdown(self) -> None:
        """Tear the pool down (no-op if it never started)."""
        with self._guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

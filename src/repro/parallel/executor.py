"""The pipelined executor: double-buffered I/O + ordered worker-pool map.

Four primitives cover every overlap pattern the pipeline needs:

* :meth:`PipelineExecutor.map_ordered` — run a function over an item
  stream on the thread pool with a bounded in-flight window, delivering
  results in **submission order**. numpy releases the GIL on the large
  vectorized kernels that dominate each task, so threads give genuine
  parallelism without forking the virtual-hardware state.
* :meth:`PipelineExecutor.map_tasks` — run *picklable task payloads* on
  the worker-process pool (:mod:`repro.parallel.process_backend`), with
  bulk data in shared-memory segments. Only used under the ``processes``
  backend; delivery is submission-ordered exactly like ``map_ordered``.
* :meth:`PipelineExecutor.prefetch` — a background producer draining an
  iterator into a bounded buffer (double-buffered reads: the next batch
  leaves the disk while the current one is being fingerprinted).
* :meth:`PipelineExecutor.write_behind` — a background consumer draining
  an ordered queue into a write function (the merge never blocks on
  ``write()``); deferred I/O errors re-raise on :meth:`WriteBehind.close`.

Determinism rules, enforced here so call sites cannot get them wrong:

* ``workers=1`` (the default, paper-faithful serial mode) and the
  ``serial`` backend execute everything inline on the caller's thread —
  zero threads, zero queues, byte-for-byte and op-for-op identical to the
  pre-parallel code.
* When a :class:`~repro.faults.plan.FaultPlan` is armed the executor
  *degrades to serial automatically*, whatever ``workers`` or the backend
  say: fault schedules pin failures to exact operation counts, and
  background work would perturb the op ordering the chaos harness replays
  against. The guard is the single :attr:`PipelineExecutor.parallel`
  property, consulted per call by **every** primitive — thread and
  process paths alike — so no backend can silently run a chaos schedule
  in parallel.
* Result delivery is always submission-ordered, so partition appends,
  run writes and merge output are identical for any worker count.

The ``device_lock`` serializes virtual-device work on the thread paths:
the modeled GPU is one resource with a hard capacity pool, so concurrent
block sorts would double the modeled peak device memory (and blow the
pool) — exactly as two host threads cannot both fill a real 12 GB K40.
Process tasks instead run against per-worker *recording* devices and the
parent replays their charge logs in submission order, which reproduces
the serial clock and pool trajectories bit-for-bit (see
:mod:`repro.parallel.process_backend`).
"""

from __future__ import annotations

import os
import queue
import threading
import time
import weakref
from collections import deque
from typing import Any, Callable, Iterable, Iterator, TypeVar

import numpy as np

from ..errors import ConfigError
from ..faults import plan as faults
from ..telemetry import EventMeter
from ..trace.tracer import NULL_TRACER
from .backend import resolve_backend
from .process_backend import ProcessBackend
from .thread_backend import ThreadBackend, current_lane as _lane

T = TypeVar("T")
R = TypeVar("R")

#: Queue sentinel marking the end of a background stream.
_DONE = object()

#: Default read-ahead / write-behind buffer depth (double buffering).
DEFAULT_DEPTH = 2

#: Seconds a helper thread gets to drain and exit when torn down early.
JOIN_TIMEOUT_S = 5.0


class PipelineExecutor:
    """Worker-pool executor with deterministic (submission-order) delivery.

    ``workers=1`` is the paper-faithful serial mode; ``workers=0`` derives
    the pool size from ``os.cpu_count()``. ``backend`` selects where work
    runs (``serial`` | ``threads`` | ``processes``; ``auto`` resolves to
    ``processes`` when the pool has more than one worker — construction
    through :class:`~repro.core.context.RunContext` passes the config's
    resolved backend). The executor is also a telemetry source:
    ``par_busy_s`` accumulates background busy seconds (worker tasks,
    prefetch reads, write-behind writes) and ``par_wait_s`` the
    caller-thread seconds spent blocked on background work, so
    ``overlap_saved_s = par_busy_s − par_wait_s`` is the wall time the
    overlap removed relative to a serialized schedule.
    """

    def __init__(self, workers: int = 1, *, tracer=None,
                 backend: str = "threads"):
        workers = int(workers)
        if workers < 0:
            raise ConfigError("workers must be >= 0 (0 = auto from cpu_count)")
        self.workers = workers or (os.cpu_count() or 1)
        self.backend = resolve_backend(backend, self.workers)
        self.meter = EventMeter()
        # Lifecycle spans (cat="executor", args kind=busy/wait) are
        # recorded from the very same perf_counter stamps as the meter
        # bumps, so trace-derived busy/wait totals reconcile exactly with
        # the par_busy_s/par_wait_s counters.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Serializes modeled-device work (one virtual GPU, one capacity pool).
        self.device_lock = threading.Lock()
        self._threads = ThreadBackend(self.workers)
        #: Live read-ahead sources, closed (joined) at shutdown even if a
        #: failed run abandoned them mid-stream.
        self._sources: "weakref.WeakSet[PrefetchingSource]" = weakref.WeakSet()
        # The process pool forks eagerly, before any helper thread exists
        # (RunContext builds its executor first), so the children never
        # inherit a mid-operation lock. Under an armed fault plan the run
        # is forced serial anyway — don't fork workers that cannot be used.
        self._processes: ProcessBackend | None = None
        if self.backend == "processes" and self.workers > 1 \
                and faults.active_plan() is None:
            self._processes = ProcessBackend(self.workers)

    # -- mode -----------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether background threads/processes may be used *right now*.

        False in serial mode (``workers=1`` or the ``serial`` backend) and
        whenever a fault plan is armed — fault op-counts must stay exact,
        so chaos runs are always serial, under **every** backend.
        """
        return self.workers > 1 and self.backend != "serial" \
            and faults.active_plan() is None

    @property
    def process_parallel(self) -> bool:
        """Whether task payloads would ship to worker processes right now."""
        return self.parallel and self._processes is not None

    def shutdown(self) -> None:
        """Tear down pools and helper threads (idempotent)."""
        for source in list(self._sources):
            source.close()
        self._sources.clear()
        self._threads.shutdown()
        if self._processes is not None:
            self._processes.shutdown()

    # -- ordered map (thread pool / inline) ------------------------------------

    def map_ordered(self, fn: Callable[[T], R], items: Iterable[T], *,
                    window: int | None = None) -> Iterator[R]:
        """Apply ``fn`` to ``items`` on the pool, yielding in submission order.

        At most ``window`` items (default ``workers + DEFAULT_DEPTH``) are
        in flight — submitted but not yet delivered — so memory stays
        bounded however fast the producer is. Items are pulled from
        ``items`` on the *caller's* thread (sequential reads keep their
        op ordering); a worker exception re-raises here with its original
        traceback when its result's turn comes.
        """
        try:
            if not self.parallel:
                for item in items:
                    yield fn(item)
                return
            if window is None:
                window = self.workers + DEFAULT_DEPTH
            if window < 1:
                raise ConfigError("map_ordered window must be >= 1")
            pending: deque = deque()

            def timed(item: T) -> R:
                begin = time.perf_counter()
                try:
                    return fn(item)
                finally:
                    end = time.perf_counter()
                    self.meter.bump("par_busy_s", end - begin)
                    self.meter.bump("par_tasks")
                    if self.tracer.enabled:
                        self.tracer.complete("task", begin, end, track=_lane(),
                                             cat="executor", kind="busy")

            try:
                for item in items:
                    pending.append(self._threads.submit(timed, item))
                    if len(pending) >= window:
                        yield self._await(pending.popleft())
                while pending:
                    yield self._await(pending.popleft())
            finally:
                for future in pending:
                    future.cancel()
        finally:
            # A mid-map exception must not strand the upstream producer:
            # closing a generator input runs its finally blocks (prefetch
            # joins its thread) so no helper outlives the failed call.
            close = getattr(items, "close", None)
            if close is not None:
                close()

    def _await(self, future) -> Any:
        begin = time.perf_counter()
        try:
            return future.result()
        finally:
            end = time.perf_counter()
            self.meter.bump("par_wait_s", end - begin)
            if self.tracer.enabled:
                self.tracer.complete("await", begin, end, track=_lane(),
                                     cat="executor", kind="wait")

    # -- ordered map (process pool) --------------------------------------------

    def map_tasks(self, task_path: str, payloads: Iterable[dict], *,
                  window: int | None = None) -> Iterator[dict]:
        """Run picklable payloads through ``task_path`` on worker processes.

        ``task_path`` names a module-level function (``"module:function"``)
        resolved inside each worker; payloads and results are small dicts,
        with bulk data passed as shared-memory segment names (see
        :mod:`repro.parallel.shm`). Delivery is submission-ordered. When
        process parallelism is unavailable *right now* (serial mode, armed
        fault plan, or a non-process backend) the task function runs
        inline on the caller's thread — same code, same results, no pool.
        """
        try:
            yield from self._map_tasks(task_path, payloads, window)
        finally:
            # A mid-map exception must not strand the upstream producer:
            # closing a generator input runs its finally blocks (prefetch
            # joins its thread) so no helper outlives the failed call.
            close = getattr(payloads, "close", None)
            if close is not None:
                close()

    def _map_tasks(self, task_path: str, payloads: Iterable[dict],
                   window: int | None) -> Iterator[dict]:
        if not self.process_parallel:
            from .process_backend import resolve_task

            fn = resolve_task(task_path)
            for payload in payloads:
                yield fn(payload)
            return
        if window is None:
            window = self.workers + DEFAULT_DEPTH
        if window < 1:
            raise ConfigError("map_tasks window must be >= 1")
        stream = self._processes.map_tasks(task_path, payloads, window=window)
        try:
            while True:
                begin = time.perf_counter()
                try:
                    result, busy, worker_id = next(stream)
                except StopIteration:
                    return
                finally:
                    end = time.perf_counter()
                    self.meter.bump("par_wait_s", end - begin)
                    if self.tracer.enabled:
                        self.tracer.complete("await", begin, end, track=_lane(),
                                             cat="executor", kind="wait")
                self.meter.bump("par_busy_s", busy)
                self.meter.bump("par_tasks")
                if self.tracer.enabled:
                    # The worker's own busy window, pinned so it ends at
                    # delivery (det=False wall spans; the deterministic sim
                    # trace never contains executor lanes).
                    self.tracer.complete("task", end - busy, end,
                                         track=f"proc-worker-{worker_id}",
                                         cat="executor", kind="busy")
                yield result
        finally:
            stream.close()

    # -- prefetch (double-buffered producer) ----------------------------------

    def prefetch(self, items: Iterable[T], *,
                 depth: int = DEFAULT_DEPTH) -> Iterator[T]:
        """Drain ``items`` on a background producer, ``depth`` ahead.

        The producer runs on a dedicated thread (never a pool worker, so
        a full buffer can never starve :meth:`map_ordered` tasks into a
        deadlock). Producer exceptions re-raise at the consumer's next
        pull; an empty iterator yields nothing. Closing the generator
        early (e.g. a downstream exception unwinding ``map_ordered``)
        stops and joins the producer thread.
        """
        if not self.parallel:
            yield from items
            return
        if depth < 1:
            raise ConfigError("prefetch depth must be >= 1")
        buffer: queue.Queue = queue.Queue(maxsize=depth)
        stop = threading.Event()

        def produce() -> None:
            iterator = iter(items)
            try:
                while not stop.is_set():
                    begin = time.perf_counter()
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                    end = time.perf_counter()
                    self.meter.bump("par_busy_s", end - begin)
                    if self.tracer.enabled:
                        self.tracer.complete("produce", begin, end,
                                             track=_lane(), cat="executor",
                                             kind="busy")
                    if not _put_until_stopped(buffer, item, stop):
                        return
            except BaseException as exc:  # noqa: BLE001 — relayed to consumer
                _put_until_stopped(buffer, (_DONE, exc), stop)
                return
            _put_until_stopped(buffer, (_DONE, None), stop)

        thread = threading.Thread(target=produce, name="repro-prefetch",
                                  daemon=True)
        thread.start()
        try:
            while True:
                begin = time.perf_counter()
                item = buffer.get()
                end = time.perf_counter()
                self.meter.bump("par_wait_s", end - begin)
                if self.tracer.enabled:
                    self.tracer.complete("get", begin, end, track=_lane(),
                                         cat="executor", kind="wait")
                if isinstance(item, tuple) and len(item) == 2 \
                        and item[0] is _DONE:
                    thread.join()
                    if item[1] is not None:
                        raise item[1]
                    return
                yield item
        finally:
            # Early close: release the producer (it may be blocked on a
            # full buffer) and join it so no thread outlives the stream.
            stop.set()
            _drain_and_join(buffer, thread)

    # -- read-ahead / write-behind sinks --------------------------------------

    def read_ahead(self, source, chunk_records: int, *,
                   depth: int = DEFAULT_DEPTH, lane: str = "read-ahead"):
        """Wrap a chunk source in a :class:`PrefetchingSource` (serial: as-is).

        ``lane`` names the trace track; several concurrent read-ahead
        sources (the k-way merge inputs) pass distinct lanes so each gets
        its own timeline row.
        """
        if not self.parallel:
            return source
        wrapped = PrefetchingSource(source, chunk_records, depth=depth,
                                    meter=self.meter, tracer=self.tracer,
                                    lane=lane)
        self._sources.add(wrapped)
        return wrapped

    def write_behind(self, write_fn: Callable[[Any], None], *,
                     depth: int = DEFAULT_DEPTH) -> "WriteBehind":
        """A :class:`WriteBehind` sink over ``write_fn`` (serial: inline)."""
        return WriteBehind(write_fn, depth=depth,
                           serial=not self.parallel, meter=self.meter,
                           tracer=self.tracer)


def _put_until_stopped(buffer: queue.Queue, item, stop: threading.Event,
                       poll_s: float = 0.1) -> bool:
    """``buffer.put(item)`` that gives up once ``stop`` is set.

    Returns False if the put was abandoned. The poll interval only matters
    during teardown; on the hot path the first put attempt succeeds.
    """
    while True:
        try:
            buffer.put(item, timeout=poll_s)
            return True
        except queue.Full:
            if stop.is_set():
                return False


def _drain_and_join(buffer: queue.Queue, thread: threading.Thread,
                    timeout: float = JOIN_TIMEOUT_S) -> None:
    """Unblock a producer stuck on a full buffer, then join it."""
    deadline = time.monotonic() + timeout
    while thread.is_alive() and time.monotonic() < deadline:
        try:
            while True:
                buffer.get_nowait()
        except queue.Empty:
            pass
        thread.join(timeout=0.05)


class PrefetchingSource:
    """Read-ahead wrapper over a chunk source (``read(n) -> ndarray``).

    A dedicated producer thread reads fixed ``chunk_records`` windows into
    a bounded buffer while the consumer merges the previous window — the
    paper's "next block is read while the device sorts the current one".
    Byte order is untouched; only the read *timing* changes. The producer
    exits when the underlying source is exhausted, which always happens
    before the consumer observes exhaustion, so closing the underlying
    reader afterwards is race-free. :meth:`close` tears the producer down
    early (a failed run must not leave a thread holding the reader's file
    handle); call it before closing the underlying reader.
    """

    def __init__(self, source, chunk_records: int, *,
                 depth: int = DEFAULT_DEPTH, meter: EventMeter | None = None,
                 tracer=None, lane: str = "read-ahead"):
        if chunk_records < 1:
            raise ConfigError("chunk_records must be >= 1")
        self._buffer: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._dtype = getattr(source, "dtype", None)
        self._leftover: np.ndarray | None = None
        self._done = False
        self._error: BaseException | None = None
        self._meter = meter
        self._stop = threading.Event()
        tracer = tracer if tracer is not None else NULL_TRACER
        self._tracer = tracer
        stop = self._stop

        def produce() -> None:
            try:
                while not stop.is_set():
                    begin = time.perf_counter()
                    chunk = source.read(chunk_records)
                    end = time.perf_counter()
                    if meter is not None:
                        meter.bump("par_busy_s", end - begin)
                    if tracer.enabled:
                        tracer.complete("read", begin, end, track=lane,
                                        cat="executor", kind="busy",
                                        records=int(chunk.shape[0]))
                    if chunk.shape[0] == 0:
                        _put_until_stopped(self._buffer, _DONE, stop)
                        return
                    if not _put_until_stopped(self._buffer, chunk, stop):
                        return
            except BaseException as exc:  # noqa: BLE001 — relayed to consumer
                self._error = exc
                _put_until_stopped(self._buffer, _DONE, stop)

        self._thread = threading.Thread(target=produce, name="repro-read-ahead",
                                        daemon=True)
        self._thread.start()

    def close(self) -> None:
        """Stop and join the producer thread (idempotent).

        Safe to call whatever state the stream is in; pending buffered
        chunks are discarded. The underlying reader is *not* closed here —
        its owner does that, after this join guarantees no concurrent read.
        """
        self._done = True
        self._stop.set()
        _drain_and_join(self._buffer, self._thread)

    def _next_chunk(self) -> np.ndarray | None:
        if self._done:
            return None
        begin = time.perf_counter()
        chunk = self._buffer.get()
        end = time.perf_counter()
        if self._meter is not None:
            self._meter.bump("par_wait_s", end - begin)
        if self._tracer.enabled:
            self._tracer.complete("read-wait", begin, end, track=_lane(),
                                  cat="executor", kind="wait")
        if chunk is _DONE:
            self._done = True
            self._thread.join()
            if self._error is not None:
                raise self._error
            return None
        return chunk

    def read(self, n: int) -> np.ndarray:
        """Consume up to ``n`` records (empty array at end of stream)."""
        parts: list[np.ndarray] = []
        have = 0
        if self._leftover is not None:
            parts.append(self._leftover)
            have = self._leftover.shape[0]
            self._leftover = None
        while have < n:
            chunk = self._next_chunk()
            if chunk is None:
                break
            parts.append(chunk)
            have += chunk.shape[0]
        if not parts:
            return self._empty()
        merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if merged.shape[0] > n:
            self._leftover = merged[n:]
            merged = merged[:n]
        return merged

    def _empty(self) -> np.ndarray:
        # The end-of-stream array keeps the source dtype when it is known
        # (dtype matters to downstream concatenations).
        if self._dtype is not None:
            return np.empty(0, dtype=self._dtype)
        return np.empty(0)


class WriteBehind:
    """A background writer draining an ordered queue into ``write_fn``.

    ``put()`` enqueues and returns immediately (blocking only when the
    bounded buffer is full); a dedicated writer thread applies
    ``write_fn`` in queue order, so output bytes are identical to inline
    writes. A writer-side exception is latched: ``put()`` raises it at
    the next call, the writer keeps draining (discarding) so no producer
    ever deadlocks, and :meth:`close` re-raises it — closing is the
    *commit point* a caller must reach before trusting the file.
    """

    def __init__(self, write_fn: Callable[[Any], None], *,
                 depth: int = DEFAULT_DEPTH, serial: bool = False,
                 meter: EventMeter | None = None, tracer=None):
        self._write_fn = write_fn
        self._serial = serial
        self._meter = meter
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._error: BaseException | None = None
        self._closed = False
        if serial:
            return
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._thread = threading.Thread(target=self._drain,
                                        name="repro-write-behind", daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _DONE:
                return
            if self._error is not None:
                continue  # keep draining so put() never blocks forever
            begin = time.perf_counter()
            try:
                self._write_fn(item)
            except BaseException as exc:  # noqa: BLE001 — re-raised on close
                self._error = exc
            finally:
                end = time.perf_counter()
                if self._meter is not None:
                    self._meter.bump("par_busy_s", end - begin)
                if self._tracer.enabled:
                    self._tracer.complete("write", begin, end, track=_lane(),
                                          cat="executor", kind="busy")

    def put(self, item: Any) -> None:
        """Enqueue one write (serial mode: write inline)."""
        if self._closed:
            raise ConfigError("WriteBehind.put after close")
        if self._error is not None:
            self._raise_deferred()
        if self._serial:
            self._write_fn(item)
            return
        begin = time.perf_counter()
        self._queue.put(item)
        end = time.perf_counter()
        if self._meter is not None:
            self._meter.bump("par_wait_s", end - begin)
        if self._tracer.enabled:
            self._tracer.complete("put", begin, end, track=_lane(),
                                  cat="executor", kind="wait")

    def close(self) -> None:
        """Flush the queue, join the writer, re-raise any deferred error."""
        if self._closed:
            return
        self._closed = True
        if not self._serial:
            begin = time.perf_counter()
            self._queue.put(_DONE)
            self._thread.join()
            end = time.perf_counter()
            if self._meter is not None:
                self._meter.bump("par_wait_s", end - begin)
            if self._tracer.enabled:
                self._tracer.complete("flush", begin, end, track=_lane(),
                                      cat="executor", kind="wait")
        if self._error is not None:
            self._raise_deferred()

    def _raise_deferred(self) -> None:
        error, self._error = self._error, None
        raise error

    def __enter__(self) -> "WriteBehind":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
            return
        # The body already failed: still stop the writer thread, but do not
        # let a deferred write error mask the original exception.
        try:
            self.close()
        except BaseException:  # noqa: BLE001 — body exception wins
            pass

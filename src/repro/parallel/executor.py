"""The pipelined executor: double-buffered I/O + ordered worker-pool map.

Three primitives cover every overlap pattern the pipeline needs:

* :meth:`PipelineExecutor.map_ordered` — run a function over an item
  stream on a worker pool with a bounded in-flight window, delivering
  results in **submission order**. numpy releases the GIL on the large
  vectorized kernels that dominate each task, so threads give genuine
  parallelism without forking the virtual-hardware state.
* :meth:`PipelineExecutor.prefetch` — a background producer draining an
  iterator into a bounded buffer (double-buffered reads: the next batch
  leaves the disk while the current one is being fingerprinted).
* :meth:`PipelineExecutor.write_behind` — a background consumer draining
  an ordered queue into a write function (the merge never blocks on
  ``write()``); deferred I/O errors re-raise on :meth:`WriteBehind.close`.

Determinism rules, enforced here so call sites cannot get them wrong:

* ``workers=1`` (the default, paper-faithful serial mode) executes
  everything inline on the caller's thread — zero threads, zero queues,
  byte-for-byte and op-for-op identical to the pre-parallel code.
* When a :class:`~repro.faults.plan.FaultPlan` is armed the executor
  *degrades to serial automatically*, whatever ``workers`` says: fault
  schedules pin failures to exact operation counts, and background I/O
  would perturb the op ordering the chaos harness replays against.
* Result delivery is always submission-ordered, so partition appends,
  run writes and merge output are identical for any worker count.

The ``device_lock`` serializes virtual-device work: the modeled GPU is
one resource with a hard capacity pool, so concurrent block sorts would
double the modeled peak device memory (and blow the pool) — exactly as
two host threads cannot both fill a real 12 GB K40. Workers therefore
overlap *host/disk* work with device work rather than device with device.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, TypeVar

import numpy as np

from ..errors import ConfigError
from ..faults import plan as faults
from ..telemetry import EventMeter
from ..trace.tracer import NULL_TRACER

T = TypeVar("T")
R = TypeVar("R")

#: Queue sentinel marking the end of a background stream.
_DONE = object()

#: Default read-ahead / write-behind buffer depth (double buffering).
DEFAULT_DEPTH = 2


def _lane() -> str:
    """The trace track for the current thread (one row per worker lane)."""
    name = threading.current_thread().name
    if name.startswith("repro-worker_"):
        return "worker-" + name[len("repro-worker_"):]
    if name.startswith("repro-"):
        return name[len("repro-"):]
    return "main"


class PipelineExecutor:
    """Worker-pool executor with deterministic (submission-order) delivery.

    ``workers=1`` is the paper-faithful serial mode; ``workers=0`` derives
    the pool size from ``os.cpu_count()``. The executor is also a
    telemetry source: ``par_busy_s`` accumulates background busy seconds
    (worker tasks, prefetch reads, write-behind writes) and ``par_wait_s``
    the caller-thread seconds spent blocked on background work, so
    ``overlap_saved_s = par_busy_s − par_wait_s`` is the wall time the
    overlap removed relative to a serialized schedule.
    """

    def __init__(self, workers: int = 1, *, tracer=None):
        workers = int(workers)
        if workers < 0:
            raise ConfigError("workers must be >= 0 (0 = auto from cpu_count)")
        self.workers = workers or (os.cpu_count() or 1)
        self.meter = EventMeter()
        # Lifecycle spans (cat="executor", args kind=busy/wait) are
        # recorded from the very same perf_counter stamps as the meter
        # bumps, so trace-derived busy/wait totals reconcile exactly with
        # the par_busy_s/par_wait_s counters.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Serializes modeled-device work (one virtual GPU, one capacity pool).
        self.device_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_guard = threading.Lock()

    # -- mode -----------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether background threads may be used *right now*.

        False in serial mode and whenever a fault plan is armed — fault
        op-counts must stay exact, so chaos runs are always serial.
        """
        return self.workers > 1 and faults.active_plan() is None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-worker")
            return self._pool

    def shutdown(self) -> None:
        """Tear down the worker pool (idempotent; serial mode is a no-op)."""
        with self._pool_guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- ordered map ----------------------------------------------------------

    def map_ordered(self, fn: Callable[[T], R], items: Iterable[T], *,
                    window: int | None = None) -> Iterator[R]:
        """Apply ``fn`` to ``items`` on the pool, yielding in submission order.

        At most ``window`` items (default ``workers + DEFAULT_DEPTH``) are
        in flight — submitted but not yet delivered — so memory stays
        bounded however fast the producer is. Items are pulled from
        ``items`` on the *caller's* thread (sequential reads keep their
        op ordering); a worker exception re-raises here with its original
        traceback when its result's turn comes.
        """
        if not self.parallel:
            for item in items:
                yield fn(item)
            return
        if window is None:
            window = self.workers + DEFAULT_DEPTH
        if window < 1:
            raise ConfigError("map_ordered window must be >= 1")
        pool = self._ensure_pool()
        pending: deque = deque()

        def timed(item: T) -> R:
            begin = time.perf_counter()
            try:
                return fn(item)
            finally:
                end = time.perf_counter()
                self.meter.bump("par_busy_s", end - begin)
                self.meter.bump("par_tasks")
                if self.tracer.enabled:
                    self.tracer.complete("task", begin, end, track=_lane(),
                                         cat="executor", kind="busy")

        try:
            for item in items:
                pending.append(pool.submit(timed, item))
                if len(pending) >= window:
                    yield self._await(pending.popleft())
            while pending:
                yield self._await(pending.popleft())
        finally:
            for future in pending:
                future.cancel()

    def _await(self, future) -> Any:
        begin = time.perf_counter()
        try:
            return future.result()
        finally:
            end = time.perf_counter()
            self.meter.bump("par_wait_s", end - begin)
            if self.tracer.enabled:
                self.tracer.complete("await", begin, end, track=_lane(),
                                     cat="executor", kind="wait")

    # -- prefetch (double-buffered producer) ----------------------------------

    def prefetch(self, items: Iterable[T], *,
                 depth: int = DEFAULT_DEPTH) -> Iterator[T]:
        """Drain ``items`` on a background producer, ``depth`` ahead.

        The producer runs on a dedicated thread (never a pool worker, so
        a full buffer can never starve :meth:`map_ordered` tasks into a
        deadlock). Producer exceptions re-raise at the consumer's next
        pull; an empty iterator yields nothing.
        """
        if not self.parallel:
            yield from items
            return
        if depth < 1:
            raise ConfigError("prefetch depth must be >= 1")
        buffer: queue.Queue = queue.Queue(maxsize=depth)

        def produce() -> None:
            iterator = iter(items)
            try:
                while True:
                    begin = time.perf_counter()
                    try:
                        item = next(iterator)
                    except StopIteration:
                        break
                    end = time.perf_counter()
                    self.meter.bump("par_busy_s", end - begin)
                    if self.tracer.enabled:
                        self.tracer.complete("produce", begin, end,
                                             track=_lane(), cat="executor",
                                             kind="busy")
                    buffer.put(item)
            except BaseException as exc:  # noqa: BLE001 — relayed to consumer
                buffer.put((_DONE, exc))
                return
            buffer.put((_DONE, None))

        thread = threading.Thread(target=produce, name="repro-prefetch",
                                  daemon=True)
        thread.start()
        while True:
            begin = time.perf_counter()
            item = buffer.get()
            end = time.perf_counter()
            self.meter.bump("par_wait_s", end - begin)
            if self.tracer.enabled:
                self.tracer.complete("get", begin, end, track=_lane(),
                                     cat="executor", kind="wait")
            if isinstance(item, tuple) and len(item) == 2 and item[0] is _DONE:
                thread.join()
                if item[1] is not None:
                    raise item[1]
                return
            yield item

    # -- read-ahead / write-behind sinks --------------------------------------

    def read_ahead(self, source, chunk_records: int, *,
                   depth: int = DEFAULT_DEPTH, lane: str = "read-ahead"):
        """Wrap a chunk source in a :class:`PrefetchingSource` (serial: as-is).

        ``lane`` names the trace track; several concurrent read-ahead
        sources (the k-way merge inputs) pass distinct lanes so each gets
        its own timeline row.
        """
        if not self.parallel:
            return source
        return PrefetchingSource(source, chunk_records, depth=depth,
                                 meter=self.meter, tracer=self.tracer,
                                 lane=lane)

    def write_behind(self, write_fn: Callable[[Any], None], *,
                     depth: int = DEFAULT_DEPTH) -> "WriteBehind":
        """A :class:`WriteBehind` sink over ``write_fn`` (serial: inline)."""
        return WriteBehind(write_fn, depth=depth,
                           serial=not self.parallel, meter=self.meter,
                           tracer=self.tracer)


class PrefetchingSource:
    """Read-ahead wrapper over a chunk source (``read(n) -> ndarray``).

    A dedicated producer thread reads fixed ``chunk_records`` windows into
    a bounded buffer while the consumer merges the previous window — the
    paper's "next block is read while the device sorts the current one".
    Byte order is untouched; only the read *timing* changes. The producer
    exits when the underlying source is exhausted, which always happens
    before the consumer observes exhaustion, so closing the underlying
    reader afterwards is race-free.
    """

    def __init__(self, source, chunk_records: int, *,
                 depth: int = DEFAULT_DEPTH, meter: EventMeter | None = None,
                 tracer=None, lane: str = "read-ahead"):
        if chunk_records < 1:
            raise ConfigError("chunk_records must be >= 1")
        self._buffer: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._dtype = getattr(source, "dtype", None)
        self._leftover: np.ndarray | None = None
        self._done = False
        self._error: BaseException | None = None
        self._meter = meter
        tracer = tracer if tracer is not None else NULL_TRACER
        self._tracer = tracer

        def produce() -> None:
            try:
                while True:
                    begin = time.perf_counter()
                    chunk = source.read(chunk_records)
                    end = time.perf_counter()
                    if meter is not None:
                        meter.bump("par_busy_s", end - begin)
                    if tracer.enabled:
                        tracer.complete("read", begin, end, track=lane,
                                        cat="executor", kind="busy",
                                        records=int(chunk.shape[0]))
                    if chunk.shape[0] == 0:
                        self._buffer.put(_DONE)
                        return
                    self._buffer.put(chunk)
            except BaseException as exc:  # noqa: BLE001 — relayed to consumer
                self._error = exc
                self._buffer.put(_DONE)

        self._thread = threading.Thread(target=produce, name="repro-read-ahead",
                                        daemon=True)
        self._thread.start()

    def _next_chunk(self) -> np.ndarray | None:
        if self._done:
            return None
        begin = time.perf_counter()
        chunk = self._buffer.get()
        end = time.perf_counter()
        if self._meter is not None:
            self._meter.bump("par_wait_s", end - begin)
        if self._tracer.enabled:
            self._tracer.complete("read-wait", begin, end, track=_lane(),
                                  cat="executor", kind="wait")
        if chunk is _DONE:
            self._done = True
            self._thread.join()
            if self._error is not None:
                raise self._error
            return None
        return chunk

    def read(self, n: int) -> np.ndarray:
        """Consume up to ``n`` records (empty array at end of stream)."""
        parts: list[np.ndarray] = []
        have = 0
        if self._leftover is not None:
            parts.append(self._leftover)
            have = self._leftover.shape[0]
            self._leftover = None
        while have < n:
            chunk = self._next_chunk()
            if chunk is None:
                break
            parts.append(chunk)
            have += chunk.shape[0]
        if not parts:
            return self._empty()
        merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if merged.shape[0] > n:
            self._leftover = merged[n:]
            merged = merged[:n]
        return merged

    def _empty(self) -> np.ndarray:
        # The end-of-stream array keeps the source dtype when it is known
        # (dtype matters to downstream concatenations).
        if self._dtype is not None:
            return np.empty(0, dtype=self._dtype)
        return np.empty(0)


class WriteBehind:
    """A background writer draining an ordered queue into ``write_fn``.

    ``put()`` enqueues and returns immediately (blocking only when the
    bounded buffer is full); a dedicated writer thread applies
    ``write_fn`` in queue order, so output bytes are identical to inline
    writes. A writer-side exception is latched: ``put()`` raises it at
    the next call, the writer keeps draining (discarding) so no producer
    ever deadlocks, and :meth:`close` re-raises it — closing is the
    *commit point* a caller must reach before trusting the file.
    """

    def __init__(self, write_fn: Callable[[Any], None], *,
                 depth: int = DEFAULT_DEPTH, serial: bool = False,
                 meter: EventMeter | None = None, tracer=None):
        self._write_fn = write_fn
        self._serial = serial
        self._meter = meter
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._error: BaseException | None = None
        self._closed = False
        if serial:
            return
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._thread = threading.Thread(target=self._drain,
                                        name="repro-write-behind", daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _DONE:
                return
            if self._error is not None:
                continue  # keep draining so put() never blocks forever
            begin = time.perf_counter()
            try:
                self._write_fn(item)
            except BaseException as exc:  # noqa: BLE001 — re-raised on close
                self._error = exc
            finally:
                end = time.perf_counter()
                if self._meter is not None:
                    self._meter.bump("par_busy_s", end - begin)
                if self._tracer.enabled:
                    self._tracer.complete("write", begin, end, track=_lane(),
                                          cat="executor", kind="busy")

    def put(self, item: Any) -> None:
        """Enqueue one write (serial mode: write inline)."""
        if self._closed:
            raise ConfigError("WriteBehind.put after close")
        if self._error is not None:
            self._raise_deferred()
        if self._serial:
            self._write_fn(item)
            return
        begin = time.perf_counter()
        self._queue.put(item)
        end = time.perf_counter()
        if self._meter is not None:
            self._meter.bump("par_wait_s", end - begin)
        if self._tracer.enabled:
            self._tracer.complete("put", begin, end, track=_lane(),
                                  cat="executor", kind="wait")

    def close(self) -> None:
        """Flush the queue, join the writer, re-raise any deferred error."""
        if self._closed:
            return
        self._closed = True
        if not self._serial:
            begin = time.perf_counter()
            self._queue.put(_DONE)
            self._thread.join()
            end = time.perf_counter()
            if self._meter is not None:
                self._meter.bump("par_wait_s", end - begin)
            if self._tracer.enabled:
                self._tracer.complete("flush", begin, end, track=_lane(),
                                      cat="executor", kind="wait")
        if self._error is not None:
            self._raise_deferred()

    def _raise_deferred(self) -> None:
        error, self._error = self._error, None
        raise error

    def __enter__(self) -> "WriteBehind":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
            return
        # The body already failed: still stop the writer thread, but do not
        # let a deferred write error mask the original exception.
        try:
            self.close()
        except BaseException:  # noqa: BLE001 — body exception wins
            pass

"""Pipelined parallel execution: overlap I/O with compute (§III.B).

The paper's central performance argument is *overlap*: reads stream
disk → host → device while the device sorts, so the semi-streaming phases
are bounded by bandwidth rather than by the sum of their parts. This
package is the execution substrate for that overlap — a worker-pool
executor whose result delivery is **submission-ordered**, so every
downstream write is byte-identical to the serial run regardless of the
worker count or backend.

Layout:

* :mod:`~repro.parallel.executor` — the :class:`PipelineExecutor` facade
  and the read-ahead / write-behind primitives,
* :mod:`~repro.parallel.backend` — backend names and ``auto`` resolution,
* :mod:`~repro.parallel.thread_backend` — the thread worker pool,
* :mod:`~repro.parallel.process_backend` — the multiprocessing pool and
  the recorded-device charge-log protocol,
* :mod:`~repro.parallel.shm` — shared-memory segments for zero-pickle
  bulk transfer.
"""

from .backend import CONCRETE_BACKENDS, VALID_BACKENDS, resolve_backend
from .executor import PipelineExecutor, PrefetchingSource, WriteBehind

__all__ = ["PipelineExecutor", "PrefetchingSource", "WriteBehind",
           "VALID_BACKENDS", "CONCRETE_BACKENDS", "resolve_backend"]

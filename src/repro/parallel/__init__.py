"""Pipelined parallel execution: overlap I/O with compute (§III.B).

The paper's central performance argument is *overlap*: reads stream
disk → host → device while the device sorts, so the semi-streaming phases
are bounded by bandwidth rather than by the sum of their parts. This
package is the execution substrate for that overlap — a worker-pool
executor whose result delivery is **submission-ordered**, so every
downstream write is byte-identical to the serial run regardless of the
worker count.
"""

from .executor import PipelineExecutor, PrefetchingSource, WriteBehind

__all__ = ["PipelineExecutor", "PrefetchingSource", "WriteBehind"]

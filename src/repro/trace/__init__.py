"""Structured span tracing: dual-clock event log + Perfetto export.

See :mod:`repro.trace.tracer` for the recording side,
:mod:`repro.trace.perfetto` for the Chrome/Perfetto trace-JSON export, and
:mod:`repro.trace.analysis` for summarization and telemetry reconciliation.
"""

from .analysis import (TraceSummary, TrackSummary, cache_events,
                       check_balanced, load_events, reconcile,
                       resilience_events, service_resilience_events,
                       summarize, validate_perfetto)
from .perfetto import build_perfetto, pair_spans
from .tracer import (EVENTS_FILE, MANIFEST_FILE, NULL_TRACER, PERFETTO_FILE,
                     PERFETTO_SIM_FILE, TRACE_FORMAT_VERSION, BoundTracer,
                     NullTracer, SpanTracer)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "EVENTS_FILE",
    "MANIFEST_FILE",
    "PERFETTO_FILE",
    "PERFETTO_SIM_FILE",
    "SpanTracer",
    "BoundTracer",
    "NullTracer",
    "NULL_TRACER",
    "build_perfetto",
    "pair_spans",
    "load_events",
    "cache_events",
    "check_balanced",
    "summarize",
    "reconcile",
    "resilience_events",
    "service_resilience_events",
    "validate_perfetto",
    "TraceSummary",
    "TrackSummary",
]

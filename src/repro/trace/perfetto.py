"""Chrome/Perfetto trace-JSON export of a span event log.

Produces the classic ``traceEvents`` JSON that both ``chrome://tracing``
and ui.perfetto.dev load: one process ("lasagna"), one thread row per
tracer *track* (executor worker lanes, read-ahead / write-behind threads,
distributed nodes), spans as complete ("X") events, markers as instant
("i") events.

Two clocks are exportable:

* ``clock="wall"`` — the real timeline; this is the view that shows PR 3's
  pipelined overlap (worker lanes busy while the main track waits).
* ``clock="sim"`` — the modeled-hardware timeline, restricted to events
  whose ``det`` flag marks their simulated stamps as deterministic. The
  result is canonically ordered and rounded to 0.1 µs, making it
  byte-identical across worker counts for the same input — the golden-file
  property ``tests/test_trace.py`` locks in.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from ..errors import TraceError

#: ``pid`` of the single exported process row.
PROCESS_ID = 1
#: Process name shown in the trace viewer.
PROCESS_NAME = "lasagna"


def pair_spans(events: Iterable[Mapping]) -> tuple[list[dict], int]:
    """Fold B/E event pairs into span dicts; returns (spans, unmatched).

    Instant events become zero-duration spans flagged ``instant``. A begin
    without an end (a crashed run dumped mid-span) is dropped and counted.
    """
    open_begins: dict[int, Mapping] = {}
    spans: list[dict] = []
    for event in events:
        ph = event["ph"]
        if ph == "B":
            open_begins[event["id"]] = event
        elif ph == "E":
            begin = open_begins.pop(event["id"], None)
            if begin is None:
                raise TraceError(f"end event without begin: id={event['id']}")
            args = dict(begin.get("args") or {})
            args.update(event.get("args") or {})
            spans.append({
                "name": begin["name"], "track": begin["track"],
                "cat": begin["cat"], "det": begin["det"],
                "phase": begin["phase"],
                "wall0": begin["wall"], "wall1": event["wall"],
                "sim0": begin["sim"], "sim1": event["sim"],
                "args": args, "error": event.get("error"),
                "instant": False,
            })
        elif ph == "I":
            spans.append({
                "name": event["name"], "track": event["track"],
                "cat": event["cat"], "det": event["det"],
                "phase": event["phase"],
                "wall0": event["wall"], "wall1": event["wall"],
                "sim0": event["sim"], "sim1": event["sim"],
                "args": dict(event.get("args") or {}), "error": None,
                "instant": True,
            })
        else:
            raise TraceError(f"unknown event phase {ph!r}")
    return spans, len(open_begins)


def _microseconds(seconds: float, digits: int = 3) -> float:
    # Wall stamps round to nanoseconds (digits=3). Simulated stamps round
    # to 0.1 µs (digits=1): the clock accumulates charges in whatever order
    # threads land them, and float summation order perturbs totals by a few
    # nanoseconds between worker counts — 100 ns quantization swallows that
    # while modeled phases of even tiny test runs stay distinguishable.
    return round(seconds * 1e6, digits)


def build_perfetto(events: Iterable[Mapping], *, clock: str = "wall") -> dict:
    """Build the Perfetto/Chrome trace object from raw tracer events.

    ``clock="wall"`` exports every span on the real timeline; ``"sim"``
    exports only deterministic (``det``) spans on the modeled timeline, in
    a canonical order with no run-dependent fields — the byte-identical
    export. Timestamps are microseconds as the format requires.
    """
    if clock not in ("wall", "sim"):
        raise TraceError(f"clock must be 'wall' or 'sim', got {clock!r}")
    spans, _unmatched = pair_spans(events)
    sim = clock == "sim"
    if sim:
        spans = [span for span in spans if span["det"]]
    t_key0, t_key1 = ("sim0", "sim1") if sim else ("wall0", "wall1")
    digits = 1 if sim else 3
    origin = min((span[t_key0] for span in spans), default=0.0)
    tracks = sorted({span["track"] for span in spans})
    tids = {track: index + 1 for index, track in enumerate(tracks)}

    body: list[dict] = []
    for span in spans:
        ts = _microseconds(span[t_key0] - origin, digits)
        dur = max(0.0, _microseconds(span[t_key1] - origin, digits) - ts)
        args = {key: value for key, value in span["args"].items()
                if value is not None}
        if span["phase"]:
            args["phase"] = span["phase"]
        if span["error"]:
            args["error"] = span["error"]
        event = {
            "name": span["name"], "cat": span["cat"], "pid": PROCESS_ID,
            "tid": tids[span["track"]], "ts": ts,
        }
        if span["instant"]:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = dur
        if args:
            event["args"] = args
        body.append(event)
    # Canonical order: by timestamp, thread, name, duration, and finally the
    # full serialized event, so ties are broken identically however threads
    # interleaved at record time (only exact duplicates remain ambiguous,
    # and swapping those is invisible in the output).
    body.sort(key=lambda e: (e["ts"], e["tid"], e["name"], e.get("dur", -1.0),
                             json.dumps(e, sort_keys=True)))

    trace_events: list[dict] = [{
        "ph": "M", "pid": PROCESS_ID, "tid": 0, "name": "process_name",
        "args": {"name": PROCESS_NAME},
    }]
    for track in tracks:
        trace_events.append({
            "ph": "M", "pid": PROCESS_ID, "tid": tids[track],
            "name": "thread_name", "args": {"name": track},
        })
    trace_events.extend(body)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "tracks": tracks},
        "traceEvents": trace_events,
    }

"""Trace summarization: busy fractions, overlap accounting, reconciliation.

The tentpole invariant of the tracing layer is that it *agrees with the
telemetry it sits beside*: per-phase span durations must reconcile with
:class:`~repro.telemetry.Telemetry` wall times, and the busy/wait spans
recorded by the executor lanes must reproduce ``overlap_saved_s`` through
the same shared helper the telemetry uses. :func:`reconcile` checks both;
the CI trace-smoke leg and ``tests/test_trace.py`` call it on real runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from ..errors import TraceError
from ..telemetry import Telemetry, overlap_saved_s
from .perfetto import pair_spans


def load_events(path: str | Path) -> list[dict]:
    """Read a tracer's ``events.jsonl`` log back into event dicts."""
    events = []
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{path}:{line_number}: malformed event line") from exc
    return events


def check_balanced(events: Iterable[Mapping]) -> int:
    """Assert every begin has a matching end; returns the span count.

    A completed run must dump a balanced log — an unmatched begin means a
    span leaked (or the run crashed mid-span), which the CI smoke leg
    treats as a failure.
    """
    spans, unmatched = pair_spans(events)
    if unmatched:
        raise TraceError(f"{unmatched} span(s) begun but never ended")
    return len(spans)


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by possibly-overlapping/nested intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    return covered + (current_end - current_start)


@dataclass(frozen=True)
class TrackSummary:
    """Activity on one trace track (worker lane, node, pipeline row)."""

    n_spans: int
    #: Wall seconds covered by at least one span (nested spans not
    #: double-counted), i.e. the track's busy time.
    busy_s: float
    #: ``busy_s`` over the whole trace extent.
    busy_fraction: float


@dataclass(frozen=True)
class TraceSummary:
    """Everything :func:`summarize` derives from one event log."""

    #: Wall seconds from first to last event.
    extent_s: float
    tracks: dict[str, TrackSummary] = field(default_factory=dict)
    #: Summed wall duration of the ``phase`` spans, by phase name.
    phase_wall_s: dict[str, float] = field(default_factory=dict)
    #: Background busy seconds from executor lifecycle spans.
    par_busy_s: float = 0.0
    #: Caller-blocked seconds from executor wait spans.
    par_wait_s: float = 0.0
    #: Per-phase busy − wait split of the executor spans.
    phase_overlap_s: dict[str, float] = field(default_factory=dict)

    @property
    def overlap_saved_s(self) -> float:
        """Overlap saving implied by the executor spans (shared formula)."""
        return overlap_saved_s({"par_busy_s": self.par_busy_s,
                                "par_wait_s": self.par_wait_s})


def summarize(events: str | Path | Iterable[Mapping]) -> TraceSummary:
    """Summarize an event log (a path to ``events.jsonl`` or raw events)."""
    if isinstance(events, (str, Path)):
        events = load_events(events)
    spans, _unmatched = pair_spans(events)
    if not spans:
        return TraceSummary(extent_s=0.0)
    extent = (max(span["wall1"] for span in spans)
              - min(span["wall0"] for span in spans))
    by_track: dict[str, list[tuple[float, float]]] = {}
    phase_wall: dict[str, float] = {}
    busy = wait = 0.0
    phase_busy: dict[str, float] = {}
    phase_wait: dict[str, float] = {}
    for span in spans:
        duration = span["wall1"] - span["wall0"]
        by_track.setdefault(span["track"], []).append(
            (span["wall0"], span["wall1"]))
        if span["cat"] == "phase":
            phase_wall[span["name"]] = phase_wall.get(span["name"], 0.0) \
                + duration
        elif span["cat"] == "executor":
            kind = span["args"].get("kind")
            phase = span["phase"]
            if kind == "busy":
                busy += duration
                phase_busy[phase] = phase_busy.get(phase, 0.0) + duration
            elif kind == "wait":
                wait += duration
                phase_wait[phase] = phase_wait.get(phase, 0.0) + duration
    tracks = {
        track: TrackSummary(
            n_spans=len(intervals),
            busy_s=(covered := _interval_union(intervals)),
            busy_fraction=(covered / extent) if extent > 0 else 0.0)
        for track, intervals in by_track.items()
    }
    phase_overlap = {
        phase: overlap_saved_s({"par_busy_s": phase_busy.get(phase, 0.0),
                                "par_wait_s": phase_wait.get(phase, 0.0)})
        for phase in set(phase_busy) | set(phase_wait)
    }
    return TraceSummary(extent_s=extent, tracks=tracks,
                        phase_wall_s=phase_wall, par_busy_s=busy,
                        par_wait_s=wait, phase_overlap_s=phase_overlap)


def resilience_events(events: str | Path | Iterable[Mapping]) -> dict:
    """Aggregate the resilience instrumentation out of one event log.

    The supervisor (:mod:`repro.distributed.resilience`) emits ``cat ==
    "resilience"`` spans/instants plus ``token-retry`` markers from the
    reduce loop; this rolls them up into the shape the chaos CI leg and
    the resilience benchmark report on::

        {"heartbeat_misses": int, "backoffs": int, "backoff_sim_s": float,
         "restarts": int, "reassignments": int, "token_retries": int,
         "nodes_lost": int, "partitions_dropped": int,
         "speculations": int, "speculation_wins": int,
         "speculation_losses": int, "speculation_wasted_sim_s": float,
         "nodes_joined": int}

    A clean run yields all zeros — the fast path emits none of these.
    """
    if isinstance(events, (str, Path)):
        events = load_events(events)
    counts = {
        "heartbeat_misses": 0, "backoffs": 0, "backoff_sim_s": 0.0,
        "restarts": 0, "reassignments": 0, "token_retries": 0,
        "nodes_lost": 0, "partitions_dropped": 0,
        "speculations": 0, "speculation_wins": 0, "speculation_losses": 0,
        "speculation_wasted_sim_s": 0.0, "nodes_joined": 0,
    }
    markers = {
        "heartbeat-miss": "heartbeat_misses",
        "token-retry": "token_retries",
        "node-lost": "nodes_lost",
        "partition-dropped": "partitions_dropped",
        "node-join": "nodes_joined",
    }
    spans, _unmatched = pair_spans(events)
    for span in spans:
        name = span["name"]
        if name == "backoff":
            counts["backoffs"] += 1
            counts["backoff_sim_s"] += span["sim1"] - span["sim0"]
        elif name == "failover":
            action = span["args"].get("action")
            if action == "restart":
                counts["restarts"] += 1
            elif action == "reassign":
                counts["reassignments"] += 1
        elif name == "speculation":
            # One span per contender; a race is one win plus its losers.
            if span["args"].get("action") == "win":
                counts["speculations"] += 1
                if span["args"].get("backup"):
                    counts["speculation_wins"] += 1
                else:
                    counts["speculation_losses"] += 1
            else:
                counts["speculation_wasted_sim_s"] += \
                    span["sim1"] - span["sim0"]
        elif name in markers:
            counts[markers[name]] += 1
    return counts


def cache_events(events: str | Path | Iterable[Mapping]) -> dict:
    """Aggregate the content-cache instrumentation out of one event log.

    The :class:`~repro.service.content_store.ContentStore` emits instants
    on the ``cache`` track for every lookup outcome; this rolls them up
    into the shape the service benchmark and CI leg report on::

        {"hits": int, "misses": int, "puts": int, "evictions": int,
         "damaged": int, "hit_bytes": int, "evicted_bytes": int}

    A run without a configured cache yields all zeros.
    """
    if isinstance(events, (str, Path)):
        events = load_events(events)
    counts = {"hits": 0, "misses": 0, "puts": 0, "evictions": 0,
              "damaged": 0, "hit_bytes": 0, "evicted_bytes": 0}
    markers = {"cache-hit": "hits", "cache-miss": "misses",
               "cache-put": "puts", "cache-evict": "evictions",
               "cache-damaged": "damaged"}
    spans, _unmatched = pair_spans(events)
    for span in spans:
        key = markers.get(span["name"])
        if key is None or span["track"] != "cache":
            continue
        counts[key] += 1
        if span["name"] == "cache-hit":
            counts["hit_bytes"] += int(span["args"].get("bytes", 0))
        elif span["name"] == "cache-evict":
            counts["evicted_bytes"] += int(span["args"].get("bytes", 0))
    return counts


def service_resilience_events(events: str | Path | Iterable[Mapping]) -> dict:
    """Aggregate the service failure-ladder instrumentation from an event log.

    The :class:`~repro.service.AssemblyService` scheduler emits instants on
    the ``service`` track for every rung of its failure ladder (retry,
    cancellation, deadline, promotion, quarantine, shedding); this rolls
    them up into the shape the service-chaos CI leg and the service
    benchmark report on::

        {"job_retries": int, "retry_backoff_sim_s": float,
         "cancelled": int, "timed_out": int, "leaders_promoted": int,
         "quarantined": int, "quarantine_hits": int,
         "admission_shed": int, "drain_shed": int}

    A clean, un-drained run yields all zeros — the fast path emits none
    of these markers (``job-start``/``job-done`` are not ladder events).
    """
    if isinstance(events, (str, Path)):
        events = load_events(events)
    counts = {
        "job_retries": 0, "retry_backoff_sim_s": 0.0,
        "cancelled": 0, "timed_out": 0, "leaders_promoted": 0,
        "quarantined": 0, "quarantine_hits": 0,
        "admission_shed": 0, "drain_shed": 0,
    }
    markers = {
        "job-cancelled": "cancelled",
        "job-timed-out": "timed_out",
        "leader-promoted": "leaders_promoted",
        "quarantined": "quarantined",
        "quarantine-hit": "quarantine_hits",
    }
    spans, _unmatched = pair_spans(events)
    for span in spans:
        if span["track"] != "service":
            continue
        name = span["name"]
        if name == "job-retry":
            counts["job_retries"] += 1
            counts["retry_backoff_sim_s"] += \
                float(span["args"].get("backoff_s", 0.0))
        elif name == "shed":
            # The ``reason`` arg carries the shed class (the meter key).
            reason = span["args"].get("reason")
            counts["admission_shed" if reason == "admission_shed"
                   else "drain_shed"] += 1
        elif name in markers:
            counts[markers[name]] += 1
    return counts


def reconcile(summary: TraceSummary, telemetry: Telemetry, *,
              wall_tol_s: float = 1e-3,
              overlap_tol_s: float = 1e-6) -> dict:
    """Cross-check a trace summary against the run's telemetry.

    Returns ``{"ok": bool, "phase_delta_s": {...}, "overlap_delta_s": f}``.
    Phase spans are recorded by the telemetry phase contexts from the very
    same clock reads that produce ``PhaseStats.wall_seconds``, so the
    per-phase deltas should be zero to the float; ``wall_tol_s`` (±1 ms)
    allows for merged repeated phases. The overlap delta compares the
    trace's busy−wait against the meter's ``overlap_saved_s`` — identical
    measurements summed in different orders, so tolerance is ULP-scale.
    """
    phase_delta: dict[str, float] = {}
    for stats in telemetry:
        traced = summary.phase_wall_s.get(stats.name)
        if traced is None:
            raise TraceError(f"phase {stats.name!r} missing from trace")
        phase_delta[stats.name] = traced - stats.wall_seconds
    meter_overlap = overlap_saved_s({
        "par_busy_s": sum(s.counters.get("par_busy_s", 0.0) for s in telemetry),
        "par_wait_s": sum(s.counters.get("par_wait_s", 0.0) for s in telemetry),
    })
    overlap_delta = summary.overlap_saved_s - meter_overlap
    ok = (all(abs(delta) <= wall_tol_s for delta in phase_delta.values())
          and abs(overlap_delta) <= overlap_tol_s)
    return {"ok": ok, "phase_delta_s": phase_delta,
            "overlap_delta_s": overlap_delta}


def validate_perfetto(trace: Mapping) -> int:
    """Structurally validate an exported Perfetto trace; returns event count.

    Checks what a trace viewer needs: a ``traceEvents`` list, every span a
    well-formed complete event with non-negative ``ts``/``dur``, and a
    ``thread_name`` metadata row for every referenced track.
    """
    trace_events = trace.get("traceEvents")
    if not isinstance(trace_events, list):
        raise TraceError("trace has no traceEvents list")
    named_tids = set()
    used_tids = set()
    for event in trace_events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                named_tids.add(event["tid"])
            continue
        if ph not in ("X", "i"):
            raise TraceError(f"unexpected event phase {ph!r}")
        if not event.get("name"):
            raise TraceError("span without a name")
        if event.get("ts", -1) < 0:
            raise TraceError(f"span {event['name']!r} has negative ts")
        if ph == "X" and event.get("dur", -1) < 0:
            raise TraceError(f"span {event['name']!r} has negative dur")
        used_tids.add(event["tid"])
    missing = used_tids - named_tids
    if missing:
        raise TraceError(f"tracks without thread_name metadata: {missing}")
    return len(trace_events)

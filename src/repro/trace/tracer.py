"""The span tracer: begin/end events on named tracks, dual-clock stamped.

The paper's whole evaluation is about *where time goes* (per-phase wall
times in Tables II/III, the I/O-bound claim behind Fig. 8–10), and the
pipelined execution layer's value proposition — read-ahead overlapping
device sorts, write-behind overlapping merges — is invisible in per-phase
aggregates. This module records the actual timeline:

* :class:`SpanTracer` — a thread-safe event log. Every begin/end event is
  stamped against **both** clocks: the wall clock (``time.perf_counter``
  relative to the tracer's epoch) and the run's simulated hardware clock
  (:class:`~repro.device.clock.SimClock` total seconds). Events land on
  named *tracks* — one per executor worker lane, one per distributed node —
  which become the rows of the exported timeline.
* :class:`BoundTracer` — a view over a shared root tracer that injects a
  simulated-clock source and a track prefix; a distributed worker node
  binds the cluster's tracer with its own clock and a ``nodeNN/`` prefix.
* :data:`NULL_TRACER` — the disabled singleton. Every instrument site in
  the pipeline calls through a tracer unconditionally; with tracing off
  the calls hit no-op methods and a cached no-op span, so nothing is
  allocated and no event is recorded (the ``enabled`` flag additionally
  guards the few call sites that would compute arguments).

Events carry a ``det`` flag marking spans whose *simulated* timestamps are
deterministic — recorded at points where all background work has drained,
so the modeled clock reads identically for any worker count. The
deterministic Perfetto export (:func:`repro.trace.perfetto.build_perfetto`
with ``clock="sim"``) keeps only those spans, which is what makes traced
output byte-identical across ``workers`` settings.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Mapping

#: Trace schema version, recorded in every manifest.
TRACE_FORMAT_VERSION = 1

#: File names written by :meth:`SpanTracer.write`.
EVENTS_FILE = "events.jsonl"
MANIFEST_FILE = "manifest.json"
PERFETTO_FILE = "trace.json"
PERFETTO_SIM_FILE = "trace.sim.json"

SimTime = Callable[[], float]


class _Span:
    """Context manager over one begin/end pair (see :meth:`SpanTracer.span`)."""

    __slots__ = ("_tracer", "_name", "_track", "_cat", "_det", "_clock",
                 "_args", "_handle", "_notes")

    def __init__(self, tracer: "SpanTracer", name: str, track: str, cat: str,
                 det: bool, clock: SimTime | None, args: dict | None):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._cat = cat
        self._det = det
        self._clock = clock
        self._args = args
        self._handle = -1
        self._notes: dict | None = None

    def note(self, **args: Any) -> None:
        """Attach arguments to the span's end event (post-hoc results)."""
        if self._notes is None:
            self._notes = {}
        self._notes.update(args)

    def __enter__(self) -> "_Span":
        self._handle = self._tracer.begin(
            self._name, track=self._track, cat=self._cat, det=self._det,
            clock=self._clock, args=self._args)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        error = None if exc_type is None else f"{exc_type.__name__}: {exc}"
        self._tracer.end(self._handle, clock=self._clock, error=error,
                         args=self._notes)


class _NullSpan:
    """The reusable no-op span handed out by the disabled tracer."""

    __slots__ = ()

    def note(self, **args: Any) -> None:
        """Ignore post-hoc arguments."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Thread-safe span recorder for one run.

    Events accumulate in memory (appends under a lock; worker, prefetch and
    write-behind threads record concurrently) and are dumped by
    :meth:`write` as a JSONL event log, a run manifest, and two Perfetto
    trace JSON files (wall-clock and deterministic simulated-clock).
    """

    enabled = True

    def __init__(self, *, sim_time: SimTime | None = None,
                 meta: Mapping[str, Any] | None = None):
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._events: list[dict] = []
        self._open: dict[int, tuple[str, str, str, bool]] = {}
        self._next_id = 0
        self._phase_stack: list[str] = []
        #: Default simulated-clock source (a bound tracer overrides it).
        self.sim_time = sim_time
        self.meta = dict(meta or {})

    # -- clocks ---------------------------------------------------------------

    def _wall(self, at: float | None) -> float:
        raw = time.perf_counter() if at is None else at
        return raw - self._epoch

    def _sim(self, clock: SimTime | None) -> float:
        source = clock if clock is not None else self.sim_time
        return float(source()) if source is not None else 0.0

    # -- phase tagging --------------------------------------------------------

    @property
    def current_phase(self) -> str:
        """The innermost telemetry phase currently open ("" outside phases)."""
        stack = self._phase_stack
        return stack[-1] if stack else ""

    def push_phase(self, name: str) -> None:
        """Enter a telemetry phase: subsequent events are tagged with it."""
        self._phase_stack.append(name)

    def pop_phase(self) -> None:
        """Leave the innermost telemetry phase."""
        if self._phase_stack:
            self._phase_stack.pop()

    # -- recording ------------------------------------------------------------

    def _record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def begin(self, name: str, *, track: str = "main", cat: str = "span",
              det: bool = False, clock: SimTime | None = None,
              at: float | None = None, args: Mapping[str, Any] | None = None,
              ) -> int:
        """Record a span-begin event; returns the handle :meth:`end` needs.

        ``at`` is a raw ``time.perf_counter()`` stamp taken by the caller
        (so a caller timing the region itself produces a span of exactly
        the duration it measured); omitted, the tracer stamps now.
        """
        event = {
            "ph": "B", "name": name, "track": track, "cat": cat, "det": det,
            "phase": self.current_phase,
            "wall": self._wall(at), "sim": self._sim(clock),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            event["id"] = span_id
            self._open[span_id] = (name, track, cat, det)
            self._events.append(event)
        return span_id

    def end(self, handle: int, *, clock: SimTime | None = None,
            at: float | None = None, error: str | None = None,
            args: Mapping[str, Any] | None = None) -> None:
        """Record the end event matching a :meth:`begin` handle."""
        with self._lock:
            opened = self._open.pop(handle, None)
        if opened is None:
            return
        name, track, cat, det = opened
        event = {
            "ph": "E", "id": handle, "name": name, "track": track, "cat": cat,
            "det": det, "phase": self.current_phase,
            "wall": self._wall(at), "sim": self._sim(clock),
        }
        if error is not None:
            event["error"] = error
        if args:
            event["args"] = dict(args)
        self._record(event)

    def span(self, name: str, *, track: str = "main", cat: str = "span",
             det: bool = False, clock: SimTime | None = None,
             **args: Any) -> _Span:
        """A ``with``-able span: begin on enter, end (with error) on exit."""
        return _Span(self, name, track, cat, det, clock, args or None)

    def complete(self, name: str, begin_wall: float, end_wall: float, *,
                 track: str = "main", cat: str = "span", det: bool = False,
                 clock: SimTime | None = None, sim0: float | None = None,
                 sim1: float | None = None, **args: Any) -> None:
        """Record an already-measured span from raw perf_counter stamps.

        The hot executor paths time their work anyway (for the telemetry
        meter); recording the *same* stamps here makes trace-derived busy/
        wait totals reconcile exactly with the meter's counters. ``sim0``/
        ``sim1`` override the simulated stamps (the distributed reduce
        records token hops at modeled times its own arithmetic produced).
        """
        sim_now = self._sim(clock) if sim0 is None or sim1 is None else 0.0
        base = {
            "name": name, "track": track, "cat": cat, "det": det,
            "phase": self.current_phase,
        }
        if args:
            base["args"] = dict(args)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            begin = dict(base, ph="B", id=span_id, wall=self._wall(begin_wall),
                         sim=sim_now if sim0 is None else float(sim0))
            end = dict(base, ph="E", id=span_id, wall=self._wall(end_wall),
                       sim=sim_now if sim1 is None else float(sim1))
            self._events.append(begin)
            self._events.append(end)

    def instant(self, name: str, *, track: str = "main", cat: str = "span",
                det: bool = False, clock: SimTime | None = None,
                sim_at: float | None = None, **args: Any) -> None:
        """Record a zero-duration marker event."""
        event = {
            "ph": "I", "name": name, "track": track, "cat": cat, "det": det,
            "phase": self.current_phase, "wall": self._wall(None),
            "sim": self._sim(clock) if sim_at is None else float(sim_at),
        }
        if args:
            event["args"] = dict(args)
        self._record(event)

    # -- views ----------------------------------------------------------------

    @property
    def events(self) -> list[dict]:
        """A snapshot of every recorded event, in record order."""
        with self._lock:
            return list(self._events)

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended (non-zero mid-run or after a crash)."""
        with self._lock:
            return len(self._open)

    def bind(self, sim_time: SimTime | None = None, *,
             prefix: str = "") -> "BoundTracer":
        """A view recording into this tracer with its own clock/track prefix."""
        return BoundTracer(self, sim_time, prefix)

    # -- output ---------------------------------------------------------------

    def write(self, path: str | Path) -> dict[str, Path]:
        """Dump the trace into directory ``path``; returns the files written.

        Writes the raw JSONL event log, a run manifest, the wall-clock
        Perfetto trace (one row per worker lane / node track — load it at
        ``chrome://tracing`` or ui.perfetto.dev), and the deterministic
        simulated-clock Perfetto trace (``det`` spans only; byte-identical
        across worker counts).
        """
        from .perfetto import build_perfetto

        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        events = self.events
        files = {
            "events": directory / EVENTS_FILE,
            "manifest": directory / MANIFEST_FILE,
            "perfetto": directory / PERFETTO_FILE,
            "perfetto_sim": directory / PERFETTO_SIM_FILE,
        }
        with files["events"].open("w") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        walls = [event["wall"] for event in events]
        manifest = {
            "format_version": TRACE_FORMAT_VERSION,
            "meta": self.meta,
            "n_events": len(events),
            "n_spans": sum(1 for e in events if e["ph"] == "B"),
            "open_spans": self.open_spans,
            "tracks": sorted({e["track"] for e in events}),
            "phases": sorted({e["phase"] for e in events if e["phase"]}),
            "wall_extent_s": (max(walls) - min(walls)) if walls else 0.0,
            "files": {key: file.name for key, file in files.items()},
        }
        files["manifest"].write_text(json.dumps(manifest, sort_keys=True,
                                                indent=2) + "\n")
        for key, clock in (("perfetto", "wall"), ("perfetto_sim", "sim")):
            trace = build_perfetto(events, clock=clock)
            files[key].write_bytes(
                json.dumps(trace, sort_keys=True,
                           separators=(",", ":")).encode() + b"\n")
        return files


class BoundTracer:
    """A recording view over a shared root :class:`SpanTracer`.

    Injects a simulated-clock source (a run's / node's own
    :class:`~repro.device.clock.SimClock`) and a track prefix, so several
    contexts can interleave into one event log with distinguishable tracks
    and correct modeled timestamps. Binds compose: a node-prefixed view
    bound again with a clock keeps the prefix.
    """

    enabled = True

    def __init__(self, root: SpanTracer, sim_time: SimTime | None,
                 prefix: str = ""):
        self.root = root
        self._sim_time = sim_time
        self._prefix = prefix

    def _clock(self, clock: SimTime | None) -> SimTime | None:
        return clock if clock is not None else self._sim_time

    def _track(self, track: str) -> str:
        return self._prefix + track

    @property
    def current_phase(self) -> str:
        """The shared root's innermost open phase."""
        return self.root.current_phase

    def push_phase(self, name: str) -> None:
        """Enter a telemetry phase on the shared root."""
        self.root.push_phase(name)

    def pop_phase(self) -> None:
        """Leave the innermost telemetry phase on the shared root."""
        self.root.pop_phase()

    def begin(self, name: str, *, track: str = "main", cat: str = "span",
              det: bool = False, clock: SimTime | None = None,
              at: float | None = None, args: Mapping[str, Any] | None = None,
              ) -> int:
        """Record a begin event through the root (prefixed track, own clock)."""
        return self.root.begin(name, track=self._track(track), cat=cat,
                               det=det, clock=self._clock(clock), at=at,
                               args=args)

    def end(self, handle: int, *, clock: SimTime | None = None,
            at: float | None = None, error: str | None = None,
            args: Mapping[str, Any] | None = None) -> None:
        """Record the matching end event through the root."""
        self.root.end(handle, clock=self._clock(clock), at=at, error=error,
                      args=args)

    def span(self, name: str, *, track: str = "main", cat: str = "span",
             det: bool = False, clock: SimTime | None = None,
             **args: Any) -> _Span:
        """A ``with``-able span recording through the root."""
        return _Span(self.root, name, self._track(track), cat, det,
                     self._clock(clock), args or None)

    def complete(self, name: str, begin_wall: float, end_wall: float, *,
                 track: str = "main", cat: str = "span", det: bool = False,
                 clock: SimTime | None = None, sim0: float | None = None,
                 sim1: float | None = None, **args: Any) -> None:
        """Record an already-measured span through the root."""
        self.root.complete(name, begin_wall, end_wall,
                           track=self._track(track), cat=cat, det=det,
                           clock=self._clock(clock), sim0=sim0, sim1=sim1,
                           **args)

    def instant(self, name: str, *, track: str = "main", cat: str = "span",
                det: bool = False, clock: SimTime | None = None,
                sim_at: float | None = None, **args: Any) -> None:
        """Record a marker event through the root."""
        self.root.instant(name, track=self._track(track), cat=cat, det=det,
                          clock=self._clock(clock), sim_at=sim_at, **args)

    def bind(self, sim_time: SimTime | None = None, *,
             prefix: str = "") -> "BoundTracer":
        """Bind again: new clock (falling back to this one), appended prefix."""
        return BoundTracer(self.root, sim_time or self._sim_time,
                           self._prefix + prefix)


class NullTracer:
    """The disabled tracer: every method is a no-op, every span is cached.

    Instrument sites call tracer methods unconditionally; with tracing off
    this class guarantees zero event allocation. Sites that would compute
    arguments (lane names, record counts) additionally guard on
    :attr:`enabled`.
    """

    enabled = False
    current_phase = ""

    def push_phase(self, name: str) -> None:
        """No-op."""

    def pop_phase(self) -> None:
        """No-op."""

    def begin(self, name: str, **kwargs: Any) -> int:
        """No-op; returns an inert handle."""
        return -1

    def end(self, handle: int, **kwargs: Any) -> None:
        """No-op."""

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        """The cached no-op span."""
        return _NULL_SPAN

    def complete(self, name: str, begin_wall: float, end_wall: float,
                 **kwargs: Any) -> None:
        """No-op."""

    def instant(self, name: str, **kwargs: Any) -> None:
        """No-op."""

    def bind(self, sim_time: SimTime | None = None, *,
             prefix: str = "") -> "NullTracer":
        """Binding a disabled tracer stays disabled."""
        return self


#: The process-wide disabled tracer (no state, safe to share everywhere).
NULL_TRACER = NullTracer()

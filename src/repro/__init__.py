"""LaSAGNA reproduction: GPU-accelerated large-scale genome assembly.

A from-scratch Python reproduction of *GPU-Accelerated Large-Scale Genome
Assembly* (Goswami, Lee, Shams, Park - IPDPS 2018): a string-graph
assembler built on approximate all-pair overlaps from Rabin-Karp
fingerprints, running in a two-level semi-streaming memory model
(disk -> host -> device) over a capacity-enforcing virtual GPU.

Quick start::

    from repro import Assembler, AssemblyConfig

    result = Assembler(AssemblyConfig(min_overlap=25)).assemble("reads.fastq")
    print(result.summary())

See README.md for the full tour and DESIGN.md for the system map.
"""

from ._version import __version__
from .config import AssemblyConfig, MemoryConfig
from .core import Assembler, AssemblyResult
from .errors import ReproError

__all__ = [
    "__version__",
    "Assembler",
    "AssemblyConfig",
    "AssemblyResult",
    "MemoryConfig",
    "ReproError",
]

"""The ``lasagna`` command-line interface.

Subcommands::

    lasagna simulate-reads  --genome-length 50000 --coverage 30 -o reads.fastq
    lasagna assemble reads.fastq --min-overlap 31 -o contigs.fasta
    lasagna stats contigs.fasta
    lasagna datasets
    lasagna model --dataset hgenome_sim --memory qb2 --device K40

``assemble`` runs the full pipeline with laptop-scale default budgets;
``model`` prints the analytic paper-scale phase times for a registered
dataset (the Table II/III regeneration without running anything).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .config import AssemblyConfig, MemoryConfig
from .units import format_duration, format_size, parse_size


def _cmd_simulate_reads(args: argparse.Namespace) -> int:
    from .seq.simulate import ReadSimulator, simulate_genome

    genome = simulate_genome(args.genome_length, seed=args.seed,
                             repeat_fraction=args.repeat_fraction)
    simulator = ReadSimulator(genome=genome, read_length=args.read_length,
                              coverage=args.coverage, error_rate=args.error_rate,
                              seed=args.seed + 1)
    count = simulator.to_fastq(args.output)
    if args.genome_out:
        from .seq.alphabet import decode
        from .seq.fastq import write_fasta

        write_fasta(args.genome_out, [("reference", decode(genome))])
    print(f"wrote {count} reads of length {args.read_length} to {args.output}")
    return 0


def _cmd_assemble(args: argparse.Namespace) -> int:
    from .core import Assembler

    memory = MemoryConfig(parse_size(args.host_mem), parse_size(args.device_mem))
    extra = {} if args.workers is None else {"workers": args.workers}
    if args.backend is not None:
        extra["executor_backend"] = args.backend
    if args.trace:
        extra["trace"] = args.trace
    config = AssemblyConfig(min_overlap=args.min_overlap, memory=memory,
                            device_name=args.device, fingerprint_lanes=args.lanes,
                            **extra)
    result = Assembler(config).assemble(args.reads, workdir=args.workdir,
                                        resume=args.resume, gfa_path=args.gfa)
    print(result.summary())
    if args.trace:
        print(f"wrote span trace to {args.trace} "
              f"(load trace.json at chrome://tracing or ui.perfetto.dev)")
    if args.output:
        written = result.write_fasta(args.output, min_length=args.min_contig)
        print(f"wrote {written} contigs to {args.output}")
    return 0


def _cmd_correct_reads(args: argparse.Namespace) -> int:
    from .seq.correction import correct_and_filter
    from .seq.fastq import fastq_read_batches, write_fastq
    from .seq.alphabet import decode
    from .seq.records import ReadBatch
    import numpy as np

    batches = list(fastq_read_batches(args.reads, batch_reads=1 << 30))
    batch = batches[0] if len(batches) == 1 else ReadBatch(
        np.concatenate([b.codes for b in batches]))
    filtered, report, dropped = correct_and_filter(
        batch, k=args.k, solid_threshold=args.solid_threshold)
    quality = "I" * filtered.read_length

    def records():
        for index, row in enumerate(filtered.codes):
            yield f"corrected.{index}", decode(row), quality

    write_fastq(args.output, records())
    print(f"corrected {report.bases_corrected} bases in "
          f"{report.reads_changed}/{report.reads_scanned} reads "
          f"(k={report.k}, solid>={report.solid_threshold}); "
          f"dropped {dropped} uncorrectable reads")
    print(f"wrote {filtered.n_reads} reads to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .seq.fastq import read_fasta
    from .seq.stats import assembly_stats

    lengths = [len(seq) for _, seq in read_fasta(args.fasta)]
    for key, value in assembly_stats(lengths).items():
        print(f"{key}: {value}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .seq.datasets import active_scale, dataset_registry

    scale = args.scale if args.scale else active_scale()
    print(f"scale factor: {scale:g}")
    header = f"{'name':<15}{'paper':<11}{'len':>4}{'l_min':>6}{'paper reads':>15}" \
             f"{'paper size':>12}{'scaled reads':>14}"
    print(header)
    for spec in dataset_registry().values():
        print(f"{spec.name:<15}{spec.paper_name:<11}{spec.read_length:>4}"
              f"{spec.min_overlap:>6}{spec.paper.reads:>15,}"
              f"{format_size(spec.paper.size_bytes):>12}"
              f"{spec.scaled_reads(scale):>14,}")
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from .distributed import DistributedAssembler

    memory = MemoryConfig(parse_size(args.host_mem), parse_size(args.device_mem))
    config = AssemblyConfig(min_overlap=args.min_overlap, memory=memory,
                            device_name=args.device, trace=args.trace,
                            heartbeat_interval=args.heartbeat_interval,
                            node_timeout=args.node_timeout,
                            node_restarts=args.node_restarts,
                            allow_degraded=not args.no_degraded,
                            chunk_checkpoint_every=args.chunk_checkpoint_every,
                            speculation_threshold=args.speculation_threshold,
                            allow_join=args.allow_join or bool(args.join_at))
    source = args.reads
    if not str(source).endswith(".lsgr"):
        # The simulated cluster's shared input store is packed; convert first.
        import tempfile
        from .seq.fastq import fastq_read_batches
        from .seq.packing import PackedReadStore

        packed = tempfile.NamedTemporaryFile(suffix=".lsgr", delete=False).name
        writer = None
        for batch in fastq_read_batches(source, batch_reads=65536,
                                        on_invalid="mask"):
            if writer is None:
                writer = PackedReadStore.create(packed, batch.read_length)
            writer.append_batch(batch)
        writer.close()
        source = packed
    joins = tuple(args.join_at or ())
    result = DistributedAssembler(config, args.nodes,
                                  joins=joins).assemble(source)
    print(f"assembled on {args.nodes} simulated nodes: "
          f"{result.n_reads:,} reads -> {result.contigs.n_contigs} contigs "
          f"(N50 {result.stats()['n50']})")
    for phase, seconds in result.phase_seconds.items():
        print(f"  {phase:<9} {format_duration(seconds)}")
    print(f"  total     {format_duration(result.total_seconds)} (modeled)")
    if result.degraded is not None:
        # Degraded completion is a successful exit: the survivors finished
        # and the report says exactly what the output is missing.
        print(result.degraded.summary())
    if args.output:
        from .seq.alphabet import decode
        from .seq.fastq import write_fasta

        write_fasta(args.output,
                    ((f"contig.{i} length={len(c)}", decode(c))
                     for i, c in enumerate(result.contigs)))
        print(f"wrote contigs to {args.output}")
    if args.trace:
        print(f"wrote span trace to {args.trace}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .config import ServiceConfig
    from .service import AssemblyService, JobSpec

    weights = {}
    for item in args.weight or ():
        tenant, _, value = item.partition("=")
        try:
            weights[tenant] = float(value)
        except ValueError:
            raise SystemExit(f"bad --weight {item!r}; expected TENANT=FLOAT")
    memory = MemoryConfig(parse_size(args.host_mem), parse_size(args.device_mem))
    job_config = AssemblyConfig(min_overlap=args.min_overlap, memory=memory)
    specs = []
    for round_index in range(args.rounds):
        for index, item in enumerate(args.jobs):
            tenant, sep, path = item.partition(":")
            if not sep:
                tenant, path = "default", item
            specs.append(JobSpec(f"job{len(specs):03d}", tenant, path,
                                 job_config, deadline_s=args.deadline))
    service = AssemblyService(ServiceConfig(
        max_parallel=args.max_parallel,
        host_budget_bytes=parse_size(args.host_budget),
        device_budget_bytes=parse_size(args.device_budget),
        cache_dir=args.cache_dir,
        cache_bytes=parse_size(args.cache_bytes),
        batch_max_bytes=parse_size(args.batch_max_bytes),
        batch_max_jobs=args.batch_max_jobs,
        tenant_weights=weights,
        workdir=args.workdir or "",
        job_max_attempts=args.job_max_attempts,
        job_retry_backoff_s=args.job_retry_backoff,
        max_queued=args.max_queued,
    ))
    report = service.run_jobs(specs)
    print(report.summary())
    for outcome in report.outcomes:
        if not outcome.ok:
            print(f"  {outcome.spec.job_id} ({outcome.spec.tenant}) "
                  f"{outcome.status.upper()}: {outcome.error}")
    # Exit codes grade the failure: 2 = poison jobs were quarantined (an
    # operator should look at the error chains), 1 = other failures or
    # service-interrupted jobs, 0 = everything completed.
    if report.n_quarantined:
        return 2
    if report.n_done < len(report.outcomes):
        return 1
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .model import model_phase_seconds
    from .model.workload import Workload
    from .seq.datasets import get_dataset

    memory = MemoryConfig.preset(args.memory)
    workload = Workload.from_spec(get_dataset(args.dataset))
    phases = model_phase_seconds(workload, memory, args.device)
    print(f"modeled paper-scale phase times: {args.dataset} on "
          f"{args.device} / {args.memory}")
    for phase in ("load", "map", "sort", "reduce", "compress", "total"):
        print(f"  {phase:<9} {format_duration(phases[phase])}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .analysis import AsciiChart
    from .config import MemoryConfig as MC
    from .model.distributed import model_distributed_seconds
    from .model.paper_values import (FIG8_DEVICE_BLOCKS, FIG8_HOST_BLOCKS,
                                     FIG10_TOTAL_HOURS)
    from .model.sorting import model_partition_sort_seconds
    from .model.workload import Workload
    from .seq.datasets import get_dataset

    fig8 = AsciiChart("Fig. 8 (model) - partition sort seconds on K40",
                      [f"{b // 10**6}M" for b in FIG8_HOST_BLOCKS], y_log=True)
    for m_d in FIG8_DEVICE_BLOCKS:
        fig8.add_series(f"m_d={m_d // 10**6}M",
                        [model_partition_sort_seconds(b, m_d)
                         for b in FIG8_HOST_BLOCKS])
    fig9 = AsciiChart("Fig. 9 (model) - sort seconds by GPU, m_d = 20M",
                      [f"{b // 10**6}M" for b in FIG8_HOST_BLOCKS], y_log=True)
    for gpu in ("K40", "P40", "P100", "V100"):
        fig9.add_series(gpu, [model_partition_sort_seconds(b, 20_000_000, gpu)
                              for b in FIG8_HOST_BLOCKS])
    workload = Workload.from_spec(get_dataset("hgenome_sim"))
    nodes = (1, 2, 4, 8)
    fig10 = AsciiChart("Fig. 10 - H.Genome total hours vs nodes",
                       [str(n) for n in nodes])
    fig10.add_series("model", [
        model_distributed_seconds(workload, MC.preset("supermic"), "K20X",
                                  n)["total"] / 3600 for n in nodes])
    fig10.add_series("paper", [FIG10_TOTAL_HOURS[n] for n in nodes])
    for chart in (fig8, fig9, fig10):
        print(chart.render())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="lasagna",
        description="LaSAGNA reproduction: semi-streaming string-graph assembly")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate-reads", help="generate a synthetic dataset")
    sim.add_argument("--genome-length", type=int, default=50_000)
    sim.add_argument("--read-length", type=int, default=100)
    sim.add_argument("--coverage", type=float, default=30.0)
    sim.add_argument("--error-rate", type=float, default=0.0)
    sim.add_argument("--repeat-fraction", type=float, default=0.0)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("-o", "--output", required=True)
    sim.add_argument("--genome-out", help="also write the reference FASTA")
    sim.set_defaults(func=_cmd_simulate_reads)

    asm = sub.add_parser("assemble", help="assemble a FASTQ or packed read file")
    asm.add_argument("reads")
    asm.add_argument("--min-overlap", type=int, required=True)
    asm.add_argument("-o", "--output", help="contig FASTA path")
    asm.add_argument("--min-contig", type=int, default=0)
    asm.add_argument("--host-mem", default="1 GB")
    asm.add_argument("--device-mem", default="96 MB")
    asm.add_argument("--device", default="K40")
    asm.add_argument("--lanes", type=int, default=1, choices=(1, 2))
    asm.add_argument("--workers", type=int, default=None,
                     help="pipeline worker count (1=serial, 0=auto; "
                          "default: REPRO_WORKERS or 1)")
    asm.add_argument("--backend", default=None,
                     choices=("auto", "serial", "threads", "processes"),
                     help="executor backend (auto picks processes when "
                          "workers > 1; default: REPRO_BACKEND or auto)")
    asm.add_argument("--trace", metavar="PATH", default="",
                     help="dump a span trace (JSONL + Perfetto JSON) into "
                          "this directory")
    asm.add_argument("--workdir")
    asm.add_argument("--resume", action="store_true",
                     help="continue a prior interrupted run (needs --workdir)")
    asm.add_argument("--gfa", help="also export the string graph as GFA 1.0")
    asm.set_defaults(func=_cmd_assemble)

    correct = sub.add_parser("correct-reads",
                             help="k-mer-spectrum error correction + filter")
    correct.add_argument("reads")
    correct.add_argument("-o", "--output", required=True)
    correct.add_argument("--k", type=int, default=17)
    correct.add_argument("--solid-threshold", type=int, default=0)
    correct.set_defaults(func=_cmd_correct_reads)

    stats = sub.add_parser("stats", help="contig statistics of a FASTA")
    stats.add_argument("fasta")
    stats.set_defaults(func=_cmd_stats)

    datasets = sub.add_parser("datasets", help="list the Table I analog registry")
    datasets.add_argument("--scale", type=float, default=0.0)
    datasets.set_defaults(func=_cmd_datasets)

    distributed = sub.add_parser("distributed",
                                 help="assemble on a simulated multi-node cluster")
    distributed.add_argument("reads")
    distributed.add_argument("--nodes", type=int, default=4)
    distributed.add_argument("--min-overlap", type=int, required=True)
    distributed.add_argument("-o", "--output")
    distributed.add_argument("--host-mem", default="1 GB")
    distributed.add_argument("--device-mem", default="96 MB")
    distributed.add_argument("--device", default="K20X")
    distributed.add_argument("--heartbeat-interval", type=float, default=0.25,
                             metavar="S",
                             help="simulated seconds between node heartbeats")
    distributed.add_argument("--node-timeout", type=float, default=1.0,
                             metavar="S",
                             help="simulated seconds without a heartbeat "
                                  "before a node is declared dead")
    distributed.add_argument("--node-restarts", type=int, default=1,
                             metavar="N",
                             help="restarts granted per node before it is "
                                  "permanently lost")
    distributed.add_argument("--no-degraded", action="store_true",
                             help="fail the run instead of completing in "
                                  "degraded mode when partitions are lost")
    distributed.add_argument("--chunk-checkpoint-every", type=int,
                             default=4096, metavar="N",
                             help="records of reduce progress per durable "
                                  "chunk checkpoint (0 disables)")
    distributed.add_argument("--speculation-threshold", type=float,
                             default=0.0, metavar="S",
                             help="simulated heartbeat-silence before a "
                                  "backup re-executes a suspect's reduce "
                                  "work (0 disables; must be >= the "
                                  "heartbeat interval)")
    distributed.add_argument("--allow-join", action="store_true",
                             help="accept nodes joining the cluster mid-run")
    distributed.add_argument("--join-at", type=int, action="append",
                             default=None, metavar="HOP",
                             help="add one node after this many reduce "
                                  "token hops (repeatable; implies "
                                  "--allow-join semantics must be enabled)")
    distributed.add_argument("--trace", metavar="PATH", default="",
                             help="dump a cluster-wide span trace (one track "
                                  "per node) into this directory")
    distributed.set_defaults(func=_cmd_distributed)

    serve = sub.add_parser(
        "serve", help="run a multi-tenant batch of assembly jobs")
    serve.add_argument("jobs", nargs="+", metavar="[TENANT:]READS",
                       help="one job per operand; optional tenant prefix "
                            "(default tenant: 'default')")
    serve.add_argument("--min-overlap", type=int, required=True)
    serve.add_argument("--rounds", type=int, default=1,
                       help="submit the whole job list this many times "
                            "(repeats exercise the cache)")
    serve.add_argument("--max-parallel", type=int, default=1,
                       help="batches executing concurrently (1 = "
                            "deterministic fair order)")
    serve.add_argument("--host-mem", default="1 GB",
                       help="per-job host budget (= admission demand)")
    serve.add_argument("--device-mem", default="96 MB",
                       help="per-job device budget (= admission demand)")
    serve.add_argument("--host-budget", default="4 GB",
                       help="shared host budget admission control enforces")
    serve.add_argument("--device-budget", default="512 MB",
                       help="shared device budget admission control enforces")
    serve.add_argument("--cache-dir", default="",
                       help="content-addressed artifact cache directory "
                            "(empty = caching off)")
    serve.add_argument("--cache-bytes", default="256 MB",
                       help="cache capacity (LRU eviction past it)")
    serve.add_argument("--batch-max-bytes", default="1 MB",
                       help="inputs at most this large coalesce into "
                            "batches (0 = batching off)")
    serve.add_argument("--batch-max-jobs", type=int, default=4)
    serve.add_argument("--weight", action="append", metavar="TENANT=W",
                       help="fair-share weight for a tenant (repeatable; "
                            "default 1.0)")
    serve.add_argument("--workdir",
                       help="root for per-job workdirs (default: temp)")
    serve.add_argument("--job-max-attempts", type=int, default=1,
                       help="executions a failing job may burn before it is "
                            "quarantined (1 = no retries)")
    serve.add_argument("--job-retry-backoff", type=float, default=0.05,
                       metavar="SECONDS",
                       help="base simulated-seconds backoff before a retry "
                            "(seeded-jitter exponential schedule)")
    serve.add_argument("--deadline", type=float, default=0.0,
                       metavar="SECONDS",
                       help="per-job simulated-clock deadline; jobs past it "
                            "time out at the next phase boundary (0 = none)")
    serve.add_argument("--max-queued", type=int, default=0,
                       help="queue-depth bound; excess jobs are shed with an "
                            "admission_shed outcome (0 = unbounded)")
    serve.set_defaults(func=_cmd_serve)

    model = sub.add_parser("model", help="analytic paper-scale phase times")
    model.add_argument("--dataset", default="hgenome_sim")
    model.add_argument("--memory", default="qb2", choices=("qb2", "supermic"))
    model.add_argument("--device", default="K40")
    model.set_defaults(func=_cmd_model)

    figures = sub.add_parser("figures",
                             help="render the paper's figures from the model")
    figures.set_defaults(func=_cmd_figures)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""An FM-index over a multi-read text, with batched backward search.

The index covers every oriented read (forward and reverse complement), each
terminated by a separator that sorts below all bases — the multi-string BWT
layout SGA's overlap stage relies on. ``backward_extend`` advances many
pattern intervals at once (one gather per step), so an entire read set's
suffixes are searched in ``read_length`` vectorized rounds.

Rank structures are kept as full cumulative tables (O(n·σ) ints); real SGA
uses a sampled/compressed representation with the same semantics — the
difference is modeled, not implemented, see
:data:`repro.baselines.sga.SGA_MODEL_BYTES_PER_BASE`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .suffix_array import bwt_from_sa, suffix_array

#: Alphabet: separator (0) + four bases (codes shifted by +1).
SEPARATOR = 0
ALPHABET = 5


class FMIndex:
    """FM-index over the concatenation ``read₀ · SEP · read₁ · SEP · …``."""

    def __init__(self, oriented_codes: np.ndarray):
        oriented = np.asarray(oriented_codes, dtype=np.uint8)
        if oriented.ndim != 2:
            raise ConfigError("FMIndex expects a (n_vertices, L) oriented code matrix")
        self.n_strings, self.string_length = oriented.shape
        stride = self.string_length + 1
        text = np.zeros(self.n_strings * stride, dtype=np.uint8)
        shaped = text.reshape(self.n_strings, stride)
        shaped[:, :self.string_length] = oriented + 1
        self.text = text
        self.sa = suffix_array(text)
        self.bwt = bwt_from_sa(text, self.sa)
        counts = np.bincount(text, minlength=ALPHABET)
        self.c_array = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        # occ[i, c] = occurrences of c in bwt[:i]  (int32: texts stay < 2^31)
        one_hot = self.bwt[:, None] == np.arange(ALPHABET, dtype=np.uint8)[None, :]
        self.occ = np.zeros((text.shape[0] + 1, ALPHABET), dtype=np.int32)
        self.occ[1:] = np.cumsum(one_hot, axis=0, dtype=np.int32)
        # Read-start bookkeeping: which SA entries are whole strings, and the
        # exclusive rank of starts up to each SA position.
        is_start = (self.sa % stride) == 0
        self.start_rank = np.concatenate(([0], np.cumsum(is_start))).astype(np.int64)
        self.starts_by_sa_order = (self.sa[is_start] // stride).astype(np.int64)

    @property
    def n_text(self) -> int:
        """Length of the indexed text."""
        return self.text.shape[0]

    @property
    def nbytes(self) -> int:
        """Actual memory held by the index structures."""
        return (self.text.nbytes + self.sa.nbytes + self.bwt.nbytes
                + self.occ.nbytes + self.start_rank.nbytes
                + self.starts_by_sa_order.nbytes)

    # -- search -------------------------------------------------------------

    def whole_range(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """``n`` fresh (lo, hi) intervals spanning the entire SA."""
        return (np.zeros(n, dtype=np.int64),
                np.full(n, self.n_text, dtype=np.int64))

    def backward_extend(self, lo: np.ndarray, hi: np.ndarray, symbols: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Prepend one symbol to each pattern; returns updated intervals.

        ``symbols`` are text-alphabet values (base code + 1). Empty intervals
        stay empty.
        """
        symbols = np.asarray(symbols, dtype=np.int64)
        new_lo = self.c_array[symbols] + self.occ[lo, symbols]
        new_hi = self.c_array[symbols] + self.occ[hi, symbols]
        return new_lo, new_hi

    def count_string_starts(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """How many whole-string (read-prefix) entries each interval holds."""
        return self.start_rank[hi] - self.start_rank[lo]

    def string_ids_in_interval(self, lo: int, hi: int) -> np.ndarray:
        """Vertex ids of the whole strings inside one SA interval."""
        return self.starts_by_sa_order[self.start_rank[lo]:self.start_rank[hi]]

    def locate(self, lo: int, hi: int) -> np.ndarray:
        """Text positions of one interval's suffixes (debug/tests)."""
        return self.sa[lo:hi]

"""The SGA-analog baseline used by the Table VI comparison.

SGA (Simpson & Durbin 2012) is the paper's CPU comparator: the only string
graph assembler that handles large datasets on one node, via a compressed
FM-index (``ropebwt``) and index-driven exact overlap detection. This
module reproduces that *pipeline shape* from scratch:

* **preprocess** — encode reads and their reverse complements,
* **index** — suffix array → BWT → FM rank structures
  (:class:`~repro.baselines.fm_index.FMIndex`),
* **overlap** — for every oriented read, one backward-search sweep over its
  suffix finds all reads whose prefix matches exactly, for every overlap
  length ≥ ``l_min`` at once,
* **assemble** — the same greedy graph/contig machinery as the pipeline
  (not part of the timed Table VI phases, as in the paper).

Memory: our rank structures are uncompressed, so the *budget check* uses a
modeled footprint of :data:`SGA_MODEL_BYTES_PER_BASE` per input base — a
ropebwt-class figure fitted to the paper's observed behaviour (SGA fits
H.Genome at 128 GB but OOMs at 64 GB, and fits Parakeet at 64 GB). With
that constant, the scaled datasets reproduce Table VI's OOM pattern at any
scale factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import HostMemoryError
from ..graph import GreedyStringGraph, extract_paths, spell_contigs
from ..graph.contigs import ContigSet
from ..seq.records import ReadBatch
from ..seq.stats import assembly_stats
from .fm_index import FMIndex

#: Modeled bytes of index per input base (ropebwt-class compressed FM index).
SGA_MODEL_BYTES_PER_BASE = 0.55


@dataclass
class SGAResult:
    """Output of one SGA-analog run."""

    n_reads: int
    read_length: int
    n_overlaps: int
    contigs: ContigSet
    phase_seconds: dict[str, float] = field(default_factory=dict)
    modeled_index_bytes: int = 0
    measured_index_bytes: int = 0

    @property
    def overlap_pipeline_seconds(self) -> float:
        """preprocess + index + overlap (the phases Table VI times)."""
        return sum(self.phase_seconds.get(name, 0.0)
                   for name in ("preprocess", "index", "overlap"))

    def stats(self) -> dict[str, int | float]:
        """Assembly summary statistics."""
        return assembly_stats(self.contigs.lengths())


class SGAAssembler:
    """From-scratch SGA-style exact-overlap assembler.

    ``host_budget_bytes`` (if given) enforces the modeled index footprint —
    exceeding it raises :class:`~repro.errors.HostMemoryError`, mirroring
    the paper's "OOM" Table VI cell.
    """

    def __init__(self, min_overlap: int, *, host_budget_bytes: int | None = None):
        self.min_overlap = min_overlap
        self.host_budget_bytes = host_budget_bytes

    def modeled_index_bytes(self, n_reads: int, read_length: int) -> int:
        """Modeled (ropebwt-class) index footprint for a dataset."""
        return int(n_reads * read_length * SGA_MODEL_BYTES_PER_BASE)

    def assemble(self, batch: ReadBatch, *, dedupe_contigs: bool = True) -> SGAResult:
        """Run the full SGA-analog pipeline over an in-memory read set."""
        timings: dict[str, float] = {}
        modeled = self.modeled_index_bytes(batch.n_reads, batch.read_length)
        if self.host_budget_bytes is not None and modeled > self.host_budget_bytes:
            raise HostMemoryError(
                f"SGA index ({modeled} modeled bytes) exceeds the host budget "
                f"({self.host_budget_bytes} bytes)")

        start = time.perf_counter()
        n, length = batch.n_reads, batch.read_length
        oriented = np.empty((2 * n, length), dtype=np.uint8)
        oriented[0::2] = batch.codes
        oriented[1::2] = batch.reverse_complements().codes
        timings["preprocess"] = time.perf_counter() - start

        start = time.perf_counter()
        index = FMIndex(oriented)
        timings["index"] = time.perf_counter() - start

        start = time.perf_counter()
        candidates_by_length = self._find_overlaps(index, oriented)
        n_overlaps = sum(src.shape[0] for src, _ in candidates_by_length.values())
        timings["overlap"] = time.perf_counter() - start

        start = time.perf_counter()
        graph = GreedyStringGraph(n, length)
        for overlap_length in sorted(candidates_by_length, reverse=True):
            sources, targets = candidates_by_length[overlap_length]
            graph.add_candidates(sources, targets, overlap_length)
        paths = extract_paths(graph)
        if dedupe_contigs:
            paths = paths.deduplicated()
        contigs = spell_contigs(paths, oriented)
        timings["assemble"] = time.perf_counter() - start

        return SGAResult(
            n_reads=n,
            read_length=length,
            n_overlaps=n_overlaps,
            contigs=contigs,
            phase_seconds=timings,
            modeled_index_bytes=modeled,
            measured_index_bytes=index.nbytes,
        )

    def _find_overlaps(self, index: FMIndex, oriented: np.ndarray,
                       ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Backward-search every oriented read's suffixes against the index.

        Returns ``{overlap_length: (suffix_vertices, prefix_vertices)}`` in
        within-length stream order (query vertex ascending) — the same
        deterministic candidate order the pipeline's reduce phase produces.
        """
        n_vertices, length = oriented.shape
        lo, hi = index.whole_range(n_vertices)
        vertex_ids = np.arange(n_vertices, dtype=np.int64)
        found: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for step in range(length):
            symbols = oriented[:, length - 1 - step].astype(np.int64) + 1
            lo, hi = index.backward_extend(lo, hi, symbols)
            overlap_length = step + 1
            if not self.min_overlap <= overlap_length < length:
                continue
            counts = index.count_string_starts(lo, hi)
            rows = np.nonzero(counts > 0)[0]
            if rows.size == 0:
                continue
            row_counts = counts[rows]
            sources = np.repeat(vertex_ids[rows], row_counts)
            range_starts = np.repeat(index.start_rank[lo[rows]], row_counts)
            base = np.repeat(np.cumsum(row_counts) - row_counts, row_counts)
            targets = index.starts_by_sa_order[
                range_starts + np.arange(sources.shape[0]) - base]
            keep = (sources >> 1) != (targets >> 1)
            found[overlap_length] = (sources[keep], targets[keep])
        return found

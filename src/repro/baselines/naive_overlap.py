"""Exact all-pair suffix–prefix overlaps, the ground-truth oracle.

For every oriented read (vertex) this hashes the *actual bytes* of each
prefix of length ``l ∈ [l_min, L)`` and probes each suffix against that
table — the textbook O(n·L²) construction the paper's §III opens with
("in theory, one can generate all suffixes and prefixes…"). It exists to
validate the fingerprint pipeline: any candidate edge the pipeline finds
that this module does not is a fingerprint false positive.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import ConfigError
from ..graph import GreedyStringGraph
from ..seq.records import ReadBatch


def _oriented_codes(batch: ReadBatch) -> np.ndarray:
    """(2n, L) matrix: row ``2i`` read ``i`` forward, row ``2i+1`` its RC."""
    n, length = batch.codes.shape
    out = np.empty((2 * n, length), dtype=np.uint8)
    out[0::2] = batch.codes
    out[1::2] = batch.reverse_complements().codes
    return out


def exact_overlaps(batch: ReadBatch, min_overlap: int,
                   ) -> list[tuple[int, int, int]]:
    """All exact overlaps as ``(suffix_vertex, prefix_vertex, length)``.

    Overlap lengths span ``[min_overlap, L)``; same-read pairs are excluded
    (as the pipeline excludes them). The result is sorted by descending
    length, then suffix vertex, then prefix vertex — the deterministic order
    the reduce phase feeds candidates to the greedy rule.
    """
    length = batch.read_length
    if not 1 <= min_overlap < length:
        raise ConfigError("min_overlap must be in [1, read_length)")
    oriented = _oriented_codes(batch)
    n_vertices = oriented.shape[0]
    overlaps: list[tuple[int, int, int]] = []
    for l in range(length - 1, min_overlap - 1, -1):
        prefix_table: dict[bytes, list[int]] = defaultdict(list)
        for vertex in range(n_vertices):
            prefix_table[oriented[vertex, :l].tobytes()].append(vertex)
        for vertex in range(n_vertices):
            suffix = oriented[vertex, length - l:].tobytes()
            for target in prefix_table.get(suffix, ()):
                if (vertex >> 1) != (target >> 1):
                    overlaps.append((vertex, target, l))
    return overlaps


def pipeline_order_overlaps(batch: ReadBatch, min_overlap: int, scheme,
                            ) -> list[tuple[int, int, int]]:
    """Exact overlaps reordered exactly as the pipeline offers them.

    The reduce phase streams each length partition sorted by fingerprint
    and canonicalizes ties by vertex id, so within a length the greedy rule
    sees candidates in ``(fingerprint key, suffix vertex, prefix vertex)``
    order — not plain vertex order. ``scheme`` must be the run's
    :class:`~repro.fingerprint.FingerprintScheme` (same lanes and seed), so
    the oracle and the pipeline agree on the keys.
    """
    overlaps = exact_overlaps(batch, min_overlap)
    read_length = batch.read_length
    _, suffix_keys = scheme.key_matrices(_oriented_codes(batch))
    lead = suffix_keys[0]

    def rank(item: tuple[int, int, int]) -> tuple[int, int, int, int]:
        suffix_vertex, prefix_vertex, l = item
        return (-l, int(lead[suffix_vertex, read_length - l]),
                suffix_vertex, prefix_vertex)

    return sorted(overlaps, key=rank)


def greedy_graph_pipeline_order(batch: ReadBatch, min_overlap: int, scheme,
                                ) -> GreedyStringGraph:
    """Reference greedy graph with candidates in pipeline stream order.

    This is the differential oracle's reference: any pipeline configuration
    (fanout, block sizes, node count) must produce exactly this graph.
    """
    return greedy_graph_from_overlaps(
        pipeline_order_overlaps(batch, min_overlap, scheme),
        batch.n_reads, batch.read_length)


def greedy_graph_from_overlaps(overlaps: list[tuple[int, int, int]],
                               n_reads: int, read_length: int) -> GreedyStringGraph:
    """Feed an exact overlap list through the same greedy rule.

    ``overlaps`` must already be in descending-length order (as
    :func:`exact_overlaps` returns). The result is the reference graph the
    pipeline's graph is compared against.
    """
    graph = GreedyStringGraph(n_reads, read_length)
    index = 0
    while index < len(overlaps):
        l = overlaps[index][2]
        stop = index
        while stop < len(overlaps) and overlaps[stop][2] == l:
            stop += 1
        chunk = overlaps[index:stop]
        graph.add_candidates(np.array([c[0] for c in chunk], dtype=np.int64),
                             np.array([c[1] for c in chunk], dtype=np.int64), l)
        index = stop
    return graph

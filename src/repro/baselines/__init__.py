"""Baselines and reference implementations.

* :mod:`repro.baselines.naive_overlap` — exact all-pair suffix–prefix
  overlap enumeration by hashing the actual strings. Quadratic-ish and
  small-scale only, but *exact*: it is the ground truth the fingerprint
  pipeline is validated against (zero-false-positive checks).
* :mod:`repro.baselines.suffix_array` / :mod:`repro.baselines.fm_index` —
  the compressed-index substrate (prefix-doubling SA → BWT → rank
  structures) for the SGA-style baseline.
* :mod:`repro.baselines.sga` — an SGA-analog assembler: FM-index backward
  search finds exact overlaps ≥ ``l_min``; the same greedy graph and contig
  machinery produce its assembly. Used by the Table VI comparison.
* :mod:`repro.baselines.debruijn` — a k-mer (de Bruijn) assembler,
  demonstrating the repeat-collapse weakness that motivates string graphs
  (paper §II.A.1).
"""

from .naive_overlap import exact_overlaps, greedy_graph_from_overlaps
from .suffix_array import suffix_array
from .fm_index import FMIndex
from .sga import SGAAssembler, SGAResult
from .debruijn import DeBruijnAssembler

__all__ = [
    "exact_overlaps",
    "greedy_graph_from_overlaps",
    "suffix_array",
    "FMIndex",
    "SGAAssembler",
    "SGAResult",
    "DeBruijnAssembler",
]

"""Suffix-array construction by prefix doubling (Manber–Myers), vectorized.

O(n log² n) with every round a numpy ``lexsort`` over (rank, rank-at-k)
pairs. This is the index substrate for the SGA-analog baseline: suffix
array → BWT → FM rank structures.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


def suffix_array(text: np.ndarray) -> np.ndarray:
    """Suffix array of an integer text (any non-negative alphabet).

    Returns ``sa`` with ``sa[i]`` = start of the ``i``-th smallest suffix.
    Ties between a suffix and its extension are broken by treating
    out-of-range positions as rank −1 (i.e. an implicit terminator smaller
    than every symbol), the standard convention.
    """
    text = np.asarray(text)
    if text.ndim != 1:
        raise ConfigError("suffix_array expects a 1-D integer text")
    n = text.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rank = np.asarray(np.unique(text, return_inverse=True)[1], dtype=np.int64)
    k = 1
    positions = np.arange(n, dtype=np.int64)
    while True:
        rank_k = np.full(n, -1, dtype=np.int64)
        if k < n:
            rank_k[:n - k] = rank[k:]
        order = np.lexsort((rank_k, rank))
        # Recompute ranks: new group starts where either component differs.
        boundary = np.ones(n, dtype=bool)
        boundary[1:] = (rank[order][1:] != rank[order][:-1]) | \
                       (rank_k[order][1:] != rank_k[order][:-1])
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[order] = np.cumsum(boundary) - 1
        rank = new_rank
        if rank[order[-1]] == n - 1:
            return positions[order]
        k *= 2


def bwt_from_sa(text: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Burrows–Wheeler transform: the symbol preceding each sorted suffix.

    Position 0 wraps to the final symbol (texts end in a unique sentinel in
    practice, making the wrap unambiguous).
    """
    text = np.asarray(text)
    return text[(np.asarray(sa, dtype=np.int64) - 1) % max(1, text.shape[0])]

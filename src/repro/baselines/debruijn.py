"""A greedy-unitig de Bruijn assembler (the contrast baseline).

De Bruijn assemblers collapse every genomic repeat longer than ``k`` into a
single graph node, breaking contigs there (paper §II.A.1: "prone to
collapsing repeated regions … causing information loss"). This small
assembler exists to demonstrate that motivation: on a genome with implanted
repeats longer than ``k`` but shorter than the read length, its N50 drops
sharply below the string-graph assembler's
(``examples/repeat_collapse.py``, ``benchmarks/bench_ablation_greedy.py``).

Nodes are ``(k−1)``-mers, edges are observed ``k``-mers; maximal
unambiguous paths (unitigs) are spelled as contigs. k-mers are encoded
2 bits/base into ``uint64`` (``k ≤ 32``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..seq.records import ReadBatch
from ..seq.stats import assembly_stats


def encode_kmers(codes: np.ndarray, k: int) -> np.ndarray:
    """All k-mers of every row of a code matrix, 2-bit packed into uint64."""
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.ndim != 2:
        raise ConfigError("encode_kmers expects a (n_reads, L) matrix")
    n, length = codes.shape
    if not 2 <= k <= min(32, length):
        raise ConfigError(f"k must be in [2, min(32, read_length)], got {k}")
    width = length - k + 1
    kmers = np.zeros((n, width), dtype=np.uint64)
    for j in range(k):
        kmers = (kmers << np.uint64(2)) | codes[:, j:j + width]
    return kmers.ravel()


@dataclass(frozen=True)
class DeBruijnResult:
    """Contigs of one de Bruijn assembly (as 2-bit code arrays)."""

    k: int
    contigs: list[np.ndarray]
    n_kmers: int
    n_nodes: int

    def lengths(self) -> np.ndarray:
        """Per-contig lengths."""
        return np.array([c.shape[0] for c in self.contigs], dtype=np.int64)

    def stats(self) -> dict[str, int | float]:
        """Assembly summary statistics."""
        return assembly_stats(self.lengths())


class DeBruijnAssembler:
    """Build the bidirected-ish de Bruijn graph and spell unitigs."""

    def __init__(self, k: int, *, min_count: int = 1):
        if min_count < 1:
            raise ConfigError("min_count must be >= 1")
        self.k = k
        self.min_count = min_count

    def assemble(self, batch: ReadBatch, *, include_rc: bool = True) -> DeBruijnResult:
        """Assemble an in-memory read set into unitigs."""
        matrices = [batch.codes]
        if include_rc:
            matrices.append(batch.reverse_complements().codes)
        kmers = np.concatenate([encode_kmers(m, self.k) for m in matrices])
        unique, counts = np.unique(kmers, return_counts=True)
        unique = unique[counts >= self.min_count]
        n_kmers = unique.shape[0]

        mask = np.uint64((1 << (2 * (self.k - 1))) - 1)
        prefixes = unique >> np.uint64(2)
        suffixes = unique & mask
        nodes, node_index = np.unique(np.concatenate([prefixes, suffixes]),
                                      return_inverse=True)
        src = node_index[:n_kmers]
        dst = node_index[n_kmers:]
        out_degree = np.bincount(src, minlength=nodes.shape[0])
        in_degree = np.bincount(dst, minlength=nodes.shape[0])

        # edge_base[u] is followed only when out_degree[u] == 1 (then unique).
        edge_base = np.full(nodes.shape[0], -1, dtype=np.int64)
        edge_base[src] = np.arange(n_kmers)

        k = self.k

        def decode_node(node_id: int) -> np.ndarray:
            value = int(nodes[node_id])
            codes = np.empty(k - 1, dtype=np.uint8)
            for j in range(k - 2, -1, -1):
                codes[j] = value & 3
                value >>= 2
            return codes

        chain_interior = (in_degree == 1) & (out_degree == 1)
        edge_used = np.zeros(n_kmers, dtype=bool)

        def walk(edge: int) -> np.ndarray:
            """Spell one unitig starting from ``edge``; marks edges used."""
            bases = [decode_node(int(src[edge]))]
            current = edge
            while True:
                edge_used[current] = True
                bases.append(np.array([int(unique[current]) & 3], dtype=np.uint8))
                nxt_node = int(dst[current])
                if not chain_interior[nxt_node]:
                    break
                nxt_edge = int(edge_base[nxt_node])
                if nxt_edge < 0 or edge_used[nxt_edge]:
                    break
                current = nxt_edge
            return np.concatenate(bases)

        contigs: list[np.ndarray] = []
        # Seeds: edges whose source is not an in-1/out-1 chain interior.
        for edge in range(n_kmers):
            if not edge_used[edge] and not chain_interior[src[edge]]:
                contigs.append(walk(edge))
        # Isolated cycles (all interior): walk any remaining edge.
        for edge in range(n_kmers):
            if not edge_used[edge]:
                contigs.append(walk(edge))
        return DeBruijnResult(self.k, contigs, n_kmers, nodes.shape[0])

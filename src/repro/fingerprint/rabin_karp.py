"""Scalar Rabin–Karp reference implementation.

The polynomial convention throughout the library: the fingerprint of a
string ``s`` of length ``k`` under ``(radix σ, prime q)`` is

    f(s) = (s[0]·σ^(k-1) + s[1]·σ^(k-2) + … + s[k-1]) mod q

i.e. most-significant base first, so appending a base is
``f(s·c) = (f(s)·σ + c) mod q``. The batched scan kernels in
:mod:`repro.fingerprint.scan` must agree with these loops exactly — that is
the core correctness property the hypothesis tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .modmath import MODULUS_PRIMES, RADIX_PRIMES, check_params, place_values


@dataclass(frozen=True)
class HashSpec:
    """One Rabin–Karp hash lane: a radix and a prime modulus.

    Each instance memoizes its own place-value arrays (see
    :meth:`place_values`): the cache lives and dies with the scheme that
    owns the lane, so differently-parameterized schemes can never collide
    in a process-wide table and a discarded scheme's arrays are collected
    with it.
    """

    radix: int
    prime: int

    def __post_init__(self) -> None:
        check_params(self.radix, self.prime)
        # Not a dataclass field: the cache is identity state, excluded
        # from eq/hash/repr, installed past the frozen guard.
        object.__setattr__(self, "_place_cache", {})

    @staticmethod
    def lane(index: int) -> "HashSpec":
        """The ``index``-th standard lane from the parameter catalog."""
        return HashSpec(RADIX_PRIMES[index % len(RADIX_PRIMES)],
                        MODULUS_PRIMES[index % len(MODULUS_PRIMES)])

    def place_values(self, length: int) -> np.ndarray:
        """``σ^i mod q`` for ``i in [0, length)``, memoized on this spec.

        The array is computed once per length per instance and returned
        frozen. Benign under the pipelined thread workers: a race at worst
        computes the identical immutable array twice, and dict get/set are
        atomic under the GIL.
        """
        cached = self._place_cache.get(length)
        if cached is None:
            cached = place_values(self.radix, self.prime, length)
            self._place_cache[length] = cached
        return cached

    def fingerprint(self, codes: np.ndarray) -> int:
        """Fingerprint of a whole 1-D code array.

        Vectorized as ``Σ codes[i]·σ^(k-1-i) mod q``: every product of two
        residues stays below ``2^62``, and a cumulative sum of residues
        cannot reach ``2^64`` for any realistic read length, so the whole
        evaluation fits ``uint64`` exactly (see
        :func:`fingerprint_scalar`, the Horner-rule loop it must match).
        """
        codes = np.asarray(codes, dtype=np.uint64) % np.uint64(self.prime)
        length = codes.shape[0]
        if length == 0:
            return 0
        places = self.place_values(length)
        terms = (codes * places[::-1]) % np.uint64(self.prime)
        return int(terms.sum(dtype=np.uint64) % np.uint64(self.prime))

    def fingerprint_scalar(self, codes: np.ndarray) -> int:
        """Horner's-rule reference for :meth:`fingerprint` (tests only)."""
        value = 0
        for code in np.asarray(codes, dtype=np.uint64):
            value = (value * self.radix + int(code)) % self.prime
        return value


def naive_prefix_fingerprints(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """``out[i] = f(codes[:i+1])``, vectorized.

    ``f(codes[:i+1]) = σ^i · Σ_{j≤i} codes[j]·σ^(-j) mod q``: one modular
    cumulative sum against inverse place values, then a rescale by the
    forward place values. Must match
    :func:`naive_prefix_fingerprints_scalar` exactly.
    """
    q = np.uint64(spec.prime)
    codes = np.asarray(codes, dtype=np.uint64) % q
    length = codes.shape[0]
    if length == 0:
        return codes.copy()
    places = spec.place_values(length)
    # σ^(-j) = σ^(L-1-j) · σ^(-(L-1)): one scalar modular inverse turns the
    # reversed forward places into the inverse places.
    inv_top = np.uint64(pow(spec.radix, -(length - 1), spec.prime))
    inv_places = (places[::-1] * inv_top) % q
    sums = np.cumsum((codes * inv_places) % q, dtype=np.uint64) % q
    return (sums * places) % q


def naive_prefix_fingerprints_scalar(codes: np.ndarray,
                                     spec: HashSpec) -> np.ndarray:
    """Horner-evaluation reference for :func:`naive_prefix_fingerprints`."""
    codes = np.asarray(codes, dtype=np.uint64)
    out = np.empty(codes.shape[0], dtype=np.uint64)
    value = 0
    for i, code in enumerate(codes):
        value = (value * spec.radix + int(code)) % spec.prime
        out[i] = value
    return out


def naive_suffix_fingerprints(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """``out[i] = f(codes[i:])``, vectorized.

    ``f(codes[i:]) = Σ_{j≥i} codes[j]·σ^(L-1-j) mod q`` — a reversed
    modular cumulative sum of the fixed-place products. Must match
    :func:`naive_suffix_fingerprints_scalar` exactly.
    """
    q = np.uint64(spec.prime)
    codes = np.asarray(codes, dtype=np.uint64) % q
    length = codes.shape[0]
    if length == 0:
        return codes.copy()
    terms = (codes * spec.place_values(length)[::-1]) % q
    return np.cumsum(terms[::-1], dtype=np.uint64)[::-1] % q


def naive_suffix_fingerprints_scalar(codes: np.ndarray,
                                     spec: HashSpec) -> np.ndarray:
    """Per-suffix-evaluation reference for :func:`naive_suffix_fingerprints`."""
    codes = np.asarray(codes, dtype=np.uint64)
    length = codes.shape[0]
    out = np.empty(length, dtype=np.uint64)
    value = 0
    place = 1
    for i in range(length - 1, -1, -1):
        value = (value + int(codes[i]) * place) % spec.prime
        place = (place * spec.radix) % spec.prime
        out[i] = value
    return out

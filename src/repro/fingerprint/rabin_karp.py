"""Scalar Rabin–Karp reference implementation.

The polynomial convention throughout the library: the fingerprint of a
string ``s`` of length ``k`` under ``(radix σ, prime q)`` is

    f(s) = (s[0]·σ^(k-1) + s[1]·σ^(k-2) + … + s[k-1]) mod q

i.e. most-significant base first, so appending a base is
``f(s·c) = (f(s)·σ + c) mod q``. The batched scan kernels in
:mod:`repro.fingerprint.scan` must agree with these loops exactly — that is
the core correctness property the hypothesis tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .modmath import MODULUS_PRIMES, RADIX_PRIMES, check_params, place_values


@dataclass(frozen=True)
class HashSpec:
    """One Rabin–Karp hash lane: a radix and a prime modulus.

    Each instance memoizes its own place-value arrays (see
    :meth:`place_values`): the cache lives and dies with the scheme that
    owns the lane, so differently-parameterized schemes can never collide
    in a process-wide table and a discarded scheme's arrays are collected
    with it.
    """

    radix: int
    prime: int

    def __post_init__(self) -> None:
        check_params(self.radix, self.prime)
        # Not a dataclass field: the cache is identity state, excluded
        # from eq/hash/repr, installed past the frozen guard.
        object.__setattr__(self, "_place_cache", {})

    @staticmethod
    def lane(index: int) -> "HashSpec":
        """The ``index``-th standard lane from the parameter catalog."""
        return HashSpec(RADIX_PRIMES[index % len(RADIX_PRIMES)],
                        MODULUS_PRIMES[index % len(MODULUS_PRIMES)])

    def place_values(self, length: int) -> np.ndarray:
        """``σ^i mod q`` for ``i in [0, length)``, memoized on this spec.

        The array is computed once per length per instance and returned
        frozen. Benign under the pipelined thread workers: a race at worst
        computes the identical immutable array twice, and dict get/set are
        atomic under the GIL.
        """
        cached = self._place_cache.get(length)
        if cached is None:
            cached = place_values(self.radix, self.prime, length)
            self._place_cache[length] = cached
        return cached

    def fingerprint(self, codes: np.ndarray) -> int:
        """Fingerprint of a whole 1-D code array (Horner's rule)."""
        value = 0
        for code in np.asarray(codes, dtype=np.uint64):
            value = (value * self.radix + int(code)) % self.prime
        return value


def naive_prefix_fingerprints(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """``out[i] = f(codes[:i+1])`` by direct Horner evaluation."""
    codes = np.asarray(codes, dtype=np.uint64)
    out = np.empty(codes.shape[0], dtype=np.uint64)
    value = 0
    for i, code in enumerate(codes):
        value = (value * spec.radix + int(code)) % spec.prime
        out[i] = value
    return out


def naive_suffix_fingerprints(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """``out[i] = f(codes[i:])`` by direct evaluation of every suffix."""
    codes = np.asarray(codes, dtype=np.uint64)
    length = codes.shape[0]
    out = np.empty(length, dtype=np.uint64)
    value = 0
    place = 1
    for i in range(length - 1, -1, -1):
        value = (value + int(codes[i]) * place) % spec.prime
        place = (place * spec.radix) % spec.prime
        out[i] = value
    return out

"""Scalar Rabin–Karp reference implementation.

The polynomial convention throughout the library: the fingerprint of a
string ``s`` of length ``k`` under ``(radix σ, prime q)`` is

    f(s) = (s[0]·σ^(k-1) + s[1]·σ^(k-2) + … + s[k-1]) mod q

i.e. most-significant base first, so appending a base is
``f(s·c) = (f(s)·σ + c) mod q``. The batched scan kernels in
:mod:`repro.fingerprint.scan` must agree with these loops exactly — that is
the core correctness property the hypothesis tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .modmath import MODULUS_PRIMES, RADIX_PRIMES, check_params


@dataclass(frozen=True)
class HashSpec:
    """One Rabin–Karp hash lane: a radix and a prime modulus."""

    radix: int
    prime: int

    def __post_init__(self) -> None:
        check_params(self.radix, self.prime)

    @staticmethod
    def lane(index: int) -> "HashSpec":
        """The ``index``-th standard lane from the parameter catalog."""
        return HashSpec(RADIX_PRIMES[index % len(RADIX_PRIMES)],
                        MODULUS_PRIMES[index % len(MODULUS_PRIMES)])

    def fingerprint(self, codes: np.ndarray) -> int:
        """Fingerprint of a whole 1-D code array (Horner's rule)."""
        value = 0
        for code in np.asarray(codes, dtype=np.uint64):
            value = (value * self.radix + int(code)) % self.prime
        return value


def naive_prefix_fingerprints(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """``out[i] = f(codes[:i+1])`` by direct Horner evaluation."""
    codes = np.asarray(codes, dtype=np.uint64)
    out = np.empty(codes.shape[0], dtype=np.uint64)
    value = 0
    for i, code in enumerate(codes):
        value = (value * spec.radix + int(code)) % spec.prime
        out[i] = value
    return out


def naive_suffix_fingerprints(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """``out[i] = f(codes[i:])`` by direct evaluation of every suffix."""
    codes = np.asarray(codes, dtype=np.uint64)
    length = codes.shape[0]
    out = np.empty(length, dtype=np.uint64)
    value = 0
    place = 1
    for i in range(length - 1, -1, -1):
        value = (value + int(codes[i]) * place) % spec.prime
        place = (place * spec.radix) % spec.prime
        out[i] = value
    return out

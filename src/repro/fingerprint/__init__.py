"""Rabin–Karp fingerprint engine.

Computes, for every read (and its reverse complement), the fingerprints of
all of its prefixes and suffixes in one pass, using the paper's Hillis–Steele
scan formulation (Figs. 5–6):

* :mod:`repro.fingerprint.modmath` — modular arithmetic helpers and the
  radix/prime parameter catalog,
* :mod:`repro.fingerprint.rabin_karp` — the scalar reference implementation,
* :mod:`repro.fingerprint.scan` — the batched scan kernels,
* :mod:`repro.fingerprint.scheme` — multi-hash key packing
  (:class:`FingerprintScheme`), the analog of the paper's 128-bit
  fingerprints.
"""

from .rabin_karp import HashSpec, naive_prefix_fingerprints, naive_suffix_fingerprints
from .scan import prefix_fingerprints_batch, suffix_fingerprints_batch
from .scheme import FingerprintScheme

__all__ = [
    "HashSpec",
    "naive_prefix_fingerprints",
    "naive_suffix_fingerprints",
    "prefix_fingerprints_batch",
    "suffix_fingerprints_batch",
    "FingerprintScheme",
]

"""Multi-hash fingerprint keys (the analog of the paper's 128-bit scheme).

The paper uses two 64-bit Rabin–Karp values ("128-bit fingerprints") so that
false-positive edges vanish in practice. numpy cannot do 128-bit modular
multiplies, so each *key lane* here packs two independent 31-bit-prime
hashes into one ``uint64`` (``h0 << 32 | h1``):

* ``lanes=1`` → one 62-bit key per suffix/prefix (12-byte KV record),
* ``lanes=2`` → a second packed key is carried as an auxiliary payload and
  verified at match time (~124 hash bits total, 20-byte KV record — the
  same record width as the paper's, which is what makes the Table II/III
  disk-pass behaviour line up).

Sorting and searching always operate on the primary key only; the auxiliary
lane is an equality filter during overlap detection, preserving the
paper's "fingerprint match ⇒ edge with high probability" semantics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import ConfigError
from .rabin_karp import HashSpec
from .scan import (ScanWorkspace, prefix_fingerprints_batch,
                   prefix_fingerprints_stacked, suffix_fingerprints_batch,
                   suffix_fingerprints_stacked)

_SHIFT = np.uint64(32)


def _legacy_scan() -> bool:
    """Route key generation through the per-spec reference scans.

    ``REPRO_LEGACY_SCAN=1`` restores the seed formulation (one matrix per
    hash lane, fresh temporaries per step) — the before-side of the
    hot-path benchmark and the oracle the stacked path is tested against.
    """
    return os.environ.get("REPRO_LEGACY_SCAN", "") == "1"


def pack_pair(high: np.ndarray | int, low: np.ndarray | int) -> np.ndarray:
    """Pack two 31-bit hash values into one ``uint64`` key."""
    return (np.asarray(high, dtype=np.uint64) << _SHIFT) | np.asarray(low, dtype=np.uint64)


@dataclass(frozen=True)
class FingerprintScheme:
    """Configuration of the fingerprint keys.

    ``lanes`` packed keys are produced per suffix/prefix; ``seed`` rotates
    through the (radix, prime) catalog so different schemes are independent.
    """

    lanes: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.lanes not in (1, 2):
            raise ConfigError("FingerprintScheme.lanes must be 1 or 2")

    @cached_property
    def hash_specs(self) -> tuple[HashSpec, ...]:
        """The ``2 * lanes`` underlying scalar hash lanes."""
        return tuple(HashSpec.lane(self.seed + i) for i in range(2 * self.lanes))

    @property
    def key_nbytes(self) -> int:
        """Bytes of fingerprint carried per record (8 per packed key)."""
        return 8 * self.lanes

    @property
    def record_nbytes(self) -> int:
        """Width of one (fingerprint, read-id) KV record: keys + uint32 id."""
        return self.key_nbytes + 4

    # -- batch kernels -------------------------------------------------------

    def key_matrices(self, codes: np.ndarray,
                     workspace: ScanWorkspace | None = None
                     ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """All prefix and suffix keys for a read batch.

        Returns ``(prefix_keys, suffix_keys)``; each is a list of ``lanes``
        matrices of shape ``(n_reads, L)`` ``uint64``, where column ``i`` of a
        prefix matrix keys the length-``i+1`` prefix and column ``i`` of a
        suffix matrix keys the suffix starting at ``i`` (length ``L - i``).

        With a ``workspace`` the key matrices are workspace-backed: valid
        only until the next ``key_matrices`` call on that workspace, which
        is the per-batch lifetime of the map phase's hot loop. All
        ``2·lanes`` hash lanes then run as one stacked in-place scan.
        """
        if workspace is not None and not _legacy_scan():
            return self._key_matrices_stacked(codes, workspace)
        prefix_keys: list[np.ndarray] = []
        suffix_keys: list[np.ndarray] = []
        for lane in range(self.lanes):
            spec_hi, spec_lo = self.hash_specs[2 * lane], self.hash_specs[2 * lane + 1]
            prefix_hi = prefix_fingerprints_batch(codes, spec_hi)
            prefix_lo = prefix_fingerprints_batch(codes, spec_lo)
            suffix_hi = suffix_fingerprints_batch(prefix_hi, spec_hi)
            suffix_lo = suffix_fingerprints_batch(prefix_lo, spec_lo)
            prefix_keys.append(pack_pair(prefix_hi, prefix_lo))
            suffix_keys.append(pack_pair(suffix_hi, suffix_lo))
        return prefix_keys, suffix_keys

    def _key_matrices_stacked(self, codes: np.ndarray, workspace: ScanWorkspace
                              ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """One stacked scan over every hash lane, packed in place."""
        prefix = prefix_fingerprints_stacked(codes, self.hash_specs, workspace)
        suffix = suffix_fingerprints_stacked(prefix, self.hash_specs, workspace)
        prefix_keys: list[np.ndarray] = []
        suffix_keys: list[np.ndarray] = []
        n, length = np.asarray(codes).shape
        for lane in range(self.lanes):
            for name, stacked, keys in ((f"pk{lane}", prefix, prefix_keys),
                                        (f"sk{lane}", suffix, suffix_keys)):
                packed = workspace.take(name, (n, length))
                np.left_shift(stacked[2 * lane], _SHIFT, out=packed)
                np.bitwise_or(packed, stacked[2 * lane + 1], out=packed)
                keys.append(packed)
        return prefix_keys, suffix_keys

    # -- scalar reference ------------------------------------------------------

    def naive_keys(self, codes: np.ndarray) -> tuple[int, ...]:
        """Packed keys of one whole 1-D code array (test reference)."""
        out = []
        for lane in range(self.lanes):
            spec_hi, spec_lo = self.hash_specs[2 * lane], self.hash_specs[2 * lane + 1]
            out.append(int(pack_pair(spec_hi.fingerprint(codes), spec_lo.fingerprint(codes))))
        return tuple(out)

"""Modular arithmetic for Rabin–Karp hashing under numpy ``uint64``.

All primes are kept below 2³¹ so that a product of two residues fits in a
``uint64`` exactly (no 128-bit modmul exists in numpy); see DESIGN.md §1 for
why this is the faithful substitution for the paper's 64-bit hash lanes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

#: Large primes just under 2³¹, used as hash moduli. Four lanes suffice for
#: the widest configured scheme (2 packed keys × 2 hashes each).
MODULUS_PRIMES = (2_147_483_629, 2_147_483_587, 2_147_483_563, 2_147_483_549)

#: Small primes larger than the alphabet size (4), used as radixes — the
#: paper: "the radix is a small prime larger than the alphabet size".
RADIX_PRIMES = (5, 7, 11, 13)

_MAX_PRIME = 2**31


def check_params(radix: int, prime: int) -> None:
    """Validate a (radix, prime) hash parameter pair."""
    if not 4 < radix < prime:
        raise ConfigError(f"radix must satisfy 4 < radix < prime, got {radix}, {prime}")
    if prime >= _MAX_PRIME:
        raise ConfigError(f"prime must be < 2^31 for overflow-free uint64 math, got {prime}")


def place_values(radix: int, prime: int, length: int) -> np.ndarray:
    """``M[i] = radix**i mod prime`` for ``i in [0, length)`` (paper's M array).

    The pure computation. Hot callers go through
    :meth:`repro.fingerprint.rabin_karp.HashSpec.place_values`, which
    memoizes per *spec instance* — an earlier process-global unbounded
    ``lru_cache`` here kept every (radix, prime, length) triple of every
    scheme ever constructed alive for the life of the process, and was
    silently cold in forked sort/map workers while still growing in the
    parent. The returned array is frozen so no caller can corrupt a
    memoized copy downstream.
    """
    check_params(radix, prime)
    if length < 1:
        raise ConfigError("length must be >= 1")
    out = np.empty(length, dtype=np.uint64)
    value = 1
    for i in range(length):
        out[i] = value
        value = (value * radix) % prime
    out.setflags(write=False)
    return out


def mulmod(a: np.ndarray | int, b: np.ndarray | int, prime: int) -> np.ndarray:
    """``(a * b) mod prime`` element-wise, overflow-free for residues < 2³¹."""
    product = np.asarray(a, dtype=np.uint64) * np.asarray(b, dtype=np.uint64)
    return product % np.uint64(prime)


def submod(a: np.ndarray | int, b: np.ndarray | int, prime: int) -> np.ndarray:
    """``(a - b) mod prime`` element-wise without signed underflow."""
    p = np.uint64(prime)
    return (np.asarray(a, dtype=np.uint64) + p - np.asarray(b, dtype=np.uint64)) % p

"""Batched fingerprint generation via Hillis–Steele scans (paper Figs. 5–6).

The paper assigns a *block of threads per read* and expresses prefix
fingerprinting as an inclusive scan with a doubling offset: after the step
with offset ``d``, position ``i`` holds the fingerprint of the window of
length ``min(i+1, 2d)`` ending at ``i``; after ``⌈log₂ L⌉`` steps it holds
the full prefix fingerprint. Suffix fingerprints then come *for free* from
the prefix fingerprints and the place-value array:

    S[i] = (P[L-1] − P[i-1]·σ^(L-i)) mod q,   S[0] = P[L-1].

Here a *row of the batch matrix* plays the role of the thread block: each
scan step is one vectorized numpy expression over the whole ``(n_reads, L)``
batch — the same data-parallel shape, so the virtual GPU charges it as one
scan launch.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .modmath import submod
from .rabin_karp import HashSpec


def prefix_fingerprints_batch(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """Prefix fingerprints of every read in a batch.

    ``codes`` is ``(n_reads, L)`` ``uint8``; the result is ``(n_reads, L)``
    ``uint64`` with ``out[r, i] = f(read_r[:i+1])``.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ConfigError("prefix_fingerprints_batch expects a (n_reads, L) batch")
    n, length = codes.shape
    prefix = codes.astype(np.uint64)
    if n == 0 or length == 0:
        return prefix
    q = np.uint64(spec.prime)
    offset = 1
    sigma_d = np.uint64(spec.radix % spec.prime)
    while offset < length:
        # P[i] += P[i-d] * sigma^d  (mod q); one step of the Hillis-Steele scan.
        shifted = prefix[:, :-offset]
        prefix[:, offset:] = (prefix[:, offset:] + shifted * sigma_d) % q
        offset *= 2
        sigma_d = (sigma_d * sigma_d) % q
    return prefix


def suffix_fingerprints_batch(prefix: np.ndarray, spec: HashSpec) -> np.ndarray:
    """Suffix fingerprints derived from prefix fingerprints (Fig. 6).

    ``prefix`` is the output of :func:`prefix_fingerprints_batch`; the result
    has ``out[r, i] = f(read_r[i:])``.
    """
    prefix = np.asarray(prefix, dtype=np.uint64)
    if prefix.ndim != 2:
        raise ConfigError("suffix_fingerprints_batch expects a (n_reads, L) matrix")
    n, length = prefix.shape
    if n == 0 or length == 0:
        return prefix.copy()
    q = np.uint64(spec.prime)
    # places[i] = sigma^(L-i) mod q for i in [1, L)
    places = spec.place_values(length + 1)
    full = prefix[:, -1:]
    out = np.empty_like(prefix)
    out[:, 0] = prefix[:, -1]
    if length > 1:
        shifted = (prefix[:, :-1] * places[length - 1:0:-1][None, :]) % q
        out[:, 1:] = submod(full, shifted, spec.prime)
    return out

"""Batched fingerprint generation via Hillis–Steele scans (paper Figs. 5–6).

The paper assigns a *block of threads per read* and expresses prefix
fingerprinting as an inclusive scan with a doubling offset: after the step
with offset ``d``, position ``i`` holds the fingerprint of the window of
length ``min(i+1, 2d)`` ending at ``i``; after ``⌈log₂ L⌉`` steps it holds
the full prefix fingerprint. Suffix fingerprints then come *for free* from
the prefix fingerprints and the place-value array:

    S[i] = (P[L-1] − P[i-1]·σ^(L-i)) mod q,   S[0] = P[L-1].

Here a *row of the batch matrix* plays the role of the thread block: each
scan step is one vectorized numpy expression over the whole ``(n_reads, L)``
batch — the same data-parallel shape, so the virtual GPU charges it as one
scan launch.

Two formulations coexist. The per-spec functions
(:func:`prefix_fingerprints_batch` / :func:`suffix_fingerprints_batch`)
are the reference: one ``(n_reads, L)`` matrix per hash lane, a fresh
temporary per step, ``⌈log₂ L⌉`` doubling steps. The stacked functions
run all ``2·lanes`` hash lanes as one ``(n_specs, n_reads, L)`` tensor
with ``out=`` ufuncs into a :class:`ScanWorkspace` — and the prefix
kernel evaluates the scan in closed form (inverse-place cumulative sum,
six tensor passes total) instead of doubling steps — so a whole batch
allocates nothing after warm-up. All intermediates are exact in
``uint64``, so both formulations produce bit-identical fingerprints;
tests assert it.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from ..errors import ConfigError
from .modmath import submod
from .rabin_karp import HashSpec


def prefix_fingerprints_batch(codes: np.ndarray, spec: HashSpec) -> np.ndarray:
    """Prefix fingerprints of every read in a batch.

    ``codes`` is ``(n_reads, L)`` ``uint8``; the result is ``(n_reads, L)``
    ``uint64`` with ``out[r, i] = f(read_r[:i+1])``.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ConfigError("prefix_fingerprints_batch expects a (n_reads, L) batch")
    n, length = codes.shape
    prefix = codes.astype(np.uint64)
    if n == 0 or length == 0:
        return prefix
    q = np.uint64(spec.prime)
    offset = 1
    sigma_d = np.uint64(spec.radix % spec.prime)
    while offset < length:
        # P[i] += P[i-d] * sigma^d  (mod q); one step of the Hillis-Steele scan.
        shifted = prefix[:, :-offset]
        prefix[:, offset:] = (prefix[:, offset:] + shifted * sigma_d) % q
        offset *= 2
        sigma_d = (sigma_d * sigma_d) % q
    return prefix


def suffix_fingerprints_batch(prefix: np.ndarray, spec: HashSpec) -> np.ndarray:
    """Suffix fingerprints derived from prefix fingerprints (Fig. 6).

    ``prefix`` is the output of :func:`prefix_fingerprints_batch`; the result
    has ``out[r, i] = f(read_r[i:])``.
    """
    prefix = np.asarray(prefix, dtype=np.uint64)
    if prefix.ndim != 2:
        raise ConfigError("suffix_fingerprints_batch expects a (n_reads, L) matrix")
    n, length = prefix.shape
    if n == 0 or length == 0:
        return prefix.copy()
    q = np.uint64(spec.prime)
    # places[i] = sigma^(L-i) mod q for i in [1, L)
    places = spec.place_values(length + 1)
    full = prefix[:, -1:]
    out = np.empty_like(prefix)
    out[:, 0] = prefix[:, -1]
    if length > 1:
        shifted = (prefix[:, :-1] * places[length - 1:0:-1][None, :]) % q
        out[:, 1:] = submod(full, shifted, spec.prime)
    return out


class ScanWorkspace:
    """Named reusable scratch buffers for the stacked scan kernels.

    One workspace per thread (the map phase keeps them in thread-local
    storage): arrays handed out for one name alias previous arrays handed
    out for the same name, so a caller must finish consuming a batch's
    results before starting the next batch — exactly the per-batch
    lifetime of the fingerprint hot path.
    """

    __slots__ = ("_raw",)

    def __init__(self) -> None:
        self._raw: dict[str, np.ndarray] = {}

    def take(self, name: str, shape: tuple[int, ...],
             dtype=np.uint64) -> np.ndarray:
        """A writable ``shape``/``dtype`` array backed by the named buffer."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * math.prod(shape)
        raw = self._raw.get(name)
        if raw is None or raw.nbytes < nbytes:
            raw = np.empty(max(nbytes, 1), dtype=np.uint8)
            self._raw[name] = raw
        return raw[:nbytes].view(dtype).reshape(shape)


@lru_cache(maxsize=64)
def _stacked_consts(specs: tuple[HashSpec, ...]
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Per-spec ``(radix mod q, q)`` columns shaped to broadcast over (S, n, L)."""
    sigma = np.array([[[spec.radix % spec.prime]] for spec in specs],
                     dtype=np.uint64)
    q = np.array([[[spec.prime]] for spec in specs], dtype=np.uint64)
    sigma.setflags(write=False)
    q.setflags(write=False)
    return sigma, q


@lru_cache(maxsize=64)
def _stacked_scan_places(specs: tuple[HashSpec, ...], length: int
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Forward and inverse place-value rows for the closed-form prefix scan.

    ``forward[s, i] = radix_s^i mod q_s`` and
    ``inverse[s, j] = radix_s^(-j) mod q_s`` (derived from the reversed
    forward row by one scalar modular inverse, as in
    :func:`repro.fingerprint.rabin_karp.naive_prefix_fingerprints`).
    """
    forward = np.stack([spec.place_values(length) for spec in specs])
    inverse = np.stack([
        (spec.place_values(length)[::-1]
         * np.uint64(pow(spec.radix, -(length - 1), spec.prime)))
        % np.uint64(spec.prime)
        for spec in specs])
    forward.setflags(write=False)
    inverse.setflags(write=False)
    return forward, inverse


@lru_cache(maxsize=64)
def _stacked_places_rev(specs: tuple[HashSpec, ...], length: int) -> np.ndarray:
    """``out[s, j] = radix_s^(L-1-j) mod q_s`` for ``j`` in ``[0, L-1)``.

    The reversed place-value rows the suffix derivation multiplies against
    ``prefix[:, :, :-1]`` (position ``j`` holds ``sigma^(L-(j+1))``).
    """
    stacked = np.stack([
        spec.place_values(length + 1)[length - 1:0:-1] for spec in specs])
    stacked.setflags(write=False)
    return stacked


def prefix_fingerprints_stacked(codes: np.ndarray, specs: tuple[HashSpec, ...],
                                workspace: ScanWorkspace) -> np.ndarray:
    """Prefix fingerprints of a batch under every spec at once.

    Returns a ``(n_specs, n_reads, L)`` ``uint64`` workspace-backed tensor
    with ``out[s, r, i] = f_s(read_r[:i+1])`` — bit-identical to stacking
    ``n_specs`` calls of :func:`prefix_fingerprints_batch`.

    Closed form instead of the log-step doubling scan:
    ``f(read[:i+1]) = σ^i · Σ_{j≤i} codes[j]·σ^(-j) mod q`` — one modular
    cumulative sum against inverse place values, then a rescale by the
    forward places. ~``3·⌈log₂ L⌉`` tensor passes collapse to 6. Every
    intermediate is exact in ``uint64``: products of residues stay below
    ``2^62`` and a per-read cumsum of residues is bounded by ``L·2^31``,
    so the results match the doubling scan bit for bit (the virtual GPU
    still *charges* the Hillis–Steele pass count — the model simulates
    the paper's kernel, not this host-side evaluation of it).
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise ConfigError("prefix_fingerprints_stacked expects a (n_reads, L) batch")
    n, length = codes.shape
    n_specs = len(specs)
    prefix = workspace.take("prefix", (n_specs, n, length))
    if n == 0 or length == 0 or n_specs == 0:
        prefix[...] = codes
        return prefix
    _, q = _stacked_consts(specs)
    forward, inverse = _stacked_scan_places(specs, length)
    sums = workspace.take("scratch", (n_specs, n, length))
    np.multiply(codes[None, :, :], inverse[:, None, :], out=sums)
    np.remainder(sums, q, out=sums)
    np.cumsum(sums, axis=2, out=sums)
    np.remainder(sums, q, out=sums)
    np.multiply(sums, forward[:, None, :], out=sums)
    np.remainder(sums, q, out=prefix)
    return prefix


def suffix_fingerprints_stacked(prefix: np.ndarray,
                                specs: tuple[HashSpec, ...],
                                workspace: ScanWorkspace) -> np.ndarray:
    """Suffix fingerprints from stacked prefix fingerprints (Fig. 6).

    ``prefix`` is the output of :func:`prefix_fingerprints_stacked`; the
    result (workspace-backed) has ``out[s, r, i] = f_s(read_r[i:])``.
    """
    n_specs, n, length = prefix.shape
    out = workspace.take("suffix", (n_specs, n, length))
    if n == 0 or length == 0 or n_specs == 0:
        return out
    out[:, :, 0] = prefix[:, :, -1]
    if length > 1:
        sigma, q = _stacked_consts(specs)
        places = _stacked_places_rev(specs, length)
        shifted = workspace.take("scratch", (n_specs, n, length))[:, :, 1:]
        np.multiply(prefix[:, :, :-1], places[:, None, :], out=shifted)
        np.remainder(shifted, q, out=shifted)
        # submod(full, shifted, q) = (full + q - shifted) % q, elementwise.
        full = workspace.take("full", (n_specs, n, 1))
        np.add(prefix[:, :, -1:], q, out=full)
        np.subtract(full, shifted, out=shifted)
        np.remainder(shifted, q, out=out[:, :, 1:])
    return out

"""Run configuration: memory budgets and assembly parameters.

Two memory configurations appear throughout the paper's evaluation:

* **QB2**  — QueenBee II node: 128 GB host RAM, NVIDIA K40 (12 GB device),
* **SuperMIC** — 64 GB host RAM, NVIDIA K20X (6 GB device).

:class:`MemoryConfig` captures a host/device budget pair and derives the
block sizes ``m_h`` (key–value pairs that fit in host memory) and ``m_d``
(pairs that fit in device memory) that drive the two-level streaming model.
Budgets can be scaled down by the same factor as the datasets so that *pass
counts* — the quantity the paper's Tables II/III hinge on — are preserved.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Mapping

from .errors import ConfigError
from .units import parse_size

#: Fraction of each memory budget usable as sort/merge KV buffers. The
#: remainder models framework overhead (CUDA context, program state); the
#: paper similarly reports device memory "fully utilized" at a fixed
#: per-phase allocation below the physical capacity. 0.85 is calibrated so
#: that, with the sort footprint divisors of :mod:`repro.extmem.sort`, the
#: paper's pass counts reproduce: an H.Genome partition (2.5 G × 20-byte
#: records) sorts in one disk pass on the 128 GB host but needs one merge
#: round on the 64 GB host (Tables II vs III).
DEFAULT_BUFFER_FRACTION = 0.85


def validate_workers(workers: int, *, source: str = "workers") -> int:
    """Validate a worker count through the one shared ``ConfigError`` path.

    Every route a worker count can enter by — the config field, the
    ``REPRO_WORKERS`` environment override, direct executor construction,
    and :meth:`AssemblyConfig.resolved_workers` at resolve time — funnels
    through here, so an invalid count can never reach the executor no
    matter when or how it was injected.
    """
    try:
        workers = int(workers)
    except (TypeError, ValueError):
        raise ConfigError(f"{source} must be an integer, got {workers!r}") from None
    if workers < 0:
        raise ConfigError(f"{source} must be >= 0 (0 = auto from cpu_count)")
    return workers


def default_workers() -> int:
    """The default pipeline worker count: ``REPRO_WORKERS`` or 1 (serial).

    Reading the environment here (rather than at import time) lets test
    harnesses and CI matrix legs flip the execution mode per process
    without touching call sites.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    return validate_workers(raw, source="REPRO_WORKERS")


def default_backend() -> str:
    """The default executor backend: ``REPRO_BACKEND`` or ``auto``.

    ``auto`` resolves to ``processes`` when the effective worker count
    exceeds 1 (real multi-core scaling needs to escape the GIL) and to
    ``serial`` otherwise; see :func:`repro.parallel.resolve_backend`.
    """
    from .parallel.backend import check_backend

    raw = os.environ.get("REPRO_BACKEND", "").strip()
    if not raw:
        return "auto"
    return check_backend(raw)


@dataclass(frozen=True)
class MemoryConfig:
    """Host and device memory budgets for one run.

    ``buffer_fraction`` is the share of each budget available to key–value
    buffers; :meth:`host_pairs`/:meth:`device_pairs` convert budgets into the
    paper's ``m_h``/``m_d`` block sizes for a given record width.
    """

    host_bytes: int
    device_bytes: int
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.host_bytes <= 0 or self.device_bytes <= 0:
            raise ConfigError("memory budgets must be positive")
        if not 0.0 < self.buffer_fraction <= 1.0:
            raise ConfigError("buffer_fraction must be in (0, 1]")
        if self.device_bytes > self.host_bytes:
            raise ConfigError("device memory cannot exceed host memory")

    @staticmethod
    def preset(name: str) -> "MemoryConfig":
        """Return a named testbed configuration from the paper.

        ``qb2``: 128 GB host + 12 GB device (K40).
        ``supermic``: 64 GB host + 6 GB device (K20X).
        """
        presets = {
            "qb2": MemoryConfig(parse_size("128 GB"), parse_size("12 GB"), name="qb2"),
            "supermic": MemoryConfig(parse_size("64 GB"), parse_size("6 GB"), name="supermic"),
        }
        try:
            return presets[name.lower()]
        except KeyError:
            raise ConfigError(f"unknown memory preset {name!r}; options: {sorted(presets)}") from None

    def scaled(self, factor: float) -> "MemoryConfig":
        """Scale both budgets by ``factor`` (used with scaled datasets).

        Scaling budgets and data by the same factor keeps the number of
        sort/merge disk passes identical to the paper-scale run.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(
            self,
            host_bytes=max(1, int(self.host_bytes * factor)),
            device_bytes=max(1, int(self.device_bytes * factor)),
            name=f"{self.name}*{factor:g}",
        )

    def host_pairs(self, record_nbytes: int) -> int:
        """``m_h``: key–value pairs fitting in the host buffer budget."""
        return max(2, int(self.host_bytes * self.buffer_fraction) // record_nbytes)

    def device_pairs(self, record_nbytes: int) -> int:
        """``m_d``: key–value pairs fitting in the device buffer budget."""
        return max(2, int(self.device_bytes * self.buffer_fraction) // record_nbytes)


@dataclass(frozen=True)
class AssemblyConfig:
    """All tunables of the assembly pipeline.

    Parameters
    ----------
    min_overlap:
        ``l_min`` — the smallest suffix/prefix length considered an overlap.
        The paper uses the SGA-suggested values (63 for 100/101 bp reads,
        85 for 124 bp, 111 for 150 bp).
    memory:
        Host/device budgets; defaults to a laptop-scale budget.
    device_name:
        Which :mod:`repro.device.specs` GPU to virtualize (timing model only;
        capacity comes from ``memory.device_bytes``).
    fingerprint_lanes:
        1 → one packed 62-bit key (two 31-bit Rabin–Karp hashes);
        2 → two packed keys (~124 bits), the analog of the paper's 128-bit
        fingerprints.
    map_batch_reads:
        Reads fingerprinted per kernel launch in the map phase. ``0`` sizes
        the batch automatically from the device budget.
    host_block_pairs / device_block_pairs:
        Explicit ``m_h``/``m_d`` overrides (paper Fig. 8/9 sweeps); ``0``
        derives them from ``memory``.
    merge_fanout:
        Runs merged per external-merge round (level 1 and level 2). ``2``
        is the paper's pairwise Algorithm 1 and makes the sort take
        ``1 + ⌈log₂ R⌉`` disk passes over ``R`` initial runs; ``k`` cuts
        that to ``1 + ⌈log_k R⌉`` at the cost of ``k``-times-smaller merge
        windows. ``0`` derives the largest fanout whose windows still hold
        a device chunk (:func:`repro.extmem.sort.derive_fanout`).
    dedupe_contigs:
        Drop the reverse-complement twin of each contig (extension; the
        paper leaves complement duplicates unspecified).
    workers:
        Pipeline worker threads for the overlapped (double-buffered)
        execution mode. ``1`` (the default, or via ``REPRO_WORKERS``) is
        the paper-faithful serial schedule; ``0`` derives the pool size
        from ``os.cpu_count()``. Output is byte-identical for every value
        — only wall-clock changes — and an armed fault plan always forces
        serial execution.
    executor_backend:
        Where pipeline work runs: ``serial`` (everything inline),
        ``threads`` (the GIL-sharing worker-thread pool), ``processes``
        (fingerprint scans and sort run formation ship to worker
        processes over shared-memory buffers), or ``auto`` (the default,
        or via ``REPRO_BACKEND``) which picks ``processes`` whenever the
        resolved worker count exceeds 1. Execution-only: artifacts are
        byte-identical across backends, so it is excluded from the
        checkpoint fingerprint like ``workers``.
    trace:
        Directory to dump a structured span trace into ("" = tracing off,
        the default). When set, the run records begin/end events for every
        phase, executor lane, external-merge round and distributed node
        against both the wall clock and the simulated clock, and writes an
        event log plus Chrome/Perfetto trace JSON there (see
        :mod:`repro.trace`). Purely observational: does not affect output
        or the checkpoint fingerprint.
    buffer_pool:
        Recycle the real numpy buffers behind device arrays through a
        free list (:class:`repro.device.memory.BufferPool`) instead of
        allocating fresh ones per transfer/kernel. Wall-clock only: the
        simulated clock, metered peaks and every artifact byte are
        identical either way, so it is excluded from the checkpoint
        fingerprint like ``workers``.
    pool_max_bytes:
        Cap on bytes the buffer-pool free list may retain (``0``, the
        default, derives the cap from the device budget). Wall-clock
        only, like ``buffer_pool``.
    heartbeat_interval / node_timeout / reduce_max_attempts /
    retry_backoff_s / node_restarts / allow_degraded:
        Distributed-resilience knobs (see
        :mod:`repro.distributed.resilience`): heartbeat cadence and
        declared-dead timeout on the simulated clock, bounded per-operation
        retries with deterministic backoff, per-node restart budget, and
        whether exhausted recovery degrades (report + surviving nodes)
        rather than raising. All are execution-policy only: a clean run's
        artifacts and timings are identical for any values.
    chunk_checkpoint_every:
        Records of reduce work between intra-partition chunk checkpoints.
        Each committed chunk appends a durable entry to the node's ledger,
        so a restart (or a speculative backup) resumes the partition from
        the last chunk boundary instead of replaying it whole. ``0``
        disables chunking (the pre-chunk restart-replays-the-partition
        behaviour). Policy-only: chunk boundaries never move an output
        byte (per-window candidate ordering is canonicalized), so the knob
        stays out of the checkpoint fingerprint.
    speculation_threshold:
        Simulated seconds a reduce owner may go heartbeat-silent before
        the supervisor launches a backup execution of its remaining chunks
        on an idle node (first-complete-wins, deterministic tie-break).
        ``0`` (the default) disables speculation; positive values must be
        at least ``heartbeat_interval`` (a suspect is only observable at
        heartbeat granularity). Policy-only, like the other resilience
        knobs.
    allow_join:
        Accept nodes joining mid-run: a joiner rebuilds its share of the
        remaining partitions through the failover re-shuffle path run in
        reverse and takes over their reduction. Policy-only; joins never
        change output bytes.
    seed:
        Seed for fingerprint parameter choice; fixed for reproducibility.
    """

    min_overlap: int = 15
    memory: MemoryConfig = field(
        default_factory=lambda: MemoryConfig(parse_size("1 GB"), parse_size("96 MB"), name="laptop")
    )
    device_name: str = "K40"
    fingerprint_lanes: int = 1
    map_batch_reads: int = 0
    host_block_pairs: int = 0
    device_block_pairs: int = 0
    merge_fanout: int = 2
    dedupe_contigs: bool = True
    keep_workdir: bool = False
    workers: int = field(default_factory=default_workers)
    executor_backend: str = field(default_factory=default_backend)
    trace: str = ""
    buffer_pool: bool = True
    pool_max_bytes: int = 0
    # -- distributed resilience (repro.distributed.resilience) -----------------
    #: Simulated seconds between worker heartbeats to the supervisor.
    heartbeat_interval: float = 0.25
    #: Simulated seconds without a heartbeat before a node is declared dead.
    node_timeout: float = 1.0
    #: Bounded attempts per node operation (2 = one retry, the historical
    #: distributed-reduce behaviour).
    reduce_max_attempts: int = 2
    #: Base backoff before the first retry; doubles per attempt with seeded
    #: jitter (see repro.faults.RetryPolicy).
    retry_backoff_s: float = 0.05
    #: Fresh WorkerNode restarts granted per node before it is declared lost.
    node_restarts: int = 1
    #: Finish on surviving nodes with a DegradedRunReport when recovery is
    #: exhausted (False = raise DistributedProtocolError instead).
    allow_degraded: bool = True
    #: Reduce records between durable intra-partition chunk checkpoints
    #: (0 = whole-partition replay, the pre-chunk behaviour).
    chunk_checkpoint_every: int = 4096
    #: Heartbeat-silent seconds before a reduce owner is suspected and its
    #: remaining chunks are speculatively re-executed on an idle node
    #: (0 = speculation off).
    speculation_threshold: float = 0.0
    #: Accept nodes joining mid-run (failover re-shuffle run in reverse).
    allow_join: bool = False
    seed: int = 0x1A5A67A

    def __post_init__(self) -> None:
        if self.min_overlap < 1:
            raise ConfigError("min_overlap must be >= 1")
        if self.fingerprint_lanes not in (1, 2):
            raise ConfigError("fingerprint_lanes must be 1 or 2")
        if self.map_batch_reads < 0 or self.host_block_pairs < 0 or self.device_block_pairs < 0:
            raise ConfigError("block/batch overrides must be >= 0 (0 = auto)")
        if self.merge_fanout < 0 or self.merge_fanout == 1:
            raise ConfigError("merge_fanout must be 0 (auto) or >= 2")
        if self.pool_max_bytes < 0:
            raise ConfigError("pool_max_bytes must be >= 0 (0 = auto)")
        validate_workers(self.workers)
        from .parallel.backend import check_backend

        check_backend(self.executor_backend)
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be > 0")
        if self.node_timeout < self.heartbeat_interval:
            raise ConfigError("node_timeout must be >= heartbeat_interval")
        if self.reduce_max_attempts < 1:
            raise ConfigError("reduce_max_attempts must be >= 1")
        if self.retry_backoff_s < 0:
            raise ConfigError("retry_backoff_s must be >= 0")
        if self.node_restarts < 0:
            raise ConfigError("node_restarts must be >= 0")
        if self.chunk_checkpoint_every < 0:
            raise ConfigError("chunk_checkpoint_every must be >= 0 (0 = off)")
        if self.speculation_threshold < 0:
            raise ConfigError("speculation_threshold must be >= 0 (0 = off)")
        if self.speculation_threshold and \
                self.speculation_threshold < self.heartbeat_interval:
            raise ConfigError(
                "speculation_threshold must be 0 (off) or >= "
                "heartbeat_interval (suspects are observable only at "
                "heartbeat granularity)")

    def resolved_workers(self) -> int:
        """The effective worker-pool size (``0`` resolves to ``cpu_count``).

        Re-validates at resolve time: a worker count injected after
        construction (e.g. derived from ``REPRO_WORKERS`` and written onto
        an existing config) goes through the same :class:`ConfigError`
        path as the field validation, instead of silently reaching the
        executor.
        """
        workers = validate_workers(self.workers)
        return workers or (os.cpu_count() or 1)

    def resolved_backend(self) -> str:
        """The effective executor backend (``auto`` resolves per workers)."""
        from .parallel.backend import resolve_backend

        return resolve_backend(self.executor_backend, self.resolved_workers())

    def with_memory(self, memory: MemoryConfig) -> "AssemblyConfig":
        """Return a copy using a different memory configuration."""
        return replace(self, memory=memory)

    def resolved_blocks(self, record_nbytes: int) -> tuple[int, int]:
        """Resolve ``(m_h, m_d)`` pairs for a record width, honouring overrides."""
        m_h = self.host_block_pairs or self.memory.host_pairs(record_nbytes)
        m_d = self.device_block_pairs or self.memory.device_pairs(record_nbytes)
        m_d = min(m_d, m_h)
        return max(2, m_h), max(2, m_d)

    def resolved_fanout(self, record_nbytes: int) -> int:
        """Resolve the merge fanout ``k`` for a record width (0 = derive)."""
        if self.merge_fanout:
            return self.merge_fanout
        from .extmem.sort import derive_fanout

        m_h, m_d = self.resolved_blocks(record_nbytes)
        return derive_fanout(m_h, m_d)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the multi-tenant assembly service (``lasagna serve``).

    Parameters
    ----------
    max_parallel:
        Batches executing concurrently. ``1`` (the default) runs jobs on
        the scheduler thread in strict weighted-fair order — fully
        deterministic, which is what the traffic harness asserts against;
        higher values ship batches to worker threads.
    host_budget_bytes / device_budget_bytes:
        The shared memory budgets admission control arbitrates. A job's
        demand is its config's ``memory.host_bytes``/``device_bytes``;
        jobs wait at admission until both fit, so the sum of admitted
        demands can never exceed the budget (enforced by the service
        :class:`~repro.device.memory.MemoryPool` pair, whose peaks are the
        oversubscription audit trail).
    cache_dir:
        Directory of the content-addressed artifact cache shared across
        jobs and tenants ("" = caching off).
    cache_bytes:
        Cache capacity; least-recently-used entries are evicted past it.
    batch_max_bytes:
        Jobs whose input file is at most this large count as *small* and
        may be coalesced with other small jobs of the same tenant into one
        batch sharing a single admission grant (0 = batching off).
    batch_max_jobs:
        Most jobs coalesced into one batch.
    tenant_weights:
        Fair-share weight per tenant name (unlisted tenants get 1.0). A
        tenant with weight 2 receives twice the service of a weight-1
        tenant under contention.
    workdir:
        Root directory for per-job workdirs and reports ("" = a temp dir
        owned, and removed, by the service).
    job_max_attempts:
        Executions granted per job before it is quarantined. ``1`` (the
        default) quarantines on first failure; higher values re-queue a
        failed job through admission, so its budget demand is re-acquired
        fairly rather than held across the backoff.
    job_retry_backoff_s:
        Base backoff before a job's first retry; doubles per attempt with
        seeded jitter (the same :class:`repro.faults.RetryPolicy` schedule
        the distributed supervisor uses, keyed by job id and charged to
        the simulated clock — deterministic per seed).
    max_queued:
        Queue-depth bound for load shedding: whenever more jobs than this
        are queued, the lowest-weight queued jobs are shed with a typed
        ``admission_shed`` outcome until the bound holds (0 = unbounded).
    """

    max_parallel: int = 1
    host_budget_bytes: int = 4 << 30
    device_budget_bytes: int = 512 << 20
    cache_dir: str = ""
    cache_bytes: int = 256 << 20
    batch_max_bytes: int = 1 << 20
    batch_max_jobs: int = 4
    tenant_weights: Mapping[str, float] = field(default_factory=dict)
    workdir: str = ""
    job_max_attempts: int = 1
    job_retry_backoff_s: float = 0.05
    max_queued: int = 0

    def __post_init__(self) -> None:
        if self.max_parallel < 1:
            raise ConfigError("max_parallel must be >= 1")
        if self.host_budget_bytes <= 0 or self.device_budget_bytes <= 0:
            raise ConfigError("service memory budgets must be positive")
        if self.cache_bytes <= 0:
            raise ConfigError("cache_bytes must be positive")
        if self.batch_max_bytes < 0:
            raise ConfigError("batch_max_bytes must be >= 0 (0 = no batching)")
        if self.batch_max_jobs < 1:
            raise ConfigError("batch_max_jobs must be >= 1")
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise ConfigError(
                    f"tenant weight must be positive ({tenant!r}: {weight})")
        if self.job_max_attempts < 1:
            raise ConfigError("job_max_attempts must be >= 1")
        if self.job_retry_backoff_s < 0:
            raise ConfigError("job_retry_backoff_s must be >= 0")
        if self.max_queued < 0:
            raise ConfigError("max_queued must be >= 0 (0 = unbounded)")

    def weight(self, tenant: str) -> float:
        """Fair-share weight of ``tenant`` (1.0 unless configured)."""
        return float(self.tenant_weights.get(tenant, 1.0))

"""2-bit DNA alphabet: encoding, decoding, complementation.

Bases are encoded ``A=0, C=1, G=2, T=3`` so that the Watson–Crick complement
of a code ``c`` is ``3 - c`` — a single vectorized subtraction. Everything
here operates on numpy ``uint8`` arrays; strings only appear at the I/O
boundary.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError

#: Number of symbols in the DNA alphabet.
ALPHABET_SIZE = 4

#: Canonical base order; index = 2-bit code.
BASES = "ACGT"

_ENCODE_LUT = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _ENCODE_LUT[ord(_b)] = _i
    _ENCODE_LUT[ord(_b.lower())] = _i
# Ambiguity code: N maps to A under the "mask" policy (flagged under "strict").
_N_BYTE = ord("N")

_DECODE_LUT = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)


def encode(seq: str | bytes, *, on_invalid: str = "strict") -> np.ndarray:
    """Encode an ASCII DNA string to a ``uint8`` code array.

    ``on_invalid`` controls what happens for characters outside ``ACGTacgt``:
    ``"strict"`` raises :class:`~repro.errors.DatasetError`; ``"mask"`` maps
    them (including ``N``) to ``A``, the common short-read convention when no
    error model is applied.
    """
    if isinstance(seq, str):
        seq = seq.encode("ascii")
    raw = np.frombuffer(seq, dtype=np.uint8)
    codes = _ENCODE_LUT[raw]
    invalid = codes == 255
    if invalid.any():
        if on_invalid == "mask":
            codes = np.where(invalid, np.uint8(0), codes)
        else:
            bad = chr(raw[np.argmax(invalid)])
            raise DatasetError(f"invalid DNA character {bad!r} (use on_invalid='mask' to accept)")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array (1-D) back to an ASCII string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 1:
        raise DatasetError("decode expects a 1-D code array; decode rows individually")
    if codes.size and codes.max() >= ALPHABET_SIZE:
        raise DatasetError("code array contains values outside the 2-bit alphabet")
    return _DECODE_LUT[codes].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Watson–Crick complement of a code array (any shape), vectorized."""
    return (ALPHABET_SIZE - 1 - np.asarray(codes, dtype=np.uint8)).astype(np.uint8)


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse complement along the last axis.

    Works on a single read (1-D) or a whole batch (2-D, one read per row) —
    the batch form is what the map phase uses, one kernel for the batch.
    """
    return complement_codes(codes)[..., ::-1].copy()


def reverse_complement_str(seq: str) -> str:
    """Reverse complement of an ASCII DNA string (convenience wrapper)."""
    return decode(reverse_complement(encode(seq)))

"""Reference-genome and shotgun-read simulation.

The paper evaluates on Illumina archives (9.2–398 GB) that are not shipped
here; this module is the documented substitute (DESIGN.md §1). It generates

* a random reference genome, optionally with implanted exact repeats longer
  than typical k-mer sizes (the case where de Bruijn assemblers collapse and
  string graphs do not — the paper's §II.A.1 motivation), and
* uniform shotgun reads of one fixed length at a target coverage, from both
  strands, with an optional per-base substitution error rate.

Everything is deterministic under an explicit seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import DatasetError
from .alphabet import ALPHABET_SIZE, decode, reverse_complement
from .records import ReadBatch
from .fastq import write_fastq


def simulate_genome(length: int, *, seed: int = 0, repeat_fraction: float = 0.0,
                    repeat_length: int = 500) -> np.ndarray:
    """Generate a random genome as a 1-D ``uint8`` code array.

    ``repeat_fraction`` of the genome is overwritten with copies of a single
    ``repeat_length`` template, creating exact long repeats.
    """
    if length < 1:
        raise DatasetError("genome length must be >= 1")
    if not 0.0 <= repeat_fraction < 1.0:
        raise DatasetError("repeat_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    genome = rng.integers(0, ALPHABET_SIZE, size=length, dtype=np.uint8)
    if repeat_fraction > 0.0 and length > repeat_length * 2:
        template = genome[:repeat_length].copy()
        n_copies = max(1, int(length * repeat_fraction / repeat_length))
        # Copies never overwrite the template region, so the template itself
        # always survives as one more occurrence.
        starts = rng.integers(repeat_length, length - repeat_length, size=n_copies)
        for start in starts:
            genome[start:start + repeat_length] = template
    return genome


@dataclass(frozen=True)
class ReadSimulator:
    """Uniform shotgun read sampler over a simulated genome.

    Parameters
    ----------
    genome:
        1-D ``uint8`` code array (see :func:`simulate_genome`).
    read_length:
        Fixed read length; must not exceed the genome length.
    coverage:
        Target mean coverage; the read count is
        ``round(coverage * len(genome) / read_length)``.
    error_rate:
        Per-base substitution probability (0 = error-free, the regime the
        paper's exact-fingerprint overlaps assume).
    rc_fraction:
        Fraction of reads sampled from the reverse strand.
    seed:
        RNG seed. Randomness is *stateless per read* (a splitmix64 hash of
        ``(seed, read index)``), so read ``i`` is identical no matter how
        the stream is batched — the property that lets the distributed map
        phase hand arbitrary read ranges to different nodes.
    """

    genome: np.ndarray
    read_length: int
    coverage: float
    error_rate: float = 0.0
    rc_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        genome = np.asarray(self.genome, dtype=np.uint8)
        object.__setattr__(self, "genome", genome)
        if self.read_length < 2 or self.read_length > genome.size:
            raise DatasetError("read_length must be in [2, len(genome)]")
        if self.coverage <= 0:
            raise DatasetError("coverage must be positive")
        if not 0.0 <= self.error_rate < 1.0 or not 0.0 <= self.rc_fraction <= 1.0:
            raise DatasetError("error_rate in [0,1) and rc_fraction in [0,1] required")

    @property
    def n_reads(self) -> int:
        """Total number of reads the simulator will produce."""
        return max(1, int(round(self.coverage * self.genome.size / self.read_length)))

    def _uniform(self, indices: np.ndarray, stream: int) -> np.ndarray:
        """Stateless per-index uniforms in [0, 1) via splitmix64.

        All arithmetic is intentionally modular in uint64 (splitmix64's
        definition), so numpy's overflow warnings are suppressed.
        """
        stream_offset = (stream * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        with np.errstate(over="ignore"):
            x = (indices.astype(np.uint64)
                 + np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF)
                 + np.uint64(stream_offset))
            x = (x + np.uint64(0x9E3779B97F4A7C15))
            x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            x = x ^ (x >> np.uint64(31))
        return x.astype(np.float64) / float(2**64)

    def batches(self, batch_reads: int = 65536) -> Iterator[ReadBatch]:
        """Yield the reads as :class:`ReadBatch` chunks.

        Read ``i`` is a pure function of ``(seed, i)`` — rebatching or
        slicing the stream never changes any read.
        """
        if batch_reads < 1:
            raise DatasetError("batch_reads must be >= 1")
        total = self.n_reads
        window = np.arange(self.read_length, dtype=np.int64)
        produced = 0
        while produced < total:
            n = min(batch_reads, total - produced)
            indices = np.arange(produced, produced + n, dtype=np.uint64)
            span = self.genome.size - self.read_length + 1
            starts = (self._uniform(indices, 0) * span).astype(np.int64)
            codes = self.genome[starts[:, None] + window]
            flip = self._uniform(indices, 1) < self.rc_fraction
            if flip.any():
                codes = codes.copy()
                codes[flip] = reverse_complement(codes[flip])
            if self.error_rate > 0.0:
                base_index = indices[:, None] * np.uint64(self.read_length) \
                    + window.astype(np.uint64)[None, :]
                mask = self._uniform(base_index.ravel(), 2).reshape(codes.shape) \
                    < self.error_rate
                if mask.any():
                    codes = codes.copy()
                    shifts = (self._uniform(base_index.ravel(), 3).reshape(
                        codes.shape)[mask] * (ALPHABET_SIZE - 1)).astype(np.uint8) + 1
                    codes[mask] = (codes[mask] + shifts) % ALPHABET_SIZE
            yield ReadBatch(np.ascontiguousarray(codes), start_id=produced)
            produced += n

    def all_reads(self) -> ReadBatch:
        """Materialize every read in one batch (small datasets only)."""
        batches = list(self.batches(batch_reads=self.n_reads))
        return batches[0]

    def to_fastq(self, path, *, name_prefix: str = "sim") -> int:
        """Write all reads to a FASTQ file; returns the read count."""
        quality = "I" * self.read_length

        def records():
            for batch in self.batches():
                for offset, row in enumerate(batch.codes):
                    yield f"{name_prefix}.{batch.start_id + offset}", decode(row), quality

        return write_fastq(path, records())


@dataclass(frozen=True)
class PairedReadSimulator:
    """Paired-end (FR) shotgun simulator.

    Samples fragments of ``insert_size ± insert_std`` and reads both ends
    Illumina-style: mate 1 is the fragment's forward prefix, mate 2 the
    reverse complement of its suffix. The output is one
    :class:`~repro.seq.records.ReadBatch` laid out mate-1s first, mate-2s
    second, so pair ``i`` is reads ``(i, n_pairs + i)`` — the convention
    :mod:`repro.scaffold` consumes.
    """

    genome: np.ndarray
    read_length: int
    coverage: float
    insert_size: int = 300
    insert_std: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        genome = np.asarray(self.genome, dtype=np.uint8)
        object.__setattr__(self, "genome", genome)
        if self.read_length < 2 or self.insert_size < 2 * self.read_length:
            raise DatasetError("need insert_size >= 2 * read_length >= 4")
        if self.insert_size >= genome.size:
            raise DatasetError("insert_size must be smaller than the genome")
        if self.coverage <= 0 or self.insert_std < 0:
            raise DatasetError("coverage > 0 and insert_std >= 0 required")

    @property
    def n_pairs(self) -> int:
        """Number of fragment pairs (2 reads each)."""
        return max(1, int(round(self.coverage * self.genome.size
                                / (2 * self.read_length))))

    def all_reads(self) -> tuple[ReadBatch, int]:
        """Materialize every read: ``(batch, n_pairs)``.

        ``batch`` holds ``2 * n_pairs`` reads: rows ``[0, n_pairs)`` are
        mate 1s, rows ``[n_pairs, 2 n_pairs)`` the matching mate 2s.
        """
        rng = np.random.default_rng(self.seed)
        n = self.n_pairs
        inserts = np.clip(
            np.round(rng.normal(self.insert_size, self.insert_std, size=n)),
            2 * self.read_length, self.genome.size - 1).astype(np.int64)
        starts = rng.integers(0, self.genome.size - inserts, size=n)
        window = np.arange(self.read_length, dtype=np.int64)
        mate1 = self.genome[starts[:, None] + window]
        tail_starts = starts + inserts - self.read_length
        mate2 = reverse_complement(self.genome[tail_starts[:, None] + window])
        codes = np.concatenate([mate1, mate2])
        return ReadBatch(np.ascontiguousarray(codes)), n

"""Registry of Table I analog datasets.

Each entry pairs the paper's *published* dataset statistics (read count,
base count, FASTQ bytes — used verbatim by the paper-scale cost model in
:mod:`repro.model`) with a recipe for a *scaled* synthetic analog: the same
read length, the same SGA-suggested minimum overlap, and the same coverage,
over a simulated genome whose size is the real genome scaled by a common
factor. Scaling data and memory budgets together preserves disk-pass counts
(DESIGN.md §1).

The scale factor defaults to :data:`DEFAULT_SCALE` and can be overridden
with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..errors import DatasetError
from .packing import PackedReadStore
from .records import ReadBatch
from .simulate import ReadSimulator, simulate_genome

#: Default dataset scale: ``hgenome_sim`` becomes ~2.5 Mbases of reads over a
#: ~62 kb genome — large enough to exercise multi-pass external sorting under
#: scaled budgets, small enough for CI.
DEFAULT_SCALE = 2e-5


def active_scale() -> float:
    """The dataset scale factor (``REPRO_SCALE`` env var or the default)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return DEFAULT_SCALE
    try:
        value = float(raw)
    except ValueError:
        raise DatasetError(f"REPRO_SCALE must be a float, got {raw!r}") from None
    if value <= 0:
        raise DatasetError("REPRO_SCALE must be positive")
    return value


@dataclass(frozen=True)
class PaperScale:
    """Published statistics of one Table I dataset."""

    reads: int
    bases: int
    size_bytes: int
    genome_bases: int


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset: paper statistics plus the scaled-analog recipe."""

    name: str
    paper_name: str
    read_length: int
    min_overlap: int
    paper: PaperScale
    error_rate: float = 0.0
    seed: int = 7

    @property
    def coverage(self) -> float:
        """Mean coverage implied by the paper's base and genome counts."""
        return self.paper.bases / self.paper.genome_bases

    def genome_length(self, scale: float | None = None) -> int:
        """Scaled simulated-genome length (≥ 4 read lengths)."""
        scale = active_scale() if scale is None else scale
        return max(self.read_length * 4, int(self.paper.genome_bases * scale))

    def simulator(self, scale: float | None = None) -> ReadSimulator:
        """Build the deterministic read simulator for this dataset."""
        genome = simulate_genome(self.genome_length(scale), seed=self.seed)
        return ReadSimulator(
            genome=genome,
            read_length=self.read_length,
            coverage=self.coverage,
            error_rate=self.error_rate,
            seed=self.seed + 1,
        )

    def scaled_reads(self, scale: float | None = None) -> int:
        """Number of reads the scaled analog will contain."""
        return self.simulator(scale).n_reads


def _table1() -> dict[str, DatasetSpec]:
    # Genome sizes: human chr14 ≈ 88 Mbp (GAGE), B. terrestris ≈ 249 Mbp,
    # M. undulatus ≈ 1.2 Gbp, human ≈ 3.1 Gbp.
    return {
        spec.name: spec
        for spec in (
            DatasetSpec(
                name="hchr14_sim",
                paper_name="H.Chr 14",
                read_length=101,
                min_overlap=63,
                paper=PaperScale(45_711_162, 4_559_613_772, int(9.2e9), 88_000_000),
            ),
            DatasetSpec(
                name="bumblebee_sim",
                paper_name="Bumblebee",
                read_length=124,
                min_overlap=85,
                paper=PaperScale(316_172_570, 33_562_702_234, int(85e9), 249_000_000),
            ),
            DatasetSpec(
                name="parakeet_sim",
                paper_name="Parakeet",
                read_length=150,
                min_overlap=111,
                paper=PaperScale(608_709_922, 91_306_488_300, int(203e9), 1_200_000_000),
            ),
            DatasetSpec(
                name="hgenome_sim",
                paper_name="H.Genome",
                read_length=100,
                min_overlap=63,
                paper=PaperScale(1_247_518_392, 124_751_839_200, int(398e9), 3_100_000_000),
            ),
        )
    }


_REGISTRY = _table1()


def dataset_registry() -> dict[str, DatasetSpec]:
    """All registered Table I analog specs, keyed by ``name``."""
    return dict(_REGISTRY)


def get_dataset(name: str) -> DatasetSpec:
    """Look up one spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(f"unknown dataset {name!r}; options: {sorted(_REGISTRY)}") from None


@dataclass(frozen=True)
class MaterializedDataset:
    """On-disk artefacts of a materialized dataset."""

    spec: DatasetSpec
    scale: float
    root: Path
    genome_path: Path
    store_path: Path
    n_reads: int
    n_bases: int

    def open_store(self, meter=None) -> PackedReadStore:
        """Open the packed read store for streaming."""
        return PackedReadStore.open(self.store_path, meter)

    def genome(self):
        """Load the reference genome codes (for quality metrics)."""
        import numpy as np

        return np.load(self.genome_path)


def materialize_dataset(spec: DatasetSpec | str, root: str | Path,
                        scale: float | None = None) -> MaterializedDataset:
    """Generate (or reuse a cached copy of) a dataset's on-disk artefacts.

    Produces the reference genome (``genome.npy``) and the packed read store
    (``reads.lsgr``) under ``root/<name>-<hash>/``. Idempotent: a matching
    cached copy is reused.
    """
    if isinstance(spec, str):
        spec = get_dataset(spec)
    scale = active_scale() if scale is None else scale
    params = {
        "name": spec.name,
        "read_length": spec.read_length,
        "scale": scale,
        "seed": spec.seed,
        "error_rate": spec.error_rate,
        "coverage": round(spec.coverage, 6),
    }
    digest = hashlib.sha256(json.dumps(params, sort_keys=True).encode()).hexdigest()[:12]
    root = Path(root)
    target = root / f"{spec.name}-{digest}"
    genome_path = target / "genome.npy"
    store_path = target / "reads.lsgr"
    manifest_path = target / "manifest.json"
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        return MaterializedDataset(
            spec, scale, target, genome_path, store_path,
            manifest["n_reads"], manifest["n_bases"],
        )
    target.mkdir(parents=True, exist_ok=True)
    simulator = spec.simulator(scale)
    import numpy as np

    np.save(genome_path, simulator.genome)
    with PackedReadStore.create(store_path, spec.read_length) as store:
        for batch in simulator.batches():
            store.append_batch(batch)
        n_reads = store.n_reads
    n_bases = n_reads * spec.read_length
    manifest_path.write_text(json.dumps({**params, "n_reads": n_reads, "n_bases": n_bases}))
    return MaterializedDataset(spec, scale, target, genome_path, store_path, n_reads, n_bases)


def tiny_dataset(tmp_root: str | Path, *, genome_length: int = 2000, read_length: int = 50,
                 coverage: float = 20.0, min_overlap: int = 25, seed: int = 3,
                 error_rate: float = 0.0) -> tuple[MaterializedDataset, ReadBatch]:
    """Create an ad-hoc miniature dataset (test helper, not in the registry).

    Returns the materialized artefacts plus the full in-memory read batch.
    """
    genome = simulate_genome(genome_length, seed=seed)
    simulator = ReadSimulator(genome=genome, read_length=read_length, coverage=coverage,
                              seed=seed + 1, error_rate=error_rate)
    root = Path(tmp_root) / f"tiny-{genome_length}-{read_length}-{seed}"
    root.mkdir(parents=True, exist_ok=True)
    import numpy as np

    genome_path = root / "genome.npy"
    np.save(genome_path, genome)
    store_path = root / "reads.lsgr"
    with PackedReadStore.create(store_path, read_length) as store:
        for batch in simulator.batches():
            store.append_batch(batch)
        n_reads = store.n_reads
    spec = DatasetSpec(
        name="tiny",
        paper_name="Tiny",
        read_length=read_length,
        min_overlap=min_overlap,
        paper=PaperScale(n_reads, n_reads * read_length, n_reads * read_length * 2,
                         genome_length),
        seed=seed,
        error_rate=error_rate,
    )
    materialized = MaterializedDataset(spec, 1.0, root, genome_path, store_path,
                                       n_reads, n_reads * read_length)
    return materialized, simulator.all_reads()

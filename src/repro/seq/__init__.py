"""DNA sequence substrate: codecs, I/O, simulation, datasets, statistics.

This package provides everything the assembler needs to get reads from disk
into 2-bit-encoded numpy batches and back:

* :mod:`repro.seq.alphabet` — base encoding, complement, reverse complement,
* :mod:`repro.seq.records` — fixed-length read batches as dense matrices,
* :mod:`repro.seq.fastq` — streaming FASTA/FASTQ readers and writers,
* :mod:`repro.seq.packing` — the packed on-disk read store (the "Load" phase
  output),
* :mod:`repro.seq.simulate` — reference-genome and shotgun-read simulators
  (the substitute for the paper's Illumina datasets),
* :mod:`repro.seq.datasets` — the registry of Table I analog datasets,
* :mod:`repro.seq.stats` — N50 and friends,
* :mod:`repro.seq.correction` — k-mer-spectrum error correction (the SGA
  pipeline stage the paper's comparison excludes), an optional
  preprocessor for noisy reads.
"""

from .alphabet import (
    decode,
    encode,
    complement_codes,
    reverse_complement,
    reverse_complement_str,
)
from .correction import (
    CorrectionReport,
    KmerSpectrumCorrector,
    correct_and_filter,
    correct_reads,
    filter_uncorrectable,
)
from .records import ReadBatch
from .fastq import read_fasta, read_fastq, write_fasta, write_fastq
from .packing import PackedReadStore
from .simulate import ReadSimulator, simulate_genome
from .datasets import DatasetSpec, dataset_registry, materialize_dataset
from .stats import assembly_stats, n50

__all__ = [
    "CorrectionReport",
    "KmerSpectrumCorrector",
    "correct_and_filter",
    "correct_reads",
    "filter_uncorrectable",
    "decode",
    "encode",
    "complement_codes",
    "reverse_complement",
    "reverse_complement_str",
    "ReadBatch",
    "read_fasta",
    "read_fastq",
    "write_fasta",
    "write_fastq",
    "PackedReadStore",
    "ReadSimulator",
    "simulate_genome",
    "DatasetSpec",
    "dataset_registry",
    "materialize_dataset",
    "assembly_stats",
    "n50",
]

"""k-mer-spectrum read error correction (the SGA pipeline's first stage).

The paper compares against SGA's *preprocess–index–overlap* phases and
explicitly excludes its error-correction stage; LaSAGNA itself assumes
exact fingerprint matches, so substitution errors directly destroy
overlaps. This module supplies that missing stage as an optional
preprocessor, in the classic k-mer-spectrum style (Kelley et al. "Quake";
SGA uses the same idea):

1. count all k-mers of the read set (both strands),
2. call a k-mer *solid* when its count reaches a threshold — with Illumina
   coverage c, true k-mers appear ~c times and error k-mers ~once,
3. for every read position covered only by weak k-mers, try the three
   alternative bases and accept a substitution that turns **all** k-mers
   covering that position solid.

One correction pass fixes isolated substitution errors (the dominant
Illumina error mode); ``examples``/tests show assembly contiguity recovering
on noisy reads once correction is applied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .alphabet import ALPHABET_SIZE
from .records import ReadBatch


def kmer_counts(codes: np.ndarray, k: int) -> dict[int, int]:
    """Count k-mers of a code matrix (2-bit packed keys → counts)."""
    from ..baselines.debruijn import encode_kmers

    kmers, counts = np.unique(encode_kmers(codes, k), return_counts=True)
    return dict(zip(kmers.tolist(), counts.tolist()))


@dataclass(frozen=True)
class CorrectionReport:
    """What one correction pass did."""

    reads_scanned: int
    reads_changed: int
    bases_corrected: int
    solid_threshold: int
    k: int


class KmerSpectrumCorrector:
    """Single-substitution corrector over a k-mer spectrum.

    Parameters
    ----------
    k:
        k-mer size; must satisfy ``k <= min(32, read_length)`` and should be
        large enough to be genome-unique but small enough that error-free
        k-mers still reach the solid threshold.
    solid_threshold:
        Minimum count for a k-mer to be trusted. ``0`` auto-selects from
        the spectrum: half the median count of the observed k-mers, at
        least 2 — a simple valley heuristic.
    """

    def __init__(self, k: int = 17, solid_threshold: int = 0):
        if solid_threshold < 0:
            raise ConfigError("solid_threshold must be >= 0 (0 = auto)")
        self.k = k
        self.solid_threshold = solid_threshold

    def _solid_set(self, batch: ReadBatch) -> tuple[set[int], int]:
        from ..baselines.debruijn import encode_kmers

        both = np.concatenate([
            encode_kmers(batch.codes, self.k),
            encode_kmers(batch.reverse_complements().codes, self.k),
        ])
        kmers, counts = np.unique(both, return_counts=True)
        threshold = self.solid_threshold
        if threshold == 0:
            threshold = max(2, int(np.median(counts[counts > 1])) // 2) \
                if (counts > 1).any() else 2
        return set(kmers[counts >= threshold].tolist()), threshold

    def correct(self, batch: ReadBatch) -> tuple[ReadBatch, CorrectionReport]:
        """Return a corrected copy of the batch plus a report."""
        if batch.n_reads == 0:
            return batch, CorrectionReport(0, 0, 0, max(1, self.solid_threshold),
                                           self.k)
        if not 2 <= self.k <= min(32, batch.read_length):
            raise ConfigError("k must be in [2, min(32, read_length)]")
        solid, threshold = self._solid_set(batch)
        k = self.k
        mask = (1 << (2 * k)) - 1
        codes = batch.codes.copy()
        length = batch.read_length
        reads_changed = 0
        bases_corrected = 0

        from ..baselines.debruijn import encode_kmers

        row_kmers = encode_kmers(codes, k).reshape(batch.n_reads, length - k + 1)
        weak_rows = np.nonzero([
            any(int(km) not in solid for km in row) for row in row_kmers
        ])[0]

        for row_index in weak_rows:
            row = codes[row_index]
            changed = self._correct_read(row, solid, k, mask, length)
            if changed:
                reads_changed += 1
                bases_corrected += changed
        return (ReadBatch(codes, batch.start_id),
                CorrectionReport(batch.n_reads, reads_changed, bases_corrected,
                                 threshold, k))

    def _correct_read(self, row: np.ndarray, solid: set[int], k: int,
                      mask: int, length: int) -> int:
        """Correct one read in place; returns bases changed."""

        def kmer_at(position: int) -> int:
            value = 0
            for code in row[position:position + k]:
                value = ((value << 2) | int(code)) & mask
            return value

        def window_solid(position: int) -> bool:
            return kmer_at(position) in solid

        corrected = 0
        position = 0
        while position <= length - k:
            if window_solid(position):
                position += 1
                continue
            # Maximal run of weak windows starting here. A single error at
            # base p weakens exactly the windows covering p, so the error
            # lies in the intersection of the run: [run_end, run_start+k-1].
            run_start = position
            run_end = position
            while run_end + 1 <= length - k and not window_solid(run_end + 1):
                run_end += 1
            candidates = range(run_end, min(run_start + k, length))
            fix = self._try_fix(row, solid, k, mask, length, candidates)
            if fix is None:
                position = run_end + 1
            else:
                corrected += 1
                position = fix + 1
        return corrected

    def _try_fix(self, row: np.ndarray, solid: set[int], k: int, mask: int,
                 length: int, candidates) -> int | None:
        """Try single-base substitutions over candidate positions.

        Accepts the unique (position, base) that makes every covering window
        solid; returns the fixed position or ``None`` (ambiguous/unfixable).
        """

        def window_solid(position: int) -> bool:
            value = 0
            for code in row[position:position + k]:
                value = ((value << 2) | int(code)) & mask
            return value in solid

        best: tuple[int, int] | None = None
        for error_at in candidates:
            original = int(row[error_at])
            for candidate in range(ALPHABET_SIZE):
                if candidate == original:
                    continue
                row[error_at] = candidate
                low = max(0, error_at - k + 1)
                high = min(length - k, error_at)
                if all(window_solid(p) for p in range(low, high + 1)):
                    if best is not None and best != (error_at, candidate):
                        row[error_at] = original
                        return None  # ambiguous
                    best = (error_at, candidate)
            row[error_at] = original
        if best is None:
            return None
        row[best[0]] = best[1]
        return best[0]


def correct_reads(batch: ReadBatch, *, k: int = 17, solid_threshold: int = 0
                  ) -> tuple[ReadBatch, CorrectionReport]:
    """Convenience wrapper around :class:`KmerSpectrumCorrector`."""
    return KmerSpectrumCorrector(k=k, solid_threshold=solid_threshold).correct(batch)


def filter_uncorrectable(batch: ReadBatch, *, k: int = 17,
                         solid_threshold: int = 0) -> tuple[ReadBatch, int]:
    """Drop reads that still contain weak k-mers (SGA's quality filter).

    Exact-overlap assembly cannot use a read with any surviving error —
    it simply finds no overlaps for it — so discarding the few reads the
    corrector could not fix recovers most of the clean-data contiguity.
    Returns the surviving reads (re-numbered from 0) and the drop count.
    """
    corrector = KmerSpectrumCorrector(k=k, solid_threshold=solid_threshold)
    solid, _ = corrector._solid_set(batch)
    from ..baselines.debruijn import encode_kmers

    width = batch.read_length - k + 1
    row_kmers = encode_kmers(batch.codes, k).reshape(batch.n_reads, width)
    solid_arr = np.array(sorted(solid), dtype=np.uint64)
    positions = np.searchsorted(solid_arr, row_kmers)
    positions = np.minimum(positions, solid_arr.shape[0] - 1)
    is_solid = solid_arr[positions] == row_kmers
    keep = is_solid.all(axis=1)
    return (ReadBatch(batch.codes[keep].copy(), 0),
            int((~keep).sum()))


def correct_and_filter(batch: ReadBatch, *, k: int = 17, solid_threshold: int = 0
                       ) -> tuple[ReadBatch, CorrectionReport, int]:
    """Correction pass followed by the uncorrectable-read filter."""
    corrected, report = correct_reads(batch, k=k, solid_threshold=solid_threshold)
    filtered, dropped = filter_uncorrectable(corrected, k=k,
                                             solid_threshold=solid_threshold)
    return filtered, report, dropped

"""The packed on-disk read store (output of the Load phase).

Reads are stored 2-bit-packed, four bases per byte, in a flat binary file
with a small fixed header. The store supports exactly the access patterns
the pipeline needs:

* sequential append while loading (write-only memory),
* sequential batch streaming for the map and compress phases (read-only
  memory),
* random slice access for tests and examples.

A 398 GB FASTQ human-genome dataset packs to ~29 GB in this form — the same
~13× reduction the paper exploits to re-stream reads cheaply during contig
generation.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator, Protocol

import numpy as np

from ..errors import DatasetError, StreamProtocolError
from ..faults import plan as faults
from .records import ReadBatch

_MAGIC = b"LSGR"
_VERSION = 1
_HEADER = struct.Struct("<4sIIQ")  # magic, version, read_length, n_reads

_PACK_WEIGHTS = np.array([1, 4, 16, 64], dtype=np.uint8)
_UNPACK_SHIFTS = np.array([0, 2, 4, 6], dtype=np.uint8)


class IOMeter(Protocol):
    """Minimal disk-accounting protocol (implemented by extmem's accountant)."""

    def add_read(self, nbytes: int) -> None:
        """Record a sequential read of ``nbytes``."""
        ...

    def add_write(self, nbytes: int) -> None:
        """Record a sequential write of ``nbytes``."""
        ...


def pack_codes(codes: np.ndarray) -> np.ndarray:
    """Pack a ``(n, L)`` code matrix into ``(n, ceil(L/4))`` bytes."""
    codes = np.asarray(codes, dtype=np.uint8)
    n, length = codes.shape
    padded_len = -(-length // 4) * 4
    if padded_len != length:
        padded = np.zeros((n, padded_len), dtype=np.uint8)
        padded[:, :length] = codes
        codes = padded
    groups = codes.reshape(n, padded_len // 4, 4)
    return (groups * _PACK_WEIGHTS).sum(axis=2, dtype=np.uint8)


def unpack_codes(packed: np.ndarray, read_length: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`; returns a ``(n, read_length)`` matrix."""
    packed = np.asarray(packed, dtype=np.uint8)
    n = packed.shape[0]
    expanded = (packed[:, :, None] >> _UNPACK_SHIFTS) & np.uint8(3)
    return expanded.reshape(n, -1)[:, :read_length].copy()


class PackedReadStore:
    """Create or open a packed read file.

    Use :meth:`create` + :meth:`append_batch` + :meth:`close` to write, and
    :meth:`open` + :meth:`iter_batches`/:meth:`read_slice` to read. Writing
    and reading modes are exclusive, enforcing the paper's read-only /
    write-only file discipline.
    """

    def __init__(self, path: Path, mode: str, read_length: int, n_reads: int,
                 meter: IOMeter | None):
        self._path = path
        self._mode = mode
        self._read_length = read_length
        self._n_reads = n_reads
        self._meter = meter
        self._bytes_per_read = -(-read_length // 4)
        self._handle = open(path, "wb" if mode == "w" else "rb")
        if mode == "w":
            self._handle.write(_HEADER.pack(_MAGIC, _VERSION, read_length, 0))
        else:
            self._handle.seek(_HEADER.size)

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, read_length: int,
               meter: IOMeter | None = None) -> "PackedReadStore":
        """Open a new store for sequential writing."""
        if read_length < 1:
            raise DatasetError("read_length must be >= 1")
        return cls(Path(path), "w", read_length, 0, meter)

    @classmethod
    def open(cls, path: str | Path, meter: IOMeter | None = None) -> "PackedReadStore":
        """Open an existing store for reading."""
        path = Path(path)
        with open(path, "rb") as handle:
            header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise DatasetError(f"{path}: truncated packed-read header")
        magic, version, read_length, n_reads = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise DatasetError(f"{path}: not a packed read store")
        if version != _VERSION:
            raise DatasetError(f"{path}: unsupported store version {version}")
        return cls(path, "r", read_length, n_reads, meter)

    # -- metadata ----------------------------------------------------------

    @property
    def path(self) -> Path:
        """Location of the store file."""
        return self._path

    @property
    def read_length(self) -> int:
        """Fixed length of every stored read."""
        return self._read_length

    @property
    def n_reads(self) -> int:
        """Number of reads currently in the store."""
        return self._n_reads

    @property
    def nbytes(self) -> int:
        """Packed payload size in bytes (excluding the header)."""
        return self._n_reads * self._bytes_per_read

    # -- writing -----------------------------------------------------------

    def append_batch(self, batch: ReadBatch) -> None:
        """Append a batch of reads (write mode only)."""
        if self._mode != "w":
            raise StreamProtocolError("store is open read-only")
        if batch.read_length != self._read_length and batch.n_reads:
            raise DatasetError(
                f"batch read length {batch.read_length} != store length {self._read_length}"
            )
        packed = pack_codes(batch.codes)
        faults.deliver_write(self._path, packed.tobytes(), self._handle)
        if self._meter is not None:
            self._meter.add_write(packed.nbytes)
        self._n_reads += batch.n_reads

    def close(self) -> None:
        """Finalize (write mode: patch the read count into the header)."""
        if self._handle.closed:
            return
        if self._mode == "w":
            # The header patch is the store's commit point: a crash just
            # before it leaves n_reads=0, which a resumed load re-runs.
            self._handle.seek(0)
            faults.deliver_write(
                self._path,
                _HEADER.pack(_MAGIC, _VERSION, self._read_length, self._n_reads),
                self._handle)
        self._handle.close()

    def __enter__(self) -> "PackedReadStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def read_packed_slice(self, start: int, stop: int) -> np.ndarray:
        """Raw packed bytes of reads ``[start, stop)`` as ``(n, ceil(L/4))``.

        The 2-bit-packed form is ~4× smaller than the decoded code matrix,
        which is what the process-backed map phase ships through shared
        memory (workers unpack on their own CPU). Same fault-injection and
        disk-accounting path as :meth:`read_slice` — the decoded variant
        is exactly ``unpack_codes`` over this.
        """
        if self._mode != "r":
            raise StreamProtocolError("store is open write-only")
        if not 0 <= start <= stop <= self._n_reads:
            raise DatasetError(f"slice [{start}, {stop}) out of range 0..{self._n_reads}")
        count = stop - start
        self._handle.seek(_HEADER.size + start * self._bytes_per_read)
        raw = faults.filter_read(self._path,
                                 self._handle.read(count * self._bytes_per_read))
        if self._meter is not None:
            self._meter.add_read(len(raw))
        return np.frombuffer(raw, dtype=np.uint8).reshape(count, self._bytes_per_read)

    def read_slice(self, start: int, stop: int) -> ReadBatch:
        """Random-access decode of reads ``[start, stop)`` (read mode only)."""
        packed = self.read_packed_slice(start, stop)
        return ReadBatch(unpack_codes(packed, self._read_length), start_id=start)

    def iter_batches(self, batch_reads: int) -> Iterator[ReadBatch]:
        """Stream the whole store as batches of at most ``batch_reads``."""
        if batch_reads < 1:
            raise DatasetError("batch_reads must be >= 1")
        for start in range(0, self._n_reads, batch_reads):
            yield self.read_slice(start, min(start + batch_reads, self._n_reads))

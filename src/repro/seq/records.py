"""Fixed-length read batches.

Illumina runs produce reads of one fixed length per dataset (Table I:
100–150 bp), which is what makes the paper's block-per-read GPU kernels and
per-length partitioning work. :class:`ReadBatch` models a batch of such reads
as a dense ``(n_reads, read_length)`` ``uint8`` code matrix plus the global
read-id of its first row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import DatasetError
from .alphabet import decode, encode, reverse_complement


@dataclass(frozen=True)
class ReadBatch:
    """A contiguous batch of fixed-length reads.

    Attributes
    ----------
    codes:
        ``(n_reads, read_length)`` ``uint8`` matrix of 2-bit base codes.
    start_id:
        Global index of the first read; row ``i`` is read ``start_id + i``.
    """

    codes: np.ndarray
    start_id: int = 0

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes, dtype=np.uint8)
        if codes.ndim != 2:
            raise DatasetError("ReadBatch requires a 2-D (n_reads, read_length) matrix")
        object.__setattr__(self, "codes", codes)
        if self.start_id < 0:
            raise DatasetError("start_id must be non-negative")

    @staticmethod
    def from_strings(reads: list[str] | tuple[str, ...], *, start_id: int = 0,
                     on_invalid: str = "strict") -> "ReadBatch":
        """Build a batch from equal-length ASCII reads."""
        if not reads:
            return ReadBatch(np.empty((0, 0), dtype=np.uint8), start_id)
        length = len(reads[0])
        if any(len(r) != length for r in reads):
            raise DatasetError("all reads in a batch must have the same length")
        flat = encode("".join(reads), on_invalid=on_invalid)
        return ReadBatch(flat.reshape(len(reads), length), start_id)

    @property
    def n_reads(self) -> int:
        """Number of reads in the batch."""
        return self.codes.shape[0]

    @property
    def read_length(self) -> int:
        """Length of every read in the batch."""
        return self.codes.shape[1]

    @property
    def read_ids(self) -> np.ndarray:
        """Global read-ids of the rows, ``uint32``."""
        return (self.start_id + np.arange(self.n_reads, dtype=np.uint64)).astype(np.uint32)

    def reverse_complements(self) -> "ReadBatch":
        """The reverse complement of every read, same ids."""
        return ReadBatch(reverse_complement(self.codes), self.start_id)

    def strings(self) -> list[str]:
        """Decode all reads to ASCII (test/debug helper; O(n·L) strings)."""
        return [decode(row) for row in self.codes]

    def __len__(self) -> int:
        return self.n_reads

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.codes)

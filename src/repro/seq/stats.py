"""Length statistics for read sets and assemblies (N50 and friends)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import DatasetError


def n50(lengths: Sequence[int] | np.ndarray) -> int:
    """The N50 of a set of contig lengths.

    N50 is the largest length ``L`` such that contigs of length ≥ ``L``
    cover at least half the total assembled bases — the standard contiguity
    metric for assemblies.
    """
    arr = np.asarray(lengths, dtype=np.int64)
    if arr.size == 0:
        return 0
    if (arr <= 0).any():
        raise DatasetError("contig lengths must be positive")
    ordered = np.sort(arr)[::-1]
    cumulative = np.cumsum(ordered)
    half = cumulative[-1] / 2.0
    return int(ordered[np.searchsorted(cumulative, half)])


def nx(lengths: Sequence[int] | np.ndarray, fraction: float) -> int:
    """Generalized Nx (e.g. ``fraction=0.9`` for N90)."""
    if not 0.0 < fraction < 1.0:
        raise DatasetError("fraction must be in (0, 1)")
    arr = np.asarray(lengths, dtype=np.int64)
    if arr.size == 0:
        return 0
    ordered = np.sort(arr)[::-1]
    cumulative = np.cumsum(ordered)
    return int(ordered[np.searchsorted(cumulative, cumulative[-1] * fraction)])


def gc_content(codes: np.ndarray) -> float:
    """Fraction of G/C bases in a code array (codes 1 and 2)."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size == 0:
        return 0.0
    return float(np.count_nonzero((codes == 1) | (codes == 2)) / codes.size)


def assembly_stats(contig_lengths: Iterable[int]) -> dict[str, int | float]:
    """Summary statistics of an assembly's contig lengths."""
    arr = np.asarray(list(contig_lengths), dtype=np.int64)
    if arr.size == 0:
        return {"n_contigs": 0, "total_bases": 0, "max_contig": 0,
                "mean_contig": 0.0, "n50": 0, "n90": 0}
    return {
        "n_contigs": int(arr.size),
        "total_bases": int(arr.sum()),
        "max_contig": int(arr.max()),
        "mean_contig": float(arr.mean()),
        "n50": n50(arr),
        "n90": nx(arr, 0.9),
    }

"""Streaming FASTA/FASTQ readers and writers.

The load phase consumes FASTQ (the format every Table I dataset ships in)
and the contig output is FASTA. Both readers are generators that never hold
more than one record in memory, matching the read-only-memory contract of
the semi-streaming model; batch helpers group records for the GPU.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..errors import DatasetError
from .records import ReadBatch


def _open_text(path: str | Path | TextIO, mode: str = "r") -> tuple[TextIO, bool]:
    if hasattr(path, "read") or hasattr(path, "write"):
        return path, False  # caller-owned handle
    return open(path, mode, encoding="ascii", buffering=io.DEFAULT_BUFFER_SIZE * 16), True


def read_fastq(path: str | Path | TextIO) -> Iterator[tuple[str, str, str]]:
    """Yield ``(name, sequence, quality)`` triples from a FASTQ file."""
    handle, owned = _open_text(path)
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise DatasetError(f"malformed FASTQ: expected '@', got {header[:20]!r}")
            seq = handle.readline().rstrip("\n")
            plus = handle.readline().rstrip("\n")
            qual = handle.readline().rstrip("\n")
            if not plus.startswith("+"):
                raise DatasetError("malformed FASTQ: missing '+' separator line")
            if len(qual) != len(seq):
                raise DatasetError("malformed FASTQ: quality length != sequence length")
            yield header[1:], seq, qual
    finally:
        if owned:
            handle.close()


def read_fasta(path: str | Path | TextIO) -> Iterator[tuple[str, str]]:
    """Yield ``(name, sequence)`` pairs from a (possibly wrapped) FASTA file."""
    handle, owned = _open_text(path)
    try:
        name: str | None = None
        chunks: list[str] = []
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield name, "".join(chunks)
                name = line[1:]
                chunks = []
            else:
                if name is None:
                    raise DatasetError("malformed FASTA: sequence before first header")
                chunks.append(line)
        if name is not None:
            yield name, "".join(chunks)
    finally:
        if owned:
            handle.close()


def write_fastq(path: str | Path | TextIO, records: Iterable[tuple[str, str, str]]) -> int:
    """Write ``(name, sequence, quality)`` records; returns the record count."""
    handle, owned = _open_text(path, "w")
    count = 0
    try:
        for name, seq, qual in records:
            handle.write(f"@{name}\n{seq}\n+\n{qual}\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def write_fasta(path: str | Path | TextIO, records: Iterable[tuple[str, str]],
                *, line_width: int = 70) -> int:
    """Write ``(name, sequence)`` records wrapped at ``line_width`` columns."""
    handle, owned = _open_text(path, "w")
    count = 0
    try:
        for name, seq in records:
            handle.write(f">{name}\n")
            for start in range(0, len(seq), line_width):
                handle.write(seq[start:start + line_width] + "\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def fastq_read_batches(path: str | Path, *, batch_reads: int,
                       on_invalid: str = "strict") -> Iterator[ReadBatch]:
    """Stream a FASTQ file as :class:`ReadBatch` objects of ``batch_reads``.

    All reads must share one length (fixed-length Illumina datasets); a
    mismatch raises :class:`~repro.errors.DatasetError`.
    """
    if batch_reads < 1:
        raise DatasetError("batch_reads must be >= 1")
    pending: list[str] = []
    start_id = 0
    read_length: int | None = None
    for _, seq, _ in read_fastq(path):
        if read_length is None:
            read_length = len(seq)
        elif len(seq) != read_length:
            raise DatasetError(
                f"variable read length ({len(seq)} vs {read_length}); "
                "fixed-length datasets are required (see DESIGN.md)"
            )
        pending.append(seq)
        if len(pending) == batch_reads:
            yield ReadBatch.from_strings(pending, start_id=start_id, on_invalid=on_invalid)
            start_id += len(pending)
            pending = []
    if pending:
        yield ReadBatch.from_strings(pending, start_id=start_id, on_invalid=on_invalid)

"""Shared per-run state: budgets, meters, the virtual device, the clock."""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from ..config import AssemblyConfig
from ..device import SimClock, VirtualGPU
from ..device.memory import BufferPool, MemoryPool
from ..device.specs import DiskSpec, HostSpec
from ..errors import HostMemoryError
from ..extmem import IOAccountant
from ..faults import plan as faults
from ..fingerprint import FingerprintScheme
from ..parallel import PipelineExecutor
from ..telemetry import Telemetry
from ..trace.tracer import NULL_TRACER


class RunContext:
    """Everything one pipeline run shares across phases.

    Owns the working directory (a temp dir unless supplied), the simulated
    clock, the virtual GPU (capacity = the configured device budget), the
    host memory pool, the disk accountant, and the telemetry registry.
    """

    def __init__(self, config: AssemblyConfig, *, workdir: str | Path | None = None,
                 disk: DiskSpec | None = None, host: HostSpec | None = None,
                 tracer=None):
        self.config = config
        self._owns_workdir = workdir is None
        self.workdir = Path(tempfile.mkdtemp(prefix="lasagna-")) if workdir is None \
            else Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.disk = disk if disk is not None else DiskSpec()
        self.host_spec = host if host is not None else HostSpec()
        self.clock = SimClock()
        self.accountant = IOAccountant(self.disk, self.clock)
        self.gpu = VirtualGPU(config.device_name,
                              capacity_bytes=config.memory.device_bytes,
                              clock=self.clock,
                              buffers=BufferPool(
                                  config.pool_max_bytes or config.memory.device_bytes,
                                  enabled=config.buffer_pool))
        self.host_pool = MemoryPool("host", config.memory.host_bytes, HostMemoryError)
        self.scheme = FingerprintScheme(lanes=config.fingerprint_lanes,
                                        seed=config.seed & 0xFFFF)
        # The run's tracer view: the caller's tracer (a SpanTracer for a
        # traced single run, a node-prefixed BoundTracer in a distributed
        # cluster) bound to this context's simulated clock, so every span
        # recorded below carries correct modeled timestamps.
        self.tracer = (tracer if tracer is not None else NULL_TRACER).bind(
            lambda: self.clock.total_seconds)
        # The pipelined executor (workers=1 ⇒ pure serial). Output is
        # byte-identical for any worker count and backend; an armed fault
        # plan forces serial execution at call time, whatever the config
        # says. Built before any helper thread exists so the process
        # backend can fork a single-threaded parent.
        self.executor = PipelineExecutor(config.resolved_workers(),
                                         tracer=self.tracer,
                                         backend=config.resolved_backend())
        self.telemetry = Telemetry(tracer=self.tracer)
        self.telemetry.register(self.clock)
        self.telemetry.register(self.accountant)
        self.telemetry.register(self.gpu.pool)
        self.telemetry.register(self.host_pool)
        self.telemetry.register(self.executor.meter)
        # Under chaos injection, fault events show up as per-phase counters
        # (faults_injected, fault_ops, …) so benchmarks can report which
        # phase absorbed the failures and what recovery cost.
        fault_plan = faults.active_plan()
        if fault_plan is not None:
            self.telemetry.register(fault_plan.meter)

    def charge_host(self, nbytes_touched: int) -> None:
        """Charge modeled host-side streaming work to the clock."""
        from ..device import costs

        self.clock.charge("host", costs.host_work_seconds(self.host_spec, nbytes_touched))

    def cleanup(self) -> None:
        """Release the executor and remove an owned working directory."""
        self.executor.shutdown()
        if self._owns_workdir and not self.config.keep_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)

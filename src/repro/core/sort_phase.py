"""Sort phase: external sort of every partition by fingerprint (§III.B).

Each ``(side, length)`` partition file is sorted independently through the
two-level :class:`~repro.extmem.sort.ExternalSorter` — disk blocks of
``m_h`` records buffered in host memory, device chunks of ``m_d`` records
sorted/merged on the virtual GPU. The unsorted partition is deleted once
its sorted counterpart exists (write-only/read-only file discipline).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..extmem import ExternalSorter, PartitionStore
from ..extmem.sort import SortReport
from .context import RunContext


@dataclass(frozen=True)
class SortPhaseReport:
    """Aggregate of all partition sorts."""

    reports: dict[tuple[str, int], SortReport]

    @property
    def total_records(self) -> int:
        """Records sorted across all partitions."""
        return sum(r.n_records for r in self.reports.values())

    @property
    def max_disk_passes(self) -> int:
        """Worst-case disk passes over any one partition."""
        return max((r.disk_passes for r in self.reports.values()), default=0)


def make_sorter(ctx: RunContext, dtype) -> ExternalSorter:
    """Build the external sorter for this run's budgets and record dtype."""
    m_h, m_d = ctx.config.resolved_blocks(dtype.itemsize)
    return ExternalSorter(gpu=ctx.gpu, host_pool=ctx.host_pool,
                          accountant=ctx.accountant, dtype=dtype,
                          host_block_pairs=m_h, device_block_pairs=m_d,
                          merge_fanout=ctx.config.merge_fanout,
                          executor=ctx.executor, tracer=ctx.tracer)


def run_sort(ctx: RunContext, partitions: PartitionStore) -> SortPhaseReport:
    """Sort every S/P partition in place; returns per-partition reports.

    A resumed run may find some partitions already sorted (their unsorted
    input consumed by the interrupted attempt); their reports are
    reconstructed from the sorted record count so the phase report is
    identical to an uninterrupted run's.
    """
    sorter = make_sorter(ctx, partitions.dtype)
    reports: dict[tuple[str, int], SortReport] = {}
    for length in partitions.lengths():
        for side in ("S", "P"):
            unsorted_path = partitions.path(side, length)
            sorted_path = partitions.path(side, length, sorted_run=True)
            if not unsorted_path.exists():
                if sorted_path.exists():
                    reports[(side, length)] = sorter.report_for(
                        partitions.records_in(side, length, sorted_run=True))
                continue
            reports[(side, length)] = sorter.sort_file(unsorted_path, sorted_path)
            partitions.delete(side, length)
    return SortPhaseReport(reports)

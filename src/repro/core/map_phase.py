"""Map phase: fingerprint generation and length partitioning (§III.A).

Batches of reads stream host→device; for each read *and its reverse
complement* the fingerprints of every prefix and suffix are produced by the
Hillis–Steele scan kernels of :mod:`repro.fingerprint.scan` (one virtual
kernel launch per hash lane per direction per orientation). Each
``(length, fingerprint, vertex)`` tuple is then routed to the per-length
partition files:

* lengths below ``l_min`` are discarded (too short to be an overlap),
* length ``l_max`` (whole-read matches) is dropped to avoid self-loops,
* suffix tuples go to the ``S`` partition of their length, prefixes to the
  ``P`` partition.

The paper materializes the tuples on the GPU, sorts them by length, and
writes one file per partition; routing by direct slicing (column ``l`` of
the fingerprint matrix *is* the length partition) is the same mapping
without the intermediate sort, and produces byte-identical partition files.
Routing is fully vectorized: one fancy-indexed gather per orientation
builds the whole ``(n_lengths × n_batch)`` prefix/suffix record block,
instead of ~2·L per-length Python record assemblies per batch.

Execution is pipelined through :class:`~repro.parallel.PipelineExecutor`:
a background producer prefetches packed-read batches off disk (depth 2)
while pool workers fingerprint the in-flight batches. Partition appends —
and all modeled accounting (scratch reservations, kernel charges) — happen
on the main thread in strict batch order, so partition files *and* modeled
costs are identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..extmem import PartitionStore
from ..extmem.records import AUX_FIELD, KEY_FIELD, VAL_FIELD, kv_dtype
from ..seq.alphabet import reverse_complement
from ..seq.packing import PackedReadStore
from .context import RunContext

#: Batches the prefetch producer keeps in flight ahead of the workers.
PREFETCH_DEPTH = 2


def per_read_device_bytes(read_length: int, lanes: int) -> int:
    """Device working set of one read in the map phase, in bytes.

    Per read and orientation the device holds the code row plus, per hash
    lane, two ``uint64`` fingerprint rows and the packed key row (prefix
    and suffix each): ``L · (1 + 8·6·lanes)`` bytes, times 2 orientations.
    Single source of truth for both the auto batch sizing and the per-batch
    scratch reservation.
    """
    return 2 * read_length * (1 + 8 * 6 * lanes)


def _auto_batch_reads(ctx: RunContext, read_length: int) -> int:
    """Largest batch whose device working set fits the device budget."""
    per_read = per_read_device_bytes(read_length, ctx.config.fingerprint_lanes)
    budget = int(ctx.config.memory.device_bytes * ctx.config.memory.buffer_fraction)
    return max(1, budget // per_read)


def overlap_lengths(ctx: RunContext, read_length: int) -> tuple[int, ...]:
    """The partition lengths ``[l_min, l_max)`` for this run."""
    l_min = ctx.config.min_overlap
    if l_min >= read_length:
        raise ConfigError(
            f"min_overlap {l_min} must be smaller than the read length {read_length}")
    return tuple(range(l_min, read_length))


@dataclass(frozen=True)
class MapReport:
    """What the map phase produced."""

    n_reads: int
    n_batches: int
    tuples_written: int
    lengths: tuple[int, ...]


def _record_blocks(prefix_keys, suffix_keys, vertices: np.ndarray,
                   prefix_cols: np.ndarray, suffix_cols: np.ndarray,
                   dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
    """Gather the full per-length record blocks for one orientation.

    Row ``j`` of each returned ``(n_lengths, n_batch)`` block holds exactly
    the records the per-length loop used to assemble one
    ``make_records`` call at a time — same values, same field layout, so
    the partition bytes are unchanged.
    """
    lanes = 2 if AUX_FIELD in (dtype.names or ()) else 1
    prefix_block = np.empty((prefix_cols.shape[0], vertices.shape[0]), dtype=dtype)
    suffix_block = np.empty_like(prefix_block)
    prefix_block[KEY_FIELD] = prefix_keys[0][:, prefix_cols].T
    suffix_block[KEY_FIELD] = suffix_keys[0][:, suffix_cols].T
    prefix_block[VAL_FIELD] = vertices
    suffix_block[VAL_FIELD] = vertices
    if lanes == 2:
        prefix_block[AUX_FIELD] = prefix_keys[1][:, prefix_cols].T
        suffix_block[AUX_FIELD] = suffix_keys[1][:, suffix_cols].T
    return prefix_block, suffix_block


def run_map(ctx: RunContext, store: PackedReadStore,
            partitions: PartitionStore | None = None, *,
            read_range: tuple[int, int] | None = None,
            only_lengths: frozenset[int] | set[int] | None = None,
            ) -> tuple[PartitionStore, MapReport]:
    """Fingerprint reads and write the S/P length partitions.

    ``read_range`` restricts the phase to reads ``[start, stop)`` — the unit
    of work the distributed master hands to a node; by default the whole
    store is mapped. An existing ``partitions`` store may be passed so a
    node can accumulate several blocks before finalizing (the caller then
    owns ``finalize()``); otherwise one is created and finalized here.
    ``only_lengths`` keeps appends (not the fingerprinting itself) to the
    given partition lengths — how node recovery recomputes a lost peer's
    piece of one partition byte-identically without rewriting every length.
    """
    read_length = store.read_length
    lengths = overlap_lengths(ctx, read_length)
    batch_reads = ctx.config.map_batch_reads or _auto_batch_reads(ctx, read_length)

    dtype = kv_dtype(ctx.config.fingerprint_lanes)
    caller_owns_store = partitions is not None
    if partitions is None:
        partitions = PartitionStore(ctx.workdir / "partitions", dtype, ctx.accountant)
    lanes = ctx.config.fingerprint_lanes
    per_read = per_read_device_bytes(read_length, lanes)
    n_batches = 0
    tuples_written = 0
    start, stop = read_range if read_range is not None else (0, store.n_reads)
    lengths_arr = np.asarray(lengths, dtype=np.intp)
    prefix_cols = lengths_arr - 1
    suffix_cols = read_length - lengths_arr

    def batches():
        for batch_start in range(start, stop, batch_reads):
            yield store.read_slice(batch_start, min(batch_start + batch_reads, stop))

    def fingerprint(batch):
        """Worker-side compute: pure numpy, no modeled-hardware access."""
        orientations = []
        for orientation in (0, 1):
            codes = batch.codes if orientation == 0 else reverse_complement(batch.codes)
            vertices = (batch.read_ids.astype(np.uint32) << np.uint32(1)) \
                | np.uint32(orientation)
            prefix_keys, suffix_keys = ctx.scheme.key_matrices(codes)
            blocks = _record_blocks(prefix_keys, suffix_keys, vertices,
                                    prefix_cols, suffix_cols, dtype)
            orientations.append((codes.nbytes, blocks))
        return batch.n_reads, orientations

    executor = ctx.executor
    tracer = ctx.tracer
    try:
        stream = executor.map_ordered(
            fingerprint, executor.prefetch(batches(), depth=PREFETCH_DEPTH))
        for n, orientations in stream:
            n_batches += 1
            # Modeled accounting stays on the main thread, in batch order:
            # scratch reservations, kernel charges and partition appends
            # are identical to the serial schedule for any worker count.
            # The batch span is det=False: the prefetch thread charges the
            # accountant from read_slice, so mid-phase simulated stamps
            # depend on the worker count.
            with tracer.span("map:batch", track="pipeline",
                             batch=n_batches, reads=n), \
                    ctx.gpu.scratch(n * per_read, label="map-batch"), \
                    ctx.host_pool.alloc(n * per_read, label="map-host-buffers"):
                for orientation, (codes_nbytes, blocks) in enumerate(orientations):
                    if orientation == 1:
                        ctx.gpu.charge_elementwise(codes_nbytes * 2)
                    # One scan launch per hash lane per direction (Figs. 5-6).
                    for _ in range(2 * 2 * lanes):
                        ctx.gpu.charge_scan_kernel(n, read_length)
                    prefix_block, suffix_block = blocks
                    appended = 0
                    for j, length in enumerate(lengths):
                        if only_lengths is not None and length not in only_lengths:
                            continue
                        partitions.append("P", length, prefix_block[j])
                        partitions.append("S", length, suffix_block[j])
                        tuples_written += 2 * n
                        appended += 1
                    ctx.gpu.charge_elementwise(2 * n * appended * dtype.itemsize)
    finally:
        # Even on an injected crash the writers must close: the in-process
        # crash loop re-runs the pipeline, and a stale _OPEN_PATHS entry
        # would wrongly reject the recovery run's writers.
        if not caller_owns_store:
            partitions.finalize()
    return partitions, MapReport(stop - start, n_batches, tuples_written, lengths)

"""Map phase: fingerprint generation and length partitioning (§III.A).

Batches of reads stream host→device; for each read *and its reverse
complement* the fingerprints of every prefix and suffix are produced by the
Hillis–Steele scan kernels of :mod:`repro.fingerprint.scan` (one virtual
kernel launch per hash lane per direction per orientation). Each
``(length, fingerprint, vertex)`` tuple is then routed to the per-length
partition files:

* lengths below ``l_min`` are discarded (too short to be an overlap),
* length ``l_max`` (whole-read matches) is dropped to avoid self-loops,
* suffix tuples go to the ``S`` partition of their length, prefixes to ``P``.

The paper materializes the tuples on the GPU, sorts them by length, and
writes one file per partition; routing by direct slicing (column ``l`` of
the fingerprint matrix *is* the length partition) is the same mapping
without the intermediate sort, and produces byte-identical partition files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..extmem import PartitionStore
from ..extmem.records import kv_dtype, make_records
from ..seq.alphabet import reverse_complement
from ..seq.packing import PackedReadStore
from .context import RunContext


@dataclass(frozen=True)
class MapReport:
    """What the map phase produced."""

    n_reads: int
    n_batches: int
    tuples_written: int
    lengths: tuple[int, ...]


def _auto_batch_reads(ctx: RunContext, read_length: int) -> int:
    """Largest batch whose device working set fits the device budget.

    Per read and orientation the device holds the code row plus, per hash
    lane, two ``uint64`` fingerprint rows and the packed key row (prefix and
    suffix each): ``L · (1 + 8·6·lanes)`` bytes, times 2 orientations.
    """
    lanes = ctx.config.fingerprint_lanes
    per_read = 2 * read_length * (1 + 8 * 6 * lanes)
    budget = int(ctx.config.memory.device_bytes * ctx.config.memory.buffer_fraction)
    return max(1, budget // per_read)


def overlap_lengths(ctx: RunContext, read_length: int) -> tuple[int, ...]:
    """The partition lengths ``[l_min, l_max)`` for this run."""
    l_min = ctx.config.min_overlap
    if l_min >= read_length:
        raise ConfigError(
            f"min_overlap {l_min} must be smaller than the read length {read_length}")
    return tuple(range(l_min, read_length))


def run_map(ctx: RunContext, store: PackedReadStore,
            partitions: PartitionStore | None = None, *,
            read_range: tuple[int, int] | None = None,
            ) -> tuple[PartitionStore, MapReport]:
    """Fingerprint reads and write the S/P length partitions.

    ``read_range`` restricts the phase to reads ``[start, stop)`` — the unit
    of work the distributed master hands to a node; by default the whole
    store is mapped. An existing ``partitions`` store may be passed so a
    node can accumulate several blocks before finalizing (the caller then
    owns ``finalize()``); otherwise one is created and finalized here.
    """
    read_length = store.read_length
    lengths = overlap_lengths(ctx, read_length)
    batch_reads = ctx.config.map_batch_reads or _auto_batch_reads(ctx, read_length)

    dtype = kv_dtype(ctx.config.fingerprint_lanes)
    caller_owns_store = partitions is not None
    if partitions is None:
        partitions = PartitionStore(ctx.workdir / "partitions", dtype, ctx.accountant)
    lanes = ctx.config.fingerprint_lanes
    n_batches = 0
    tuples_written = 0
    start, stop = read_range if read_range is not None else (0, store.n_reads)

    def batches():
        for batch_start in range(start, stop, batch_reads):
            yield store.read_slice(batch_start, min(batch_start + batch_reads, stop))

    try:
        for batch in batches():
            n_batches += 1
            n = batch.n_reads
            per_read = 2 * read_length * (1 + 8 * 6 * lanes)
            with ctx.gpu.scratch(n * per_read, label="map-batch"), \
                    ctx.host_pool.alloc(n * per_read, label="map-host-buffers"):
                for orientation in (0, 1):
                    codes = batch.codes if orientation == 0 else reverse_complement(batch.codes)
                    if orientation == 1:
                        ctx.gpu.charge_elementwise(codes.nbytes * 2)
                    vertices = (batch.read_ids.astype(np.uint32) << np.uint32(1)) \
                        | np.uint32(orientation)
                    # One scan launch per hash lane per direction (Figs. 5-6).
                    prefix_keys, suffix_keys = ctx.scheme.key_matrices(codes)
                    for _ in range(2 * 2 * lanes):
                        ctx.gpu.charge_scan_kernel(n, read_length)
                    for length in lengths:
                        prefix_records = make_records(
                            prefix_keys[0][:, length - 1], vertices,
                            prefix_keys[1][:, length - 1] if lanes == 2 else None)
                        suffix_records = make_records(
                            suffix_keys[0][:, read_length - length], vertices,
                            suffix_keys[1][:, read_length - length] if lanes == 2 else None)
                        partitions.append("P", length, prefix_records)
                        partitions.append("S", length, suffix_records)
                        tuples_written += 2 * n
                    ctx.gpu.charge_elementwise(2 * n * len(lengths) * dtype.itemsize)
    finally:
        # Even on an injected crash the writers must close: the in-process
        # crash loop re-runs the pipeline, and a stale _OPEN_PATHS entry
        # would wrongly reject the recovery run's writers.
        if not caller_owns_store:
            partitions.finalize()
    return partitions, MapReport(stop - start, n_batches, tuples_written, lengths)

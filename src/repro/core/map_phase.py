"""Map phase: fingerprint generation and length partitioning (§III.A).

Batches of reads stream host→device; for each read *and its reverse
complement* the fingerprints of every prefix and suffix are produced by the
Hillis–Steele scan kernels of :mod:`repro.fingerprint.scan` (one virtual
kernel launch per hash lane per direction per orientation). Each
``(length, fingerprint, vertex)`` tuple is then routed to the per-length
partition files:

* lengths below ``l_min`` are discarded (too short to be an overlap),
* length ``l_max`` (whole-read matches) is dropped to avoid self-loops,
* suffix tuples go to the ``S`` partition of their length, prefixes to the
  ``P`` partition.

The paper materializes the tuples on the GPU, sorts them by length, and
writes one file per partition; routing by direct slicing (column ``l`` of
the fingerprint matrix *is* the length partition) is the same mapping
without the intermediate sort, and produces byte-identical partition files.
Routing is fully vectorized: one fancy-indexed gather per orientation
builds the whole ``(n_lengths × n_batch)`` prefix/suffix record block,
instead of ~2·L per-length Python record assemblies per batch.

Execution is pipelined through :class:`~repro.parallel.PipelineExecutor`:
a background producer prefetches packed-read batches off disk (depth 2)
while pool workers fingerprint the in-flight batches. Under the
``processes`` backend the batches instead travel 2-bit-packed through
shared-memory segments to worker *processes* (see
:func:`_fingerprint_task`), which write the finished record blocks into a
shared output segment — no bulk pickling either way. Partition appends —
and all modeled accounting (scratch reservations, kernel charges) — happen
on the main thread in strict batch order, so partition files *and* modeled
costs are identical for any worker count and backend (both paths run the
same :func:`_fingerprint_batch` kernel).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..extmem import PartitionStore
from ..extmem.records import AUX_FIELD, KEY_FIELD, VAL_FIELD, kv_dtype
from ..fingerprint import FingerprintScheme
from ..fingerprint.scan import ScanWorkspace
from ..parallel import shm
from ..seq.alphabet import reverse_complement
from ..seq.packing import PackedReadStore, unpack_codes
from .context import RunContext

#: Batches the prefetch producer keeps in flight ahead of the workers.
PREFETCH_DEPTH = 2

#: Task path the process backend resolves inside its workers.
_MAP_TASK = "repro.core.map_phase:_fingerprint_task"


def per_read_device_bytes(read_length: int, lanes: int) -> int:
    """Device working set of one read in the map phase, in bytes.

    Per read and orientation the device holds the code row plus, per hash
    lane, two ``uint64`` fingerprint rows and the packed key row (prefix
    and suffix each): ``L · (1 + 8·6·lanes)`` bytes, times 2 orientations.
    Single source of truth for both the auto batch sizing and the per-batch
    scratch reservation.
    """
    return 2 * read_length * (1 + 8 * 6 * lanes)


def _auto_batch_reads(ctx: RunContext, read_length: int) -> int:
    """Largest batch whose device working set fits the device budget."""
    per_read = per_read_device_bytes(read_length, ctx.config.fingerprint_lanes)
    budget = int(ctx.config.memory.device_bytes * ctx.config.memory.buffer_fraction)
    return max(1, budget // per_read)


def overlap_lengths(ctx: RunContext, read_length: int) -> tuple[int, ...]:
    """The partition lengths ``[l_min, l_max)`` for this run."""
    l_min = ctx.config.min_overlap
    if l_min >= read_length:
        raise ConfigError(
            f"min_overlap {l_min} must be smaller than the read length {read_length}")
    return tuple(range(l_min, read_length))


@dataclass(frozen=True)
class MapReport:
    """What the map phase produced."""

    n_reads: int
    n_batches: int
    tuples_written: int
    lengths: tuple[int, ...]


def _record_blocks(prefix_keys, suffix_keys, vertices: np.ndarray,
                   prefix_cols: np.ndarray, suffix_cols: np.ndarray,
                   dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
    """Gather the full per-length record blocks for one orientation.

    Row ``j`` of each returned ``(n_lengths, n_batch)`` block holds exactly
    the records the per-length loop used to assemble one
    ``make_records`` call at a time — same values, same field layout, so
    the partition bytes are unchanged.
    """
    lanes = 2 if AUX_FIELD in (dtype.names or ()) else 1
    prefix_block = np.empty((prefix_cols.shape[0], vertices.shape[0]), dtype=dtype)
    suffix_block = np.empty_like(prefix_block)
    prefix_block[KEY_FIELD] = prefix_keys[0][:, prefix_cols].T
    suffix_block[KEY_FIELD] = suffix_keys[0][:, suffix_cols].T
    prefix_block[VAL_FIELD] = vertices
    suffix_block[VAL_FIELD] = vertices
    if lanes == 2:
        prefix_block[AUX_FIELD] = prefix_keys[1][:, prefix_cols].T
        suffix_block[AUX_FIELD] = suffix_keys[1][:, suffix_cols].T
    return prefix_block, suffix_block


#: Per-thread scan scratch: `_fingerprint_batch` runs concurrently on pool
#: worker threads, and a workspace's buffers alias across calls.
_SCAN_TLS = threading.local()


def _scan_workspace() -> ScanWorkspace:
    workspace = getattr(_SCAN_TLS, "workspace", None)
    if workspace is None:
        workspace = _SCAN_TLS.workspace = ScanWorkspace()
    return workspace


def _fingerprint_batch(codes0: np.ndarray, read_ids: np.ndarray,
                       scheme: FingerprintScheme, prefix_cols: np.ndarray,
                       suffix_cols: np.ndarray, dtype: np.dtype):
    """Pure-numpy fingerprint kernel for one batch, both orientations.

    Returns ``(n_reads, [(codes_nbytes, (prefix_block, suffix_block)), …])``
    — the single source of truth run by the serial path, the thread
    workers, and the process workers alike, so no backend can drift.
    """
    workspace = _scan_workspace()
    orientations = []
    for orientation in (0, 1):
        codes = codes0 if orientation == 0 else reverse_complement(codes0)
        vertices = (read_ids.astype(np.uint32) << np.uint32(1)) \
            | np.uint32(orientation)
        # Workspace-backed key matrices: fully copied into the fresh record
        # blocks below before the next orientation (or batch) reuses them.
        prefix_keys, suffix_keys = scheme.key_matrices(codes, workspace)
        blocks = _record_blocks(prefix_keys, suffix_keys, vertices,
                                prefix_cols, suffix_cols, dtype)
        orientations.append((codes.nbytes, blocks))
    return codes0.shape[0], orientations


#: Per-process cache of fingerprint schemes (worker-side; keyed by config).
_WORKER_SCHEMES: dict[tuple[int, int], FingerprintScheme] = {}


def _fingerprint_task(payload: dict) -> dict:
    """Process-backend map task: packed reads in, record blocks out.

    The input segment holds the 2-bit-packed batch; the worker unpacks,
    runs :func:`_fingerprint_batch`, and writes the four record blocks
    (prefix/suffix × orientation) back-to-back into a fresh output
    segment. Only segment names and a few scalars cross the pickle
    boundary; the parent unlinks both segments after delivery.
    """
    read_length = payload["read_length"]
    n = payload["n"]
    bytes_per_read = -(-read_length // 4)
    segment = shm.attach(payload["shm_in"])
    try:
        packed = shm.as_array(segment, (n, bytes_per_read), np.uint8)
        codes0 = unpack_codes(packed, read_length)
    finally:
        segment.close()
    key = (payload["lanes"], payload["seed"])
    scheme = _WORKER_SCHEMES.get(key)
    if scheme is None:
        scheme = FingerprintScheme(lanes=key[0], seed=key[1])
        _WORKER_SCHEMES[key] = scheme
    lengths = np.arange(payload["l_min"], read_length, dtype=np.intp)
    dtype = kv_dtype(payload["lanes"])
    read_ids = payload["start"] + np.arange(n, dtype=np.uint64)
    _, orientations = _fingerprint_batch(codes0, read_ids, scheme,
                                         lengths - 1, read_length - lengths,
                                         dtype)
    out = shm.create(4 * lengths.shape[0] * n * dtype.itemsize)
    shm.disown(out)  # the parent unlinks it after delivery
    try:
        stacked = shm.as_array(out, (4, lengths.shape[0], n), dtype)
        stacked[0] = orientations[0][1][0]
        stacked[1] = orientations[0][1][1]
        stacked[2] = orientations[1][1][0]
        stacked[3] = orientations[1][1][1]
    except BaseException:
        out.close()
        shm.unlink(out.name)
        raise
    out.close()
    return {"shm_out": out.name, "shm_in": payload["shm_in"], "n": n,
            "n_lengths": int(lengths.shape[0]),
            "codes_nbytes": (orientations[0][0], orientations[1][0])}


def run_map(ctx: RunContext, store: PackedReadStore,
            partitions: PartitionStore | None = None, *,
            read_range: tuple[int, int] | None = None,
            only_lengths: frozenset[int] | set[int] | None = None,
            ) -> tuple[PartitionStore, MapReport]:
    """Fingerprint reads and write the S/P length partitions.

    ``read_range`` restricts the phase to reads ``[start, stop)`` — the unit
    of work the distributed master hands to a node; by default the whole
    store is mapped. An existing ``partitions`` store may be passed so a
    node can accumulate several blocks before finalizing (the caller then
    owns ``finalize()``); otherwise one is created and finalized here.
    ``only_lengths`` keeps appends (not the fingerprinting itself) to the
    given partition lengths — how node recovery recomputes a lost peer's
    piece of one partition byte-identically without rewriting every length.
    """
    read_length = store.read_length
    lengths = overlap_lengths(ctx, read_length)
    batch_reads = ctx.config.map_batch_reads or _auto_batch_reads(ctx, read_length)

    dtype = kv_dtype(ctx.config.fingerprint_lanes)
    caller_owns_store = partitions is not None
    if partitions is None:
        partitions = PartitionStore(ctx.workdir / "partitions", dtype, ctx.accountant)
    lanes = ctx.config.fingerprint_lanes
    per_read = per_read_device_bytes(read_length, lanes)
    n_batches = 0
    tuples_written = 0
    start, stop = read_range if read_range is not None else (0, store.n_reads)
    lengths_arr = np.asarray(lengths, dtype=np.intp)
    prefix_cols = lengths_arr - 1
    suffix_cols = read_length - lengths_arr

    executor = ctx.executor
    tracer = ctx.tracer

    def thread_deliveries():
        """Serial/threads path: decoded batches, closures on the pool."""
        def batches():
            for batch_start in range(start, stop, batch_reads):
                yield store.read_slice(batch_start,
                                       min(batch_start + batch_reads, stop))

        def fingerprint(batch):
            # Worker-side compute: pure numpy, no modeled-hardware access.
            return _fingerprint_batch(batch.codes, batch.read_ids, ctx.scheme,
                                      prefix_cols, suffix_cols, dtype)

        yield from executor.map_ordered(
            fingerprint, executor.prefetch(batches(), depth=PREFETCH_DEPTH))

    def process_deliveries():
        """Process path: packed bytes out via shm, record blocks back via shm.

        The sequential packed reads happen on this side (same fault and
        disk-accounting op order as the decoded path); workers run the
        same :func:`_fingerprint_batch` kernel. Each delivered batch's
        blocks are *views* into the worker's output segment — valid for
        exactly one loop iteration, after which both segments are
        unlinked.
        """
        pending_inputs: set[str] = set()

        def payloads():
            for batch_start in range(start, stop, batch_reads):
                batch_stop = min(batch_start + batch_reads, stop)
                packed = store.read_packed_slice(batch_start, batch_stop)
                name = shm.put_array(packed)
                pending_inputs.add(name)
                yield {"shm_in": name, "n": batch_stop - batch_start,
                       "start": batch_start, "read_length": read_length,
                       "lanes": lanes, "seed": ctx.scheme.seed,
                       "l_min": ctx.config.min_overlap}

        try:
            for result in executor.map_tasks(
                    _MAP_TASK,
                    executor.prefetch(payloads(), depth=PREFETCH_DEPTH)):
                segment = shm.attach(result["shm_out"])
                try:
                    stacked = shm.as_array(
                        segment, (4, result["n_lengths"], result["n"]), dtype)
                    c0, c1 = result["codes_nbytes"]
                    yield result["n"], [(c0, (stacked[0], stacked[1])),
                                        (c1, (stacked[2], stacked[3]))]
                finally:
                    segment.close()
                    shm.unlink(result["shm_out"])
                    shm.unlink(result["shm_in"])
                    pending_inputs.discard(result["shm_in"])
        finally:
            # Abandoned mid-stream (an exception downstream): input
            # segments that never reached delivery must still be removed.
            for name in list(pending_inputs):
                shm.unlink(name)

    deliveries = process_deliveries() if executor.process_parallel \
        else thread_deliveries()
    try:
        for n, orientations in deliveries:
            n_batches += 1
            # Modeled accounting stays on the main thread, in batch order:
            # scratch reservations, kernel charges and partition appends
            # are identical to the serial schedule for any worker count.
            # The batch span is det=False: the prefetch thread charges the
            # accountant from read_slice, so mid-phase simulated stamps
            # depend on the worker count.
            with tracer.span("map:batch", track="pipeline",
                             batch=n_batches, reads=n), \
                    ctx.gpu.scratch(n * per_read, label="map-batch"), \
                    ctx.host_pool.alloc(n * per_read, label="map-host-buffers"):
                for orientation, (codes_nbytes, blocks) in enumerate(orientations):
                    if orientation == 1:
                        ctx.gpu.charge_elementwise(codes_nbytes * 2)
                    # One scan launch per hash lane per direction (Figs. 5-6).
                    for _ in range(2 * 2 * lanes):
                        ctx.gpu.charge_scan_kernel(n, read_length)
                    prefix_block, suffix_block = blocks
                    pairs = [(length, prefix_block[j], suffix_block[j])
                             for j, length in enumerate(lengths)
                             if only_lengths is None or length in only_lengths]
                    partitions.append_pairs(pairs)
                    tuples_written += 2 * n * len(pairs)
                    ctx.gpu.charge_elementwise(2 * n * len(pairs) * dtype.itemsize)
    finally:
        # Prompt generator cleanup: the process path's finally drains the
        # in-flight window and unlinks every leftover shared-memory segment.
        deliveries.close()
        # Even on an injected crash the writers must close: the in-process
        # crash loop re-runs the pipeline, and a stale _OPEN_PATHS entry
        # would wrongly reject the recovery run's writers.
        if not caller_owns_store:
            partitions.finalize()
    return partitions, MapReport(stop - start, n_batches, tuples_written, lengths)

"""Load phase: bring reads into the 2-bit packed working store.

Accepts either a FASTQ file (parsed streamingly) or an existing packed
store (e.g. a materialized benchmark dataset); in both cases the phase
streams every read once and writes the run's private packed store into the
working directory, so the disk accountant sees the same one-read/one-write
traffic the paper's load phase performs.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import DatasetError
from ..seq.fastq import fastq_read_batches
from ..seq.packing import PackedReadStore
from .context import RunContext

#: Reads converted per streaming step during load.
LOAD_BATCH_READS = 65536


def run_load(ctx: RunContext, source: str | Path | PackedReadStore) -> PackedReadStore:
    """Stream ``source`` into the run's packed store; returns it (read mode)."""
    store_path = ctx.workdir / "reads.lsgr"
    fastq_source = False
    if isinstance(source, PackedReadStore):
        batches = source.iter_batches(LOAD_BATCH_READS)
    else:
        source = Path(source)
        if not source.exists():
            raise DatasetError(f"input not found: {source}")
        if source.suffix == ".lsgr":
            batches = PackedReadStore.open(source, ctx.accountant).iter_batches(
                LOAD_BATCH_READS)
        else:
            fastq_source = True
            batches = fastq_read_batches(source, batch_reads=LOAD_BATCH_READS,
                                         on_invalid="mask")

    writer: PackedReadStore | None = None
    n_reads = 0
    # The load loop is strictly serial, so its simulated stamps are
    # deterministic (det=True) and survive into the golden sim trace.
    with ctx.tracer.span("load:stream", track="pipeline", det=True) as span:
        for batch in batches:
            if writer is None:
                writer = PackedReadStore.create(store_path, batch.read_length,
                                                ctx.accountant)
            if fastq_source:
                # Model the FASTQ text traffic: sequence + quality lines + headers.
                ctx.accountant.add_read(batch.n_reads * (2 * batch.read_length + 16))
            writer.append_batch(batch)
            n_reads += batch.n_reads
        span.note(reads=n_reads)
    if writer is None:
        raise DatasetError("input contains no reads")
    writer.close()
    return PackedReadStore.open(store_path, ctx.accountant)

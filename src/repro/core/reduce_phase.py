"""Reduce phase: suffix–prefix matching and greedy graph building (§III.C).

Implements Algorithm 2. For each overlap length ``l`` (processed in
**descending** order, so longer overlaps win the greedy contest), the sorted
suffix run ``S_l`` and prefix run ``P_l`` are streamed through paired
windows that always cover the same fingerprint range: the windows are cut
at the smaller of their two tail fingerprints, so a fingerprint present in
the suffix window can only match inside the current prefix window — one
disk pass per partition.

Each window pair goes to the device, where vectorized lower/upper bounds of
every suffix fingerprint in the prefix window yield per-suffix match counts
(``C = U − L``); matches expand into candidate edges
``(suffix vertex → prefix vertex, l)`` which the host-resident
:class:`~repro.graph.GreedyStringGraph` filters through its out-degree
bit-vector. With two fingerprint lanes, the auxiliary lane must also agree
— the paper's 128-bit false-positive guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..extmem import PartitionStore, RunReader
from ..extmem.records import AUX_FIELD, KEY_FIELD, VAL_FIELD
from ..graph import GreedyStringGraph
from ..seq.packing import PackedReadStore
from .context import RunContext

#: Window slots carved out of the device block: S + P windows resident plus
#: bounds arrays and expansion headroom.
REDUCE_WINDOW_DIVISOR = 6

#: Cap on candidate-edge expansion processed per device round.
MAX_EXPANSION = 1 << 18


@dataclass
class ReduceReport:
    """Statistics of the reduce phase."""

    partitions_processed: int = 0
    window_rounds: int = 0
    candidates: int = 0
    aux_rejected: int = 0
    edges_added: int = 0
    per_length_edges: dict[int, int] = field(default_factory=dict)


def run_reduce(ctx: RunContext, partitions: PartitionStore, store: PackedReadStore,
               ) -> tuple[GreedyStringGraph, ReduceReport]:
    """Build the greedy string graph from all sorted partitions."""
    graph = GreedyStringGraph(store.n_reads, store.read_length, ctx.host_pool)
    report = ReduceReport()
    _, m_d = ctx.config.resolved_blocks(partitions.dtype.itemsize)
    window = max(1, m_d // REDUCE_WINDOW_DIVISOR)
    for length in sorted(partitions.lengths(), reverse=True):
        s_path = partitions.path("S", length, sorted_run=True)
        p_path = partitions.path("P", length, sorted_run=True)
        if not (s_path.exists() and p_path.exists()):
            continue
        edges_before = graph.n_edges
        # The reduce loop is strictly serial, so per-partition spans carry
        # deterministic simulated stamps (det=True).
        with ctx.tracer.span("reduce:partition", track="pipeline", det=True,
                             length=length) as span:
            with RunReader(s_path, partitions.dtype, ctx.accountant) as suffixes, \
                    RunReader(p_path, partitions.dtype, ctx.accountant) as prefixes:
                reduce_partition(ctx, graph, suffixes, prefixes, length, window,
                                 report)
            span.note(edges=(graph.n_edges - edges_before) // 2)
        report.partitions_processed += 1
        report.per_length_edges[length] = (graph.n_edges - edges_before) // 2
    report.edges_added = graph.n_edges
    return graph, report


def reduce_partition(ctx: RunContext, graph: GreedyStringGraph,
                      suffixes: RunReader, prefixes: RunReader,
                      length: int, window: int, report: ReduceReport, *,
                      chunk_records: int = 0,
                      on_chunk=None) -> None:
    """Algorithm 2 over one length partition's sorted S/P streams.

    Streams paired windows whose fingerprint ranges are equalized at the
    smaller tail key, matches them on the device, and offers every
    candidate edge to ``graph`` in stream order. ``window`` is the per-side
    record budget; it grows transiently when one fingerprint spans a whole
    window (a deep repeat).

    ``chunk_records``/``on_chunk`` drive intra-partition checkpointing:
    every time at least ``chunk_records`` records have been *processed*
    since the last commit, ``on_chunk(index, s_done, p_done)`` is called
    with the chunk's ordinal and the cumulative processed record counts of
    the two streams. The counts are processed-window cuts, **not** reader
    consumption — the leftover buffers are read-but-unprocessed, and a
    resume must reprocess them. Chunk boundaries always fall on fingerprint
    group boundaries (the window cut lands on key boundaries), so a resume
    that seeks both streams to ``(s_done, p_done)`` re-enters a valid
    window stream and — per-window canonicalization — produces the exact
    bytes of an unchunked run.
    """
    empty = suffixes.read(0)
    s_buf, p_buf = empty, empty
    s_done = p_done = 0       # processed records (committed-able prefix)
    committed = 0             # s_done + p_done at the last chunk commit
    chunk_index = 0

    def refill(buf: np.ndarray, reader: RunReader, target: int) -> np.ndarray:
        if buf.shape[0] >= target or reader.exhausted:
            return buf
        extra = reader.read(target - buf.shape[0])
        return extra if buf.shape[0] == 0 else np.concatenate([buf, extra])

    target = window
    while True:
        s_buf = refill(s_buf, suffixes, target)
        p_buf = refill(p_buf, prefixes, target)
        if s_buf.shape[0] == 0 or p_buf.shape[0] == 0:
            return
        s_keys, p_keys = s_buf[KEY_FIELD], p_buf[KEY_FIELD]
        tails = []
        if not suffixes.exhausted:
            tails.append(s_keys[-1])
        if not prefixes.exhausted:
            tails.append(p_keys[-1])
        if tails:
            boundary = min(tails)
            cut_s = int(np.searchsorted(s_keys, boundary, side="left"))
            cut_p = int(np.searchsorted(p_keys, boundary, side="left"))
            if cut_s == 0 and cut_p == 0:
                # A single fingerprint spans a whole window (deep repeat):
                # widen the windows and retry — the only case where the
                # fixed window cannot make progress.
                target += window
                continue
        else:
            cut_s, cut_p = s_buf.shape[0], p_buf.shape[0]
        if cut_s and cut_p:
            _match_windows(ctx, graph, s_buf[:cut_s], p_buf[:cut_p], length, report)
        s_buf, p_buf = s_buf[cut_s:], p_buf[cut_p:]
        s_done += cut_s
        p_done += cut_p
        if chunk_records and on_chunk is not None and \
                (s_done + p_done) - committed >= chunk_records:
            on_chunk(chunk_index, s_done, p_done)
            chunk_index += 1
            committed = s_done + p_done
        target = window
        if not tails:
            return


def _match_windows(ctx: RunContext, graph: GreedyStringGraph,
                   s_win: np.ndarray, p_win: np.ndarray, length: int,
                   report: ReduceReport) -> None:
    report.window_rounds += 1
    # Canonical tie order: records sharing a fingerprint are re-ordered by
    # vertex id. External sorting is not stable across different merge
    # structures, and greedy tie-breaking depends on candidate order — this
    # per-window lexsort makes the assembly bit-identical for every
    # (m_h, m_d) choice and node count. Windows always contain whole
    # fingerprint groups (the equalization cuts at key boundaries), so the
    # canonical order is global.
    s_win = s_win[np.lexsort((s_win[VAL_FIELD], s_win[KEY_FIELD]))]
    p_win = p_win[np.lexsort((p_win[VAL_FIELD], p_win[KEY_FIELD]))]
    ctx.gpu.charge_elementwise(2 * (s_win.nbytes + p_win.nbytes))
    s_d = ctx.gpu.to_device(s_win, label="reduce-S")
    p_d = ctx.gpu.to_device(p_win, label="reduce-P")
    lower_d, upper_d = ctx.gpu.bounds_records(p_d, s_d)
    lower = ctx.gpu.to_host(lower_d)
    upper = ctx.gpu.to_host(upper_d)
    for darray in (s_d, p_d, lower_d, upper_d):
        darray.free()
    counts = upper - lower

    matched = np.nonzero(counts > 0)[0]
    if matched.size == 0:
        return
    # Expand match ranges into candidate edges in stream order, chunked so a
    # pathological repeat cannot blow host memory.
    start = 0
    while start < matched.size:
        stop = start
        total = 0
        while stop < matched.size and total + counts[matched[stop]] <= MAX_EXPANSION:
            total += counts[matched[stop]]
            stop += 1
        if stop == start:  # one suffix exceeds the cap by itself: take it alone
            stop += 1
            total = int(counts[matched[start]])
        rows = matched[start:stop]
        row_counts = counts[rows]
        sources = np.repeat(s_win[VAL_FIELD][rows].astype(np.int64), row_counts)
        range_starts = np.repeat(lower[rows], row_counts)
        base = np.repeat(np.cumsum(row_counts) - row_counts, row_counts)
        p_index = range_starts + (np.arange(sources.shape[0]) - base)
        targets = p_win[VAL_FIELD][p_index].astype(np.int64)
        if AUX_FIELD in (s_win.dtype.names or ()):
            aux_match = np.repeat(s_win[AUX_FIELD][rows], row_counts) \
                == p_win[AUX_FIELD][p_index]
            report.aux_rejected += int((~aux_match).sum())
            sources, targets = sources[aux_match], targets[aux_match]
        report.candidates += sources.shape[0]
        ctx.charge_host(sources.shape[0] * 16)
        graph.add_candidates(sources, targets, length)
        start = stop

"""Pipeline checkpointing: resume a multi-hour assembly after interruption.

At paper scale a run takes 16+ hours and writes terabytes of intermediate
state; losing it to a node failure is expensive. The checkpoint manager
records, in ``<workdir>/state.json``, which phases have completed under
which configuration/input identity, and archives the reduce phase's graph
arrays, so a re-run with ``Assembler(...).assemble(source, workdir=...,
resume=True)``:

* skips **load** when the packed store is complete,
* skips **map + sort** when every sorted partition file is present,
* skips **reduce** when the archived graph matches,
* always re-runs **compress** (cheap, seconds even at paper scale).

A checkpoint is only honoured when the *configuration fingerprint* (every
assembly-relevant config field plus the input's size/identity) matches —
otherwise the stale state is discarded and the run starts clean.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from ..config import AssemblyConfig
from ..faults import plan as faults
from ..graph import GreedyStringGraph
from ..graph.bitvector import PackedBitVector

STATE_FILE = "state.json"
GRAPH_FILE = "graph.npz"

#: Bytes hashed from each end of an artifact for its ledger digest.
_DIGEST_SPAN = 64 * 1024


def file_digest(path: Path) -> str | None:
    """Cheap content fingerprint of one on-disk artifact.

    Hashes the file's size plus its head and tail ``_DIGEST_SPAN`` bytes —
    at paper scale (hundreds of GB of run files) a full-content hash per
    checkpoint would cost another disk pass, while torn writes and
    truncation always move the size or the tail. Returns ``None`` if the
    file is missing.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        h = hashlib.sha256()
        with open(path, "rb") as handle:
            if size <= 2 * _DIGEST_SPAN:
                h.update(handle.read())
            else:
                h.update(handle.read(_DIGEST_SPAN))
                handle.seek(size - _DIGEST_SPAN)
                h.update(handle.read(_DIGEST_SPAN))
        return f"{size}:{h.hexdigest()[:16]}"
    except OSError:
        return None


#: Config knobs that never change artifact bytes. Everything here is
#: excluded from both the checkpoint fingerprint and the content-addressed
#: phase cache key, so a run may be resumed (or served from cache) under a
#: different setting of any of them:
#:
#: * ``workers`` / ``executor_backend`` — execution-only: any worker count
#:   or backend produces byte-identical artifacts (asserted by
#:   tests/test_parallel_determinism.py),
#: * ``trace`` — observation-only: tracing never changes artifacts,
#: * ``keep_workdir`` — housekeeping,
#: * the resilience-policy knobs — they change how failures are survived,
#:   never what a surviving run produces (recovered runs are byte-identical),
#: * ``buffer_pool`` / ``pool_max_bytes`` — substrate-only: recycling the
#:   numpy buffers behind device arrays changes wall-clock time and
#:   allocator traffic, never an artifact byte or a simulated-clock charge.
NON_SEMANTIC_KNOBS = ("workers", "executor_backend", "trace", "keep_workdir",
                      "heartbeat_interval", "node_timeout",
                      "reduce_max_attempts", "retry_backoff_s",
                      "node_restarts", "allow_degraded",
                      "chunk_checkpoint_every", "speculation_threshold",
                      "allow_join",
                      "buffer_pool", "pool_max_bytes")


def semantic_payload(config: AssemblyConfig) -> dict:
    """The JSON-able subset of ``config`` that determines artifact bytes.

    One definition shared by :func:`config_fingerprint` (the resume ledger)
    and :func:`repro.service.content_store.phase_key` (the cross-job cache),
    so the two notions of "same configuration" can never drift apart.
    """
    payload = asdict(config)
    payload["memory"] = {
        "host_bytes": config.memory.host_bytes,
        "device_bytes": config.memory.device_bytes,
        "buffer_fraction": config.memory.buffer_fraction,
    }
    for knob in NON_SEMANTIC_KNOBS:
        payload.pop(knob, None)
    return payload


def config_fingerprint(config: AssemblyConfig, source_id: str) -> str:
    """Stable hash of everything that invalidates intermediate state."""
    payload = semantic_payload(config)
    payload["source"] = source_id
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()).hexdigest()[:16]


def chunk_key(config: AssemblyConfig, name: str, index: int,
              s_off: int, p_off: int) -> str:
    """Content key of one committed intra-partition reduce chunk.

    Deliberately **scope-free** (built on :func:`semantic_payload`, not a
    node's scoped fingerprint): the supervisor mirrors chunk progress
    across nodes, and a speculative backup on a *different* node must be
    able to verify that a mirrored entry describes the same logical work —
    same semantic config, same partition, same processed prefix — before
    resuming past it. The same key therefore lands in every node's ledger
    for the same chunk.
    """
    payload = semantic_payload(config)
    payload["chunk"] = {"name": name, "index": index,
                        "s_off": s_off, "p_off": p_off}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()).hexdigest()[:16]


class CheckpointManager:
    """Reads and writes the per-workdir phase ledger."""

    def __init__(self, workdir: Path, fingerprint: str):
        self.workdir = Path(workdir)
        self.fingerprint = fingerprint
        self._state = self._load()

    def _load(self) -> dict:
        path = self.workdir / STATE_FILE
        if not path.exists():
            return {"fingerprint": self.fingerprint, "completed": []}
        try:
            state = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return {"fingerprint": self.fingerprint, "completed": []}
        if state.get("fingerprint") != self.fingerprint:
            # Stale: different config or input. Start clean.
            return {"fingerprint": self.fingerprint, "completed": []}
        return state

    def completed(self, phase: str) -> bool:
        """Whether ``phase`` finished under the current fingerprint."""
        return phase in self._state["completed"]

    def _write_state(self) -> None:
        self.workdir.mkdir(parents=True, exist_ok=True)
        faults.ledger_write(self.workdir / STATE_FILE, json.dumps(self._state))

    def mark(self, phase: str, artifacts: Iterable[Path] = ()) -> None:
        """Record ``phase`` as complete (idempotent, durable).

        ``artifacts`` are the on-disk files the phase produced; their
        digests go into the ledger so a resumed run can tell a finished
        artifact from a truncated or corrupted one.
        """
        if phase not in self._state["completed"]:
            self._state["completed"].append(phase)
        digests = {}
        for path in artifacts:
            digest = file_digest(Path(path))
            if digest is not None:
                digests[str(Path(path).relative_to(self.workdir))] = digest
        if digests:
            self._state.setdefault("artifacts", {})[phase] = digests
        self._write_state()

    def recorded_artifacts(self, phase: str) -> Mapping[str, str]:
        """The ``{relative path: digest}`` map recorded for ``phase``."""
        return dict(self._state.get("artifacts", {}).get(phase, {}))

    def artifacts_intact(self, phase: str) -> bool:
        """Whether every artifact recorded for ``phase`` digests identically."""
        return not self.damaged(phase)

    def damaged(self, phase: str) -> list[str]:
        """Relative paths of ``phase`` artifacts that are missing or damaged.

        The distributed supervisor replays exactly these after a node
        restart: partitions whose ledger digest still matches survived the
        crash and are *not* recomputed.
        """
        recorded = self.recorded_artifacts(phase)
        return [rel for rel, digest in recorded.items()
                if file_digest(self.workdir / rel) != digest]

    def invalidate_from(self, phase: str) -> None:
        """Drop ``phase`` and everything after it from the ledger."""
        order = ["load", "map", "sort", "reduce"]
        if phase in order:
            keep = order[:order.index(phase)]
            self._state["completed"] = [p for p in self._state["completed"]
                                        if p in keep]
            artifacts = self._state.get("artifacts", {})
            chunks = self._state.get("chunks", {})
            for dropped in order[order.index(phase):]:
                artifacts.pop(dropped, None)
                chunks.pop(dropped, None)
            self._write_state()

    # -- intra-partition chunk checkpoints -------------------------------------

    def mark_chunk(self, phase: str, name: str, index: int,
                   s_off: int, p_off: int, key: str) -> None:
        """Record durable progress through one partition of ``phase``.

        Only the *latest* chunk per partition is kept — progress is a
        monotone prefix ``(s_off, p_off)`` of the sorted input streams, so
        earlier entries are subsumed. The append is durable (it rides the
        same :func:`repro.faults.ledger_write` path as phase marks), and a
        crash *between* finishing the chunk's work and this append simply
        re-executes one chunk — candidate re-submission is idempotent.
        """
        chunks = self._state.setdefault("chunks", {}).setdefault(phase, {})
        chunks[name] = {"index": index, "s_off": s_off, "p_off": p_off,
                        "key": key}
        self._write_state()

    def chunk_progress(self, phase: str, name: str) -> dict | None:
        """The last durable chunk entry for ``phase``/``name`` (or None)."""
        entry = self._state.get("chunks", {}).get(phase, {}).get(name)
        return dict(entry) if entry else None

    def clear_chunks(self, phase: str, name: str | None = None) -> None:
        """Forget chunk progress (one partition, or the whole phase).

        Called when a partition's reduction completes — the phase-level
        artifact mark supersedes chunk granularity — and when a partition
        fails over to an owner whose streams were rebuilt from scratch.
        """
        chunks = self._state.get("chunks", {}).get(phase)
        if not chunks:
            return
        if name is None:
            self._state.get("chunks", {}).pop(phase, None)
        else:
            chunks.pop(name, None)
        self._write_state()

    # -- graph archival -------------------------------------------------------

    def save_graph(self, graph: GreedyStringGraph) -> None:
        """Archive the reduce phase's graph arrays."""
        save_graph_file(self.workdir / GRAPH_FILE, graph)

    def load_graph(self, host_pool=None) -> GreedyStringGraph | None:
        """Restore the archived graph, or ``None`` if absent/corrupt."""
        return load_graph_file(self.workdir / GRAPH_FILE, host_pool)


def save_graph_file(path: Path, graph: GreedyStringGraph) -> None:
    """Archive a reduce-phase graph's arrays to ``path`` (an ``.npz``)."""
    np.savez(path,
             target=graph.target,
             overlap=graph.overlap,
             in_degree=graph.in_degree,
             out_bits=np.frombuffer(graph.out_bits.to_bytes(), dtype=np.uint64),
             meta=np.array([graph.n_reads, graph.read_length,
                            graph._n_edges, graph._candidates_seen],
                           dtype=np.int64))


def load_graph_file(path: Path, host_pool=None) -> GreedyStringGraph | None:
    """Restore a graph archived by :func:`save_graph_file`.

    Returns ``None`` if the archive is absent or corrupt. Shared by the
    checkpoint manager (same-workdir resume) and the content-addressed
    phase cache (cross-job reuse of a fetched ``graph.npz``).
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        archive = np.load(path)
        n_reads, read_length, n_edges, candidates = archive["meta"].tolist()
    except (OSError, ValueError, KeyError):
        return None
    graph = GreedyStringGraph(int(n_reads), int(read_length), host_pool)
    graph.target = archive["target"]
    graph.overlap = archive["overlap"]
    graph.in_degree = archive["in_degree"]
    graph.out_bits = PackedBitVector(graph.n_vertices,
                                     archive["out_bits"].copy())
    graph._n_edges = int(n_edges)
    graph._candidates_seen = int(candidates)
    try:
        graph.check_invariants()
    except Exception:
        return None
    return graph

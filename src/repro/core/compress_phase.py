"""Compress phase: path traversal and contig generation (§III.D, Fig. 7).

Stage 1 walks the host-resident graph into a :class:`~repro.graph.PathSet`
(seeds: in-degree 0, out-degree 1; singletons become single-read paths), and
— as an extension the paper leaves unspecified — optionally drops each
path's reverse-complement twin.

Stage 2 lays contigs out exactly as Fig. 7 describes:

1. an exclusive scan over path lengths gives each path's slot in the path
   table, and an exclusive scan over overhang lengths gives each read's
   byte offset inside the concatenated contig buffer;
2. each (offset, overhang, orientation) triple is scattered to the slot of
   its *vertex id* — a gather/scatter by stencil, collision-free because a
   vertex belongs to at most one path;
3. the packed reads are streamed from disk once; each read in a path
   contributes its first ``overhang`` bases (reverse-complemented first if
   the vertex is a complement vertex) at its offset.
"""

from __future__ import annotations

import numpy as np

from ..graph import GreedyStringGraph, PathSet, extract_paths
from ..graph.contigs import ContigSet
from ..seq.alphabet import reverse_complement
from ..seq.packing import PackedReadStore
from .context import RunContext

#: Reads decoded per streaming step while spelling contigs.
COMPRESS_BATCH_READS = 65536


def run_compress(ctx: RunContext, graph: GreedyStringGraph, store: PackedReadStore,
                 *, release_graph: bool = True) -> tuple[ContigSet, PathSet]:
    """Spell every path into a contig; returns (contigs, paths).

    With ``release_graph`` (the default) the graph's host reservation is
    freed as soon as the paths are extracted — contig generation only needs
    the path table, and at paper scale graph + placement tables together
    would not fit the 64 GB host.
    """
    # Compress is strictly serial; both stage spans are det=True.
    with ctx.tracer.span("compress:paths", track="pipeline", det=True) as span:
        paths = extract_paths(graph)
        if ctx.config.dedupe_contigs:
            paths = paths.deduplicated()
        span.note(paths=paths.n_paths)

    n_vertices = graph.n_vertices
    if release_graph:
        graph.release()
    total = paths.vertices.shape[0]

    # Fig. 7: offsets by exclusive scans, placed per vertex with a gather.
    # The path table can exceed device memory (at paper scale it does), so
    # the scan streams device-sized chunks with a running carry.
    chunk_records = max(
        2, int(ctx.config.memory.device_bytes * ctx.config.memory.buffer_fraction)
        // (3 * paths.overhangs.dtype.itemsize))
    read_offsets = np.empty(total, dtype=np.int64)
    carry = 0
    for start in range(0, total, chunk_records):
        chunk = paths.overhangs[start:start + chunk_records]
        overhangs_d = ctx.gpu.to_device(chunk, label="compress-overhangs")
        scanned_d = ctx.gpu.exclusive_scan(overhangs_d)
        read_offsets[start:start + chunk.shape[0]] = \
            ctx.gpu.to_host(scanned_d) + carry
        overhangs_d.free()
        scanned_d.free()
        carry += int(chunk.sum())

    contig_lengths = paths.contig_lengths()
    contig_offsets = np.concatenate(([0], np.cumsum(contig_lengths))).astype(np.int64)
    total_bases = int(contig_offsets[-1])

    # Per-vertex placement tables (scatter by vertex id; unique by degree cap).
    dest_offset = np.full(n_vertices, -1, dtype=np.int64)
    take_bases = np.zeros(n_vertices, dtype=np.uint16)
    if total:
        dest_offset[paths.vertices] = read_offsets
        take_bases[paths.vertices] = paths.overhangs.astype(np.uint16)
    ctx.gpu.charge_elementwise(3 * total * 8)

    flat = np.zeros(total_bases, dtype=np.uint8)
    with ctx.tracer.span("compress:spell", track="pipeline", det=True,
                         bases=total_bases), \
            ctx.host_pool.alloc(flat.nbytes + dest_offset.nbytes + take_bases.nbytes,
                                label="compress-contigs"):
        for batch in store.iter_batches(COMPRESS_BATCH_READS):
            for orientation in (0, 1):
                vertices = (batch.read_ids.astype(np.int64) << 1) | orientation
                selected = np.nonzero(dest_offset[vertices] >= 0)[0]
                if selected.size == 0:
                    continue
                codes = batch.codes[selected]
                if orientation == 1:
                    codes = reverse_complement(codes)
                takes = take_bases[vertices[selected]].astype(np.int64)
                dests = dest_offset[vertices[selected]]
                # Ragged placement: read i contributes codes[i, :takes[i]]
                # at flat[dests[i]:dests[i]+takes[i]].
                rows = np.repeat(np.arange(selected.shape[0]), takes)
                base = np.repeat(np.cumsum(takes) - takes, takes)
                cols = np.arange(rows.shape[0]) - base
                positions = np.repeat(dests, takes) + cols
                flat[positions] = codes[rows, cols]
                ctx.gpu.charge_elementwise(2 * positions.shape[0])
    return ContigSet(flat, contig_offsets), paths

"""Pipeline orchestration: the :class:`Assembler` facade.

Runs load → map → sort → reduce → compress under per-phase telemetry, with
one :class:`~repro.core.context.RunContext` carrying the budgets and meters.
Phase names match the rows of the paper's Tables II/III ("Load", "Map",
"Sort", "Reduce", "Compress").

With ``resume=True`` (and an explicit ``workdir``) completed phases are
skipped using the :mod:`~repro.core.checkpoint` ledger — a 16-hour
paper-scale run interrupted after its sort phase restarts at reduce.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

from ..config import AssemblyConfig
from ..device.specs import DiskSpec, HostSpec
from ..errors import ConfigError, DatasetError
from ..extmem import PartitionStore
from ..extmem.records import kv_dtype
from ..faults import plan as faults
from ..graph import GreedyStringGraph
from ..seq.packing import PackedReadStore
from .checkpoint import (GRAPH_FILE, CheckpointManager, config_fingerprint,
                         file_digest, load_graph_file)
from .compress_phase import run_compress
from .context import RunContext
from .load_phase import run_load
from .map_phase import MapReport, run_map
from .reduce_phase import ReduceReport, run_reduce
from .results import AssemblyResult
from .sort_phase import SortPhaseReport, run_sort
from ..extmem.sort import SortReport

#: Canonical phase order, as reported in the paper's tables.
PHASES = ("load", "map", "sort", "reduce", "compress")


def _source_identity(source) -> str:
    if isinstance(source, PackedReadStore):
        return f"store:{source.path}:{source.n_reads}:{source.read_length}"
    path = Path(source)
    size = path.stat().st_size if path.exists() else -1
    return f"file:{path}:{size}"


class Assembler:
    """One-stop assembly runner.

    >>> from repro import Assembler, AssemblyConfig
    >>> result = Assembler(AssemblyConfig(min_overlap=25)).assemble("reads.fastq")
    """

    def __init__(self, config: AssemblyConfig | None = None, *,
                 disk: DiskSpec | None = None, host: HostSpec | None = None,
                 content_store=None, phase_hook=None):
        self.config = config if config is not None else AssemblyConfig()
        self.disk = disk
        self.host = host
        #: Optional :class:`repro.service.content_store.ContentStore`. When
        #: set, every phase boundary first looks its output up by content
        #: key — identical phase inputs across jobs, tenants and
        #: re-submissions are served from cache instead of recomputed.
        self.content_store = content_store
        #: Optional ``hook(boundary, sim_seconds)`` called before the first
        #: phase (``boundary="start"``) and after each phase completes
        #: (``boundary=<phase name>``) with the run's accrued simulated
        #: seconds. The assembly service injects cooperative cancellation
        #: and deadline checks here: the hook raises
        #: :class:`~repro.errors.JobCancelled` /
        #: :class:`~repro.errors.JobDeadlineExceeded` to stop the run at a
        #: deterministic (modeled-clock) boundary.
        self.phase_hook = phase_hook

    def assemble(self, source: str | Path | PackedReadStore, *,
                 workdir: str | Path | None = None,
                 resume: bool = False,
                 gfa_path: str | Path | None = None) -> AssemblyResult:
        """Assemble ``source`` (FASTQ path, ``.lsgr`` path, or open store).

        ``resume`` requires an explicit ``workdir`` and continues a prior
        interrupted run with the same configuration and input. ``gfa_path``
        additionally exports the string graph and contig paths as GFA 1.0.
        """
        if resume and workdir is None:
            raise ConfigError("resume=True requires an explicit workdir")
        tracer = None
        if self.config.trace:
            from ..trace.tracer import SpanTracer

            tracer = SpanTracer(meta={
                "source": _source_identity(source),
                "workers": self.config.resolved_workers(),
                "seed": self.config.seed,
            })
        ctx = RunContext(self.config, workdir=workdir, disk=self.disk,
                         host=self.host, tracer=tracer)
        manager = CheckpointManager(
            ctx.workdir, config_fingerprint(self.config, _source_identity(source))
        ) if resume else None
        try:
            return self._run(ctx, source, manager, gfa_path)
        finally:
            ctx.cleanup()
            if tracer is not None:
                # Dump even when the run failed: a trace of a crashed run
                # (open spans, error-tagged phases) is exactly what the
                # chaos harness wants to look at.
                tracer.write(Path(self.config.trace))

    # -- phase drivers -------------------------------------------------------

    def _run(self, ctx: RunContext, source, manager: CheckpointManager | None,
             gfa_path=None) -> AssemblyResult:
        if manager is not None:
            self._validate_checkpoints(ctx, manager)
        self._boundary(ctx, "start")
        faults.note_phase("load")
        with ctx.telemetry.phase("load"):
            store = self._load(ctx, source, manager)
        try:
            faults.barrier(faults.PHASE, "load")
            self._boundary(ctx, "load")
            faults.note_phase("map")
            with ctx.telemetry.phase("map"):
                partitions, map_report = self._map(ctx, store, manager)
            faults.barrier(faults.PHASE, "map")
            self._boundary(ctx, "map")
            faults.note_phase("sort")
            with ctx.telemetry.phase("sort"):
                sort_report = self._sort(ctx, partitions, manager)
            faults.barrier(faults.PHASE, "sort")
            self._boundary(ctx, "sort")
            faults.note_phase("reduce")
            with ctx.telemetry.phase("reduce"):
                graph, reduce_report = self._reduce(ctx, partitions, store, manager)
            faults.barrier(faults.PHASE, "reduce")
            self._boundary(ctx, "reduce")
            faults.note_phase("compress")
            with ctx.telemetry.phase("compress"):
                contigs, paths = run_compress(ctx, graph, store,
                                              release_graph=gfa_path is None)
            faults.barrier(faults.PHASE, "compress")
            self._boundary(ctx, "compress")
            if gfa_path is not None:
                from ..graph.gfa import write_gfa

                write_gfa(gfa_path, graph, paths=paths)
            graph.release()
        finally:
            store.close()
        return AssemblyResult(
            config=self.config,
            n_reads=store.n_reads,
            read_length=store.read_length,
            contigs=contigs,
            telemetry=ctx.telemetry,
            map_report=map_report,
            sort_report=sort_report,
            reduce_report=reduce_report,
            n_paths=paths.n_paths,
            paths=paths,
        )

    def _boundary(self, ctx: RunContext, name: str) -> None:
        """Give the phase hook a deterministic stop point.

        Runs *outside* the telemetry phase contexts (a raised
        ``JobCancelled``/``JobDeadlineExceeded`` must not mark a phase
        failed) and after the fault barrier, so injected crashes and
        cooperative stops at the same boundary keep their relative order.
        """
        if self.phase_hook is not None:
            self.phase_hook(name, ctx.clock.total_seconds)

    def _validate_checkpoints(self, ctx: RunContext,
                              manager: CheckpointManager) -> None:
        """Cross-check the ledger against the files actually on disk.

        The sort phase consumes the map phase's partition files, so a
        missing *sorted* run cannot be regenerated from a "map complete"
        checkpoint unless its unsorted input still exists — in that case
        the invalidation must cascade back to map.
        """
        dtype = kv_dtype(ctx.config.fingerprint_lanes)
        partitions = PartitionStore(ctx.workdir / "partitions", dtype, None)
        saved_map = manager._state.get("map_report")
        lengths = saved_map["lengths"] if saved_map else []
        if manager.completed("load") and not manager.artifacts_intact("load"):
            manager.invalidate_from("load")
        if manager.completed("sort"):
            # Digest-damaged sorted runs must also be *removed* — the sort
            # rerun trusts any sorted file it finds on disk.
            damaged = [rel for rel, digest
                       in manager.recorded_artifacts("sort").items()
                       if file_digest(ctx.workdir / rel) != digest]
            for rel in damaged:
                (ctx.workdir / rel).unlink(missing_ok=True)
            sorted_complete = all(
                partitions.path(side, length, sorted_run=True).exists()
                for length in lengths for side in ("S", "P"))
            if not sorted_complete or damaged:
                manager.invalidate_from("sort")
        if manager.completed("map") and not manager.completed("sort"):
            # A partition is usable if its sorted run already exists, or if
            # the unsorted input survives *undamaged* — a torn unsorted run
            # would silently sort to a wrong (smaller) partition.
            recorded = manager.recorded_artifacts("map")
            inputs_available = True
            for length in lengths:
                for side in ("S", "P"):
                    if partitions.path(side, length, sorted_run=True).exists():
                        continue
                    unsorted = partitions.path(side, length)
                    if not unsorted.exists():
                        inputs_available = False
                        break
                    rel = str(unsorted.relative_to(ctx.workdir))
                    if rel in recorded and file_digest(unsorted) != recorded[rel]:
                        inputs_available = False
                        break
                if not inputs_available:
                    break
            if not inputs_available:
                manager.invalidate_from("map")
        if manager.completed("reduce") and not manager.artifacts_intact("reduce"):
            (ctx.workdir / GRAPH_FILE).unlink(missing_ok=True)
            manager.invalidate_from("reduce")

    # -- content-addressed phase cache ---------------------------------------

    def _cache_key(self, phase: str, inputs: list[str]) -> str:
        from ..service.content_store import phase_key

        return phase_key(phase, inputs, self.config)

    @staticmethod
    def _source_content_digest(source) -> str | None:
        """Content digest of the input reads (``None`` = uncacheable)."""
        path = Path(source.path) if isinstance(source, PackedReadStore) \
            else Path(source)
        return file_digest(path)

    @staticmethod
    def _open_cached_store(ctx: RunContext) -> PackedReadStore | None:
        """Open a fetched ``reads.lsgr``, rejecting empty/corrupt stores."""
        try:
            store = PackedReadStore.open(ctx.workdir / "reads.lsgr",
                                         ctx.accountant)
        except DatasetError:
            return None
        if store.n_reads > 0:
            return store
        store.close()
        return None

    # -- phase drivers (with ledger resume and cache lookup) ------------------

    def _load(self, ctx: RunContext, source, manager) -> PackedReadStore:
        store_path = ctx.workdir / "reads.lsgr"
        if manager is not None and manager.completed("load") and store_path.exists():
            # A store that opens but holds zero reads lost its header patch
            # (the load commit point) — run_load never returns an empty
            # store, so treat it as corrupt and reload.
            store = None
            try:
                store = PackedReadStore.open(store_path, ctx.accountant)
            except DatasetError:
                pass
            if store is not None and store.n_reads > 0:
                return store
            if store is not None:
                store.close()
            manager.invalidate_from("load")
        key = None
        if self.content_store is not None:
            source_digest = self._source_content_digest(source)
            if source_digest is not None:
                key = self._cache_key("load", [f"reads:{source_digest}"])
                fetched = self.content_store.fetch(key, ctx.workdir,
                                                   phase="load",
                                                   tracer=ctx.tracer)
                if fetched is not None:
                    store = self._open_cached_store(ctx)
                    if store is not None:
                        if manager is not None:
                            manager.mark("load", [store_path])
                        return store
        store = run_load(ctx, source)
        if manager is not None:
            manager.mark("load", [store_path])
        if key is not None:
            self.content_store.put(key, "load", ctx.workdir, [store_path],
                                   tracer=ctx.tracer)
        return store

    def _map(self, ctx: RunContext, store: PackedReadStore, manager,
             ) -> tuple[PartitionStore, MapReport]:
        dtype = kv_dtype(ctx.config.fingerprint_lanes)
        if manager is not None and manager.completed("map"):
            saved = manager._state.get("map_report")
            partitions = PartitionStore(ctx.workdir / "partitions", dtype,
                                        ctx.accountant)
            if saved is not None:
                return partitions, MapReport(saved["n_reads"], saved["n_batches"],
                                             saved["tuples_written"],
                                             tuple(saved["lengths"]))
        key = None
        if self.content_store is not None:
            reads_digest = file_digest(ctx.workdir / "reads.lsgr")
            if reads_digest is not None:
                key = self._cache_key("map", [f"reads:{reads_digest}"])
                meta = self.content_store.fetch(key, ctx.workdir, phase="map",
                                                tracer=ctx.tracer)
                if meta is not None:
                    partitions = PartitionStore(ctx.workdir / "partitions",
                                                dtype, ctx.accountant)
                    report = MapReport(meta["n_reads"], meta["n_batches"],
                                       meta["tuples_written"],
                                       tuple(meta["lengths"]))
                    if manager is not None:
                        manager._state["map_report"] = {
                            "n_reads": report.n_reads,
                            "n_batches": report.n_batches,
                            "tuples_written": report.tuples_written,
                            "lengths": list(report.lengths),
                        }
                        manager.mark("map", [partitions.path(side, length)
                                             for length in report.lengths
                                             for side in ("S", "P")])
                    return partitions, report
        partitions, report = run_map(ctx, store)
        if manager is not None:
            manager._state["map_report"] = {
                "n_reads": report.n_reads, "n_batches": report.n_batches,
                "tuples_written": report.tuples_written,
                "lengths": list(report.lengths),
            }
            manager.mark("map", [partitions.path(side, length)
                                 for length in report.lengths
                                 for side in ("S", "P")])
        if key is not None:
            self.content_store.put(
                key, "map", ctx.workdir,
                [partitions.path(side, length) for length in report.lengths
                 for side in ("S", "P")],
                meta={"n_reads": report.n_reads, "n_batches": report.n_batches,
                      "tuples_written": report.tuples_written,
                      "lengths": list(report.lengths)},
                tracer=ctx.tracer)
        return partitions, report

    def _sort(self, ctx: RunContext, partitions: PartitionStore, manager,
              ) -> SortPhaseReport:
        if manager is not None and manager.completed("sort"):
            saved = manager._state.get("sort_report", {})
            reports = {}
            complete = True
            for key, values in saved.items():
                side, length = key.split(":")
                if not partitions.path(side, int(length), sorted_run=True).exists():
                    complete = False
                    break
                reports[(side, int(length))] = SortReport(*values)
            if complete and reports:
                return SortPhaseReport(reports)
            manager.invalidate_from("sort")
        key = None
        if self.content_store is not None:
            inputs = self._partition_inputs(partitions, sorted_run=False)
            if inputs is not None:
                key = self._cache_key("sort", inputs)
                meta = self.content_store.fetch(key, ctx.workdir, phase="sort",
                                                tracer=ctx.tracer)
                if meta is not None:
                    reports = {}
                    for saved_key, values in meta.items():
                        side, length = saved_key.split(":")
                        reports[(side, int(length))] = SortReport(*values)
                    # Mirror the sort phase's file discipline: the unsorted
                    # partitions are consumed once their sorted runs exist.
                    for (side, length) in reports:
                        partitions.delete(side, length)
                    if manager is not None:
                        manager._state["sort_report"] = {
                            f"{side}:{length}": [r.n_records, r.initial_runs,
                                                 r.merge_rounds, r.fanout]
                            for (side, length), r in reports.items()}
                        manager.mark("sort",
                                     [partitions.path(side, length,
                                                      sorted_run=True)
                                      for (side, length) in reports])
                    return SortPhaseReport(reports)
        report = run_sort(ctx, partitions)
        if manager is not None:
            # All four SortReport fields must round-trip: dropping fanout
            # would resurrect the default (2) on resume and silently change
            # both the report and the fingerprint-relevant sort shape.
            manager._state["sort_report"] = {
                f"{side}:{length}": [r.n_records, r.initial_runs,
                                     r.merge_rounds, r.fanout]
                for (side, length), r in report.reports.items()
            }
            manager.mark("sort", [partitions.path(side, length, sorted_run=True)
                                  for (side, length) in report.reports])
        if key is not None:
            self.content_store.put(
                key, "sort", ctx.workdir,
                [partitions.path(side, length, sorted_run=True)
                 for (side, length) in report.reports],
                meta={f"{side}:{length}": [r.n_records, r.initial_runs,
                                           r.merge_rounds, r.fanout]
                      for (side, length), r in report.reports.items()},
                tracer=ctx.tracer)
        return report

    def _reduce(self, ctx: RunContext, partitions: PartitionStore,
                store: PackedReadStore, manager,
                ) -> tuple[GreedyStringGraph, ReduceReport]:
        if manager is not None and manager.completed("reduce"):
            graph = manager.load_graph(ctx.host_pool)
            saved = manager._state.get("reduce_report")
            if graph is not None and saved is not None:
                report = ReduceReport(**{
                    **saved,
                    "per_length_edges": {int(k): v for k, v
                                         in saved["per_length_edges"].items()},
                })
                return graph, report
            manager.invalidate_from("reduce")
        key = None
        if self.content_store is not None:
            inputs = self._partition_inputs(partitions, sorted_run=True)
            reads_digest = file_digest(ctx.workdir / "reads.lsgr")
            if inputs is not None and reads_digest is not None:
                key = self._cache_key("reduce",
                                      [f"reads:{reads_digest}"] + inputs)
                meta = self.content_store.fetch(key, ctx.workdir,
                                                phase="reduce",
                                                tracer=ctx.tracer)
                if meta is not None:
                    graph = load_graph_file(ctx.workdir / GRAPH_FILE,
                                            ctx.host_pool)
                    if graph is not None:
                        report = ReduceReport(**{
                            **meta,
                            "per_length_edges": {
                                int(k): v for k, v
                                in meta["per_length_edges"].items()},
                        })
                        if manager is not None:
                            manager._state["reduce_report"] = asdict(report)
                            manager.mark("reduce", [ctx.workdir / GRAPH_FILE])
                        return graph, report
        graph, report = run_reduce(ctx, partitions, store)
        if manager is not None:
            manager.save_graph(graph)
            manager._state["reduce_report"] = asdict(report)
            manager.mark("reduce", [ctx.workdir / GRAPH_FILE])
        if key is not None:
            if manager is None:
                # No ledger writing the archive for us: materialize it so
                # the cache entry has bytes to hold.
                from .checkpoint import save_graph_file

                save_graph_file(ctx.workdir / GRAPH_FILE, graph)
            self.content_store.put(key, "reduce", ctx.workdir,
                                   [ctx.workdir / GRAPH_FILE],
                                   meta=asdict(report), tracer=ctx.tracer)
        return graph, report

    @staticmethod
    def _partition_inputs(partitions: PartitionStore, *,
                          sorted_run: bool) -> list[str] | None:
        """Labeled content digests of every partition file, or ``None``.

        ``None`` (some expected file missing — e.g. a partially consumed
        resume state) makes the caller skip the cache for this phase; the
        ledger machinery handles mixed on-disk state instead.
        """
        inputs = []
        for length in partitions.lengths():
            for side in ("S", "P"):
                path = partitions.path(side, length, sorted_run=sorted_run)
                digest = file_digest(path)
                if digest is None:
                    return None
                inputs.append(f"{side}:{length}:{digest}")
        return inputs if inputs else None

"""The LaSAGNA assembly pipeline (the paper's primary contribution).

Phases (paper Fig. 4): **load** (FASTQ → packed store) → **map** (fingerprint
generation + length partitioning) → **sort** (two-level external sort per
partition) → **reduce** (Algorithm 2 overlap detection + greedy graph) →
**compress** (path traversal + contig generation).

Entry point: :class:`Assembler` — configure with
:class:`~repro.config.AssemblyConfig` and call
:meth:`~repro.core.pipeline.Assembler.assemble`.
"""

from .context import RunContext
from .pipeline import Assembler
from .results import AssemblyResult

__all__ = ["RunContext", "Assembler", "AssemblyResult"]

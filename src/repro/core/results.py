"""The result object an assembly run returns."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..config import AssemblyConfig
from ..seq.alphabet import decode
from ..seq.fastq import write_fasta
from ..seq.stats import assembly_stats
from ..graph.traverse import PathSet
from ..telemetry import Telemetry, overlap_saved_s
from .compress_phase import ContigSet
from .map_phase import MapReport
from .reduce_phase import ReduceReport
from .sort_phase import SortPhaseReport


@dataclass(frozen=True)
class AssemblyResult:
    """Everything produced by one :class:`~repro.core.pipeline.Assembler` run.

    ``telemetry`` holds per-phase wall/simulated times and memory peaks —
    the data behind the paper's Tables II–V; the phase reports expose the
    structural numbers (tuples written, disk passes, candidates, edges).
    """

    config: AssemblyConfig
    n_reads: int
    read_length: int
    contigs: ContigSet
    telemetry: Telemetry
    map_report: MapReport
    sort_report: SortPhaseReport
    reduce_report: ReduceReport
    n_paths: int
    #: The contig path table (one path per contig, aligned with ``contigs``);
    #: doubles as the read→contig placement map for scaffolding.
    paths: PathSet | None = None

    # -- contig access -----------------------------------------------------

    def contig_lengths(self) -> np.ndarray:
        """Per-contig base counts."""
        return self.contigs.lengths()

    def contig_strings(self, *, min_length: int = 0) -> Iterator[str]:
        """Decode contigs (optionally only those of at least ``min_length``)."""
        for i in range(self.contigs.n_contigs):
            codes = self.contigs.contig_codes(i)
            if codes.shape[0] >= min_length:
                yield decode(codes)

    def write_fasta(self, path: str | Path, *, min_length: int = 0,
                    name_prefix: str = "contig") -> int:
        """Write contigs to FASTA; returns the number written."""
        def records():
            index = 0
            for seq in self.contig_strings(min_length=min_length):
                yield f"{name_prefix}.{index} length={len(seq)}", seq
                index += 1

        return write_fasta(path, records())

    # -- summaries -----------------------------------------------------------

    def stats(self, *, min_length: int = 0) -> dict[str, int | float]:
        """Assembly summary statistics (N50 etc.)."""
        lengths = self.contig_lengths()
        return assembly_stats(lengths[lengths >= min_length])

    def phase_seconds(self, *, simulated: bool = False) -> dict[str, float]:
        """Wall (or modeled) seconds per pipeline phase."""
        return {stats.name: (stats.sim_seconds if simulated else stats.wall_seconds)
                for stats in self.telemetry}

    def parallelism(self) -> dict[str, float | int]:
        """Aggregate pipelined-execution counters across all phases.

        ``overlap_saved_s`` is the wall time the double-buffered overlap
        removed versus a fully serialized schedule; ``utilization`` is the
        fraction of available worker-seconds (wall × workers) spent busy.
        All zeros under ``workers=1`` (nothing runs in the background).
        """
        busy = sum(s.counters.get("par_busy_s", 0.0) for s in self.telemetry)
        wait = sum(s.counters.get("par_wait_s", 0.0) for s in self.telemetry)
        tasks = sum(s.counters.get("par_tasks", 0.0) for s in self.telemetry)
        wall = self.telemetry.total_wall_seconds()
        workers = self.config.resolved_workers()
        return {
            "workers": workers,
            "par_tasks": int(tasks),
            "par_busy_s": busy,
            "par_wait_s": wait,
            "overlap_saved_s": overlap_saved_s(
                {"par_busy_s": busy, "par_wait_s": wait}),
            "utilization": (busy / (wall * workers)) if wall > 0 else 0.0,
        }

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        stats = self.stats()
        lines = [
            f"reads: {self.n_reads:,} × {self.read_length} bp",
            f"tuples mapped: {self.map_report.tuples_written:,}",
            f"sort disk passes (max): {self.sort_report.max_disk_passes}",
            f"candidates: {self.reduce_report.candidates:,} "
            f"(aux-rejected {self.reduce_report.aux_rejected:,})",
            f"edges: {self.reduce_report.edges_added:,}",
            f"contigs: {stats['n_contigs']:,}  total {stats['total_bases']:,} bp  "
            f"N50 {stats['n50']:,}",
        ]
        par = self.parallelism()
        if par["workers"] > 1:
            lines.append(
                f"workers: {par['workers']}  tasks {par['par_tasks']:,}  "
                f"overlap saved {par['overlap_saved_s']:.2f}s  "
                f"utilization {par['utilization']:.0%}")
        lines.append(self.telemetry.report())
        return "\n".join(lines)

"""Human-readable units: byte sizes and durations.

The paper reports sizes like ``398 GB`` and durations like ``16h 21m 09s``;
the benchmark harnesses render their tables in the same style so paper and
measured values can be compared at a glance.
"""

from __future__ import annotations

import re

from .errors import ConfigError

_SIZE_SUFFIXES = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "tb": 10**12,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
    "tib": 2**40,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse a byte size such as ``"12 GB"``, ``"6GiB"`` or ``4096``.

    Decimal suffixes (kB/MB/GB/TB) are powers of 1000, binary suffixes
    (KiB/MiB/GiB/TiB) powers of 1024; a bare number is bytes.
    """
    if isinstance(text, (int, float)):
        return int(text)
    match = _SIZE_RE.match(text)
    if not match:
        raise ConfigError(f"unparseable size: {text!r}")
    value, suffix = float(match.group(1)), match.group(2).lower()
    if suffix in ("", "b"):
        return int(value)
    if suffix not in _SIZE_SUFFIXES:
        raise ConfigError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def format_size(nbytes: float, *, precision: int = 2) -> str:
    """Render a byte count with a decimal suffix, e.g. ``398.41 GB``."""
    nbytes = float(nbytes)
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(nbytes)
    for suffix, factor in (("TB", 10**12), ("GB", 10**9), ("MB", 10**6), ("kB", 10**3)):
        if nbytes >= factor:
            return f"{sign}{nbytes / factor:.{precision}f} {suffix}"
    return f"{sign}{nbytes:.0f} B"


def format_count(n: float) -> str:
    """Render a count with thousands separators, e.g. ``1,247,518,392``."""
    return f"{int(n):,}"


_DURATION_PART_RE = re.compile(r"([0-9]*\.?[0-9]+)\s*(h|hr|hrs|hour|hours|m|min|mins|s|sec|secs)")


def parse_duration(text: str | int | float) -> float:
    """Parse a duration such as ``"16h 21m 09s"`` or ``"26m 6s"`` to seconds.

    A bare number is seconds. This is the inverse of :func:`format_duration`
    for the formats the paper's tables use.
    """
    if isinstance(text, (int, float)):
        return float(text)
    total = 0.0
    matched_any = False
    for value, unit in _DURATION_PART_RE.findall(text.lower()):
        matched_any = True
        seconds = float(value) * {"h": 3600.0, "m": 60.0, "s": 1.0}[unit[0]]
        total += seconds
    if not matched_any:
        try:
            return float(text)
        except ValueError:
            raise ConfigError(f"unparseable duration: {text!r}") from None
    return total


def format_duration(seconds: float) -> str:
    """Render seconds in the paper's table style: ``2h 23m 55s`` / ``25s``.

    Sub-second durations keep two significant decimals so scaled-down runs
    remain readable.
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds:.3g}s"
    whole = int(round(seconds))
    hours, rem = divmod(whole, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h {minutes}m {secs:02d}s"
    if minutes:
        return f"{minutes}m {secs}s"
    return f"{secs}s"

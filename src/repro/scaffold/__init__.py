"""Paired-end scaffolding: ordering contigs with mate-pair links.

Contigs end where coverage gaps or unresolved repeats break the string
graph; read *pairs* with a known insert size bridge those breaks. This
package implements the classic scaffolding stage on top of the assembler's
own machinery:

* :mod:`repro.scaffold.placement` — project every read onto its contig
  (position + strand) straight from the assembly's
  :class:`~repro.graph.traverse.PathSet`,
* :mod:`repro.scaffold.links` — turn mate pairs that land in *different*
  contigs into oriented contig-pair links with gap estimates, and bundle
  them by support,
* :mod:`repro.scaffold.builder` — chain contigs greedily (longest-support
  links first, one in/one out per contig end — the same greedy discipline
  as the read-level string graph, reused at contig level) and spell
  scaffold sequences with ``N``-gaps.

Entry point: :func:`scaffold_assembly`.
"""

from .builder import ScaffoldResult, scaffold_assembly
from .links import ContigLink, bundle_links, infer_links
from .placement import ReadPlacements, place_reads

__all__ = [
    "ScaffoldResult",
    "scaffold_assembly",
    "ContigLink",
    "bundle_links",
    "infer_links",
    "ReadPlacements",
    "place_reads",
]

"""Read→contig placement, derived from the assembly's path table.

Every deduplicated path entry *is* a placement: path ``p``'s ``j``-th
vertex ``v`` says read ``v >> 1`` lies in contig ``p`` starting at the sum
of the preceding overhangs, on the forward strand of the contig iff
``v & 1 == 0``. No alignment needed — the assembler already knows where
every read went.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..graph.traverse import PathSet


@dataclass(frozen=True)
class ReadPlacements:
    """Per-read contig coordinates (``-1`` contig = read not placed)."""

    contig: np.ndarray   #: (n_reads,) int64 — contig (= path) index
    offset: np.ndarray   #: (n_reads,) int64 — start position within contig
    forward: np.ndarray  #: (n_reads,) bool — read's stored sequence runs with the contig

    @property
    def n_placed(self) -> int:
        """How many reads have a placement."""
        return int((self.contig >= 0).sum())


def place_reads(paths: PathSet, n_reads: int) -> ReadPlacements:
    """Project a (deduplicated) :class:`PathSet` onto per-read coordinates.

    Raises if a read appears twice — pass the deduplicated path set, where
    each read occurs in exactly one orientation.
    """
    contig = np.full(n_reads, -1, dtype=np.int64)
    offset = np.zeros(n_reads, dtype=np.int64)
    forward = np.zeros(n_reads, dtype=bool)
    total = paths.vertices.shape[0]
    if total == 0:
        return ReadPlacements(contig, offset, forward)

    entry_offsets = np.concatenate(([0], np.cumsum(paths.overhangs)))[:-1]
    path_index = np.searchsorted(paths.path_offsets, np.arange(total),
                                 side="right") - 1
    contig_starts = entry_offsets[paths.path_offsets[:-1]]
    within = entry_offsets - contig_starts[path_index]

    read_ids = (paths.vertices >> 1).astype(np.int64)
    if np.unique(read_ids).shape[0] != read_ids.shape[0]:
        raise ConfigError("a read appears in more than one path entry; "
                          "pass the deduplicated PathSet")
    if read_ids.max(initial=-1) >= n_reads:
        raise ConfigError("path vertex outside the read-id range")
    contig[read_ids] = path_index
    offset[read_ids] = within
    forward[read_ids] = (paths.vertices & 1) == 0
    return ReadPlacements(contig, offset, forward)

"""Mate-pair links between contigs.

For an FR pair (mate 1 read genome-forward, mate 2 the reverse complement
of the locus ``insert_size`` downstream), the two placements induce an
*oriented* contig adjacency: flip each contig so the genome-forward strand
runs left-to-right at its mate's locus, then contig 1 precedes contig 2
with a gap of ``insert − tail₁ − head₂`` bases.

Orientation algebra (``forward`` = the read's stored sequence runs with
the contig): mate 1 stores the genome-forward strand, so genome-forward
runs with contig 1 iff the mate is ``forward``; mate 2 stores the reverse
strand, so genome-forward runs with contig 2 iff the mate is *not*
``forward``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .placement import ReadPlacements


@dataclass(frozen=True)
class ContigLink:
    """A bundled, oriented adjacency between two contigs.

    ``flip_a``/``flip_b`` say whether each contig must be reverse-
    complemented so the junction reads left-to-right; ``gap`` is the median
    estimated distance (may be negative for overlapping contigs);
    ``support`` counts the pairs that voted for this adjacency.
    """

    contig_a: int
    flip_a: bool
    contig_b: int
    flip_b: bool
    gap: int
    support: int

    def oriented_nodes(self) -> tuple[int, int]:
        """(source, target) as oriented-contig node ids (``2c + flip``)."""
        return 2 * self.contig_a + int(self.flip_a), \
            2 * self.contig_b + int(self.flip_b)


def infer_links(placements: ReadPlacements, contig_lengths: np.ndarray,
                n_pairs: int, read_length: int, insert_size: int,
                ) -> list[tuple[int, bool, int, bool, int]]:
    """Raw per-pair links (un-bundled); pair ``i`` = reads ``(i, n_pairs+i)``.

    Pairs with an unplaced mate or both mates in one contig contribute
    nothing (same-contig pairs validate the contig instead of linking it).
    """
    if placements.contig.shape[0] < 2 * n_pairs:
        raise ConfigError("placements cover fewer reads than 2 * n_pairs")
    links: list[tuple[int, bool, int, bool, int]] = []
    for pair in range(n_pairs):
        mate1, mate2 = pair, n_pairs + pair
        c1, c2 = int(placements.contig[mate1]), int(placements.contig[mate2])
        if c1 < 0 or c2 < 0 or c1 == c2:
            continue
        len1 = int(contig_lengths[c1])
        len2 = int(contig_lengths[c2])
        o1, o2 = int(placements.offset[mate1]), int(placements.offset[mate2])
        # genome-forward direction relative to each contig
        d1_forward = bool(placements.forward[mate1])
        d2_forward = not bool(placements.forward[mate2])
        p1 = o1 if d1_forward else len1 - (o1 + read_length)
        q2 = o2 if d2_forward else len2 - (o2 + read_length)
        tail1 = len1 - p1
        head2 = q2 + read_length
        gap = insert_size - tail1 - head2
        links.append((c1, not d1_forward, c2, not d2_forward, gap))
    return links


def _canonical(link: tuple[int, bool, int, bool, int]
               ) -> tuple[tuple[int, bool, int, bool], int]:
    """Canonical key: the complement adjacency (B', A') is the same link."""
    c1, f1, c2, f2, gap = link
    forward_key = (c1, f1, c2, f2)
    reverse_key = (c2, not f2, c1, not f1)
    return (min(forward_key, reverse_key), gap)


def bundle_links(raw_links, *, min_support: int = 2,
                 max_gap_spread: int = 10_000,
                 min_gap: int = -100) -> list[ContigLink]:
    """Group per-pair links by oriented contig pair; majority wins.

    Bundles are discarded when they have fewer than ``min_support`` pairs,
    when their gap estimates disagree by more than ``max_gap_spread``
    (repeat-induced chimeras), or when the median gap is below ``min_gap``
    — heavily *overlapping* contigs are a merge problem, not a scaffolding
    problem, and chaining them would scramble local order. The result is
    sorted by descending support — the order the greedy chain builder
    consumes.
    """
    bundles: dict[tuple[int, bool, int, bool], list[int]] = {}
    for link in raw_links:
        key, gap = _canonical(link)
        bundles.setdefault(key, []).append(gap)
    out = []
    for (c1, f1, c2, f2), gaps in bundles.items():
        if len(gaps) < min_support:
            continue
        if max(gaps) - min(gaps) > max_gap_spread:
            continue
        gap = int(np.median(gaps))
        if gap < min_gap:
            continue
        out.append(ContigLink(c1, f1, c2, f2, gap, len(gaps)))
    out.sort(key=lambda link: (-link.support, link.contig_a, link.contig_b))
    return out

"""Greedy scaffold chaining and sequence emission.

Oriented contigs are vertices (``2c`` = contig as assembled, ``2c+1`` =
reverse-complemented; complement = ``^1``) and bundled links are edges —
exactly the shape of the read-level greedy string graph, so
:class:`~repro.graph.GreedyStringGraph` is reused verbatim at contig level:
links are offered strongest-support first, each contig end accepts at most
one join, and complement symmetry keeps the two strands consistent. Gaps
ride alongside in an edge→gap table and become ``N`` runs in the emitted
scaffolds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import GreedyStringGraph, extract_paths
from ..graph.contigs import ContigSet
from ..graph.traverse import PathSet
from ..seq.alphabet import decode, reverse_complement
from ..seq.stats import assembly_stats
from .links import ContigLink, bundle_links, infer_links
from .placement import place_reads

#: Minimum rendered gap: abutting/overlapping contigs still get one N so
#: the joint is visible downstream.
MIN_GAP_NS = 1


@dataclass
class ScaffoldResult:
    """Scaffolds plus the evidence they were built from."""

    sequences: list[str]
    links_used: list[ContigLink]
    n_raw_links: int
    n_internal_pairs: int
    n_scaffolded_contigs: int

    def lengths(self) -> np.ndarray:
        """Per-scaffold lengths (including N gaps)."""
        return np.array([len(s) for s in self.sequences], dtype=np.int64)

    def stats(self) -> dict[str, int | float]:
        """Summary statistics over the scaffold lengths."""
        return assembly_stats(self.lengths())


def scaffold_assembly(contigs: ContigSet, paths: PathSet, *, n_pairs: int,
                      read_length: int, insert_size: int,
                      min_support: int = 2) -> ScaffoldResult:
    """Scaffold an assembly using its own path table as the aligner.

    ``paths`` must be the deduplicated path set matching ``contigs`` (the
    pipeline's :class:`~repro.core.results.AssemblyResult` carries both);
    reads ``(i, n_pairs + i)`` are mates (the
    :class:`~repro.seq.simulate.PairedReadSimulator` layout).
    """
    n_reads = 2 * n_pairs
    placements = place_reads(paths, n_reads)
    contig_lengths = contigs.lengths()
    raw = infer_links(placements, contig_lengths, n_pairs, read_length,
                      insert_size)
    same_contig = sum(
        1 for pair in range(n_pairs)
        if placements.contig[pair] >= 0
        and placements.contig[pair] == placements.contig[n_pairs + pair])
    bundled = bundle_links(raw, min_support=min_support,
                           min_gap=-2 * read_length)

    # Contig-level greedy graph: one join per contig end, complement-safe.
    chain_graph = GreedyStringGraph(contigs.n_contigs, read_length=2)
    gaps: dict[tuple[int, int], int] = {}
    used: list[ContigLink] = []
    for link in bundled:
        source, target = link.oriented_nodes()
        if chain_graph.add_candidates(np.array([source]), np.array([target]),
                                      1):
            gaps[(source, target)] = link.gap
            gaps[(target ^ 1, source ^ 1)] = link.gap
            used.append(link)

    chains = extract_paths(chain_graph).deduplicated()
    sequences: list[str] = []
    scaffolded = 0
    for index in range(chains.n_paths):
        vertices, _ = chains.path(index)
        if vertices.shape[0] > 1:
            scaffolded += vertices.shape[0]
        parts: list[str] = []
        for position, vertex in enumerate(vertices):
            codes = contigs.contig_codes(int(vertex) >> 1)
            if vertex & 1:
                codes = reverse_complement(codes)
            if position:
                gap = gaps[(int(vertices[position - 1]), int(vertex))]
                parts.append("N" * max(MIN_GAP_NS, gap))
            parts.append(decode(codes))
        sequences.append("".join(parts))

    return ScaffoldResult(
        sequences=sequences,
        links_used=used,
        n_raw_links=len(raw),
        n_internal_pairs=same_contig,
        n_scaffolded_contigs=scaffolded,
    )

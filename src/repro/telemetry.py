"""Per-phase telemetry for pipeline runs.

The evaluation section of the paper reports, per assembly phase, the wall
time (Tables II/III) and the peak host/device memory (Tables IV/V). This
module provides the plumbing that gathers those numbers during a run:

* a :class:`Meter` protocol — anything exposing monotonically increasing
  counters and resettable high-water gauges,
* :class:`Telemetry` — registers meters and, via :meth:`Telemetry.phase`,
  snapshots counter deltas and gauge peaks per named phase,
* :class:`PhaseStats` — the per-phase record the benchmarks render.

Meters are implemented by the device/host memory pools, the simulated clock
and the I/O accountant; the pipeline only talks to this module.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Protocol

from .units import format_duration, format_size


def overlap_saved_s(counters: Mapping[str, float]) -> float:
    """Wall seconds the pipelined overlap removed, from busy/wait counters.

    Background work (worker tasks, read-ahead, write-behind) ran for
    ``par_busy_s`` seconds; the caller thread only *blocked* on it for
    ``par_wait_s``. A serialized schedule would have paid the full busy
    time on the critical path, so the difference is the saving. Zero in
    serial mode (the counters never move).

    This is the single definition: :attr:`PhaseStats.overlap_saved_s`,
    ``AssemblyResult.parallelism()`` and the trace-analysis overlap
    accounting all call it, so per-phase, aggregate and traced numbers
    cannot drift.
    """
    return max(0.0, counters.get("par_busy_s", 0.0)
               - counters.get("par_wait_s", 0.0))


def format_metric(key: str, value: float) -> str:
    """Format a counter/gauge by the unit its name suffix declares.

    ``*_bytes`` gauges are sizes, ``*_s``/``*_seconds`` are durations,
    anything else (queue depths, lane counts, event tallies) renders raw —
    so a non-byte gauge is never mislabeled as "B/KB".
    """
    # Imported lazily: analysis.reporting sits behind the analysis package
    # init, which pulls in metrics/graph and must not load at import time
    # of this low-level module.
    from .analysis.reporting import format_cell

    if key.endswith("_bytes"):
        return format_cell(value, "size")
    if key.endswith(("_s", "_seconds")):
        return format_cell(value, "duration")
    return format_cell(value, "raw")


class Meter(Protocol):
    """A telemetry source.

    ``counters()`` returns monotonically increasing totals (e.g. bytes read);
    ``peaks()`` returns high-water gauges since the last ``reset_peaks()``
    (e.g. peak device bytes).
    """

    def counters(self) -> Mapping[str, float]:
        """Monotonically increasing totals."""
        ...

    def peaks(self) -> Mapping[str, float]:
        """High-water gauges since the last reset."""
        ...

    def reset_peaks(self) -> None:
        """Reset gauges to their current values."""
        ...


@dataclass
class PhaseStats:
    """Everything recorded about one pipeline phase.

    ``counters`` holds deltas of every registered meter counter over the
    phase; ``peaks`` holds each gauge's high-water mark within the phase.
    """

    name: str
    wall_seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    peaks: dict[str, float] = field(default_factory=dict)
    #: ``"ExcType: message"`` when the phase body raised; such stats are
    #: kept aside (``Telemetry.failed``) and never merged into the totals.
    error: str | None = None

    @property
    def sim_seconds(self) -> float:
        """Modeled (simulated-hardware) seconds accrued during the phase."""
        return self.counters.get("sim_seconds", 0.0)

    @property
    def overlap_saved_s(self) -> float:
        """Wall seconds the pipelined overlap removed during this phase.

        Delegates to the module-level :func:`overlap_saved_s` helper — the
        one shared formula (see its docstring).
        """
        return overlap_saved_s(self.counters)

    def merged_with(self, other: "PhaseStats") -> "PhaseStats":
        """Combine two phases of the same name (times add, peaks max)."""
        merged = PhaseStats(self.name, self.wall_seconds + other.wall_seconds)
        for key in set(self.counters) | set(other.counters):
            merged.counters[key] = self.counters.get(key, 0.0) + other.counters.get(key, 0.0)
        for key in set(self.peaks) | set(other.peaks):
            merged.peaks[key] = max(self.peaks.get(key, 0.0), other.peaks.get(key, 0.0))
        return merged

    def summary(self) -> str:
        """One-line human-readable summary used by verbose pipeline logs."""
        parts = [f"{self.name}: wall={format_duration(self.wall_seconds)}"]
        if "sim_seconds" in self.counters:
            parts.append(f"sim={format_duration(self.sim_seconds)}")
        if self.overlap_saved_s > 0.0:
            parts.append(f"overlap_saved={format_duration(self.overlap_saved_s)}")
        for key in ("disk_read_bytes", "disk_write_bytes"):
            if self.counters.get(key):
                parts.append(f"{key.split('_')[1]}={format_size(self.counters[key])}")
        for key, value in self.peaks.items():
            parts.append(f"peak_{key}={format_metric(key, value)}")
        if self.error is not None:
            parts.append(f"FAILED({self.error})")
        return " ".join(parts)


class EventMeter:
    """A dict-backed :class:`Meter` for sparse event counters.

    Sources that are not memory pools or clocks — e.g. the fault-injection
    plan counting injected faults and instrumented I/O operations, or the
    pipelined executor counting busy/wait seconds — bump named counters
    here and register the meter like any other, so per-phase deltas
    (faults injected during *sort* vs *reduce*) come for free. Bumps are
    lock-protected: executor worker threads update concurrently.
    """

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._lock = threading.Lock()

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increase counter ``key`` by ``amount``."""
        with self._lock:
            self._counts[key] = self._counts.get(key, 0.0) + amount

    def gauge(self, key: str, value: float) -> None:
        """Record an instantaneous observation; ``peaks()`` keeps the max.

        Unlike counters, gauges are high-water marks per phase (e.g. the
        longest single backoff the resilience layer charged) and reset at
        phase boundaries like every other meter gauge.
        """
        with self._lock:
            self._gauges[key] = max(self._gauges.get(key, value), value)

    def counters(self) -> Mapping[str, float]:
        """Monotonically increasing event totals."""
        with self._lock:
            return dict(self._counts)

    def peaks(self) -> Mapping[str, float]:
        """High-water gauge observations since the last reset."""
        with self._lock:
            return dict(self._gauges)

    def reset_peaks(self) -> None:
        """Start a fresh high-water window for every gauge."""
        with self._lock:
            self._gauges.clear()


class _PhaseContext:
    """Context manager produced by :meth:`Telemetry.phase`.

    Phases nest: entering an inner phase folds the gauges observed so far
    into every *enclosing* context's accumulator before resetting the
    meters, so an outer phase's peak covers its whole extent — including
    everything that happened inside inner phases (outer peak ≥ inner peak).
    """

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name
        self._start_wall = 0.0
        self._start_counters: dict[str, float] = {}
        self._peak_acc: dict[str, float] = {}
        self._span_handle = -1

    def _fold_current_peaks(self) -> dict[str, float]:
        peaks = self._peak_acc
        for meter in self._telemetry._meters:
            for key, value in meter.peaks().items():
                peaks[key] = max(peaks.get(key, 0.0), value)
        return peaks

    def _snapshot_into(self, stats: PhaseStats) -> None:
        end_counters = self._telemetry._counter_totals()
        for key, value in end_counters.items():
            stats.counters[key] = value - self._start_counters.get(key, 0.0)
        # Meters are NOT reset here: the gauges since the last reset (this
        # phase's entry) stay visible, so enclosing phases absorb them too.
        stats.peaks = dict(self._fold_current_peaks())

    def __enter__(self) -> "_PhaseContext":
        self._start_counters = self._telemetry._counter_totals()
        # Bank the peaks the enclosing phases have already seen — resetting
        # the meters for this phase must not erase them.
        for enclosing in self._telemetry._active:
            enclosing._fold_current_peaks()
        for meter in self._telemetry._meters:
            meter.reset_peaks()
        self._peak_acc = {}
        self._telemetry._active.append(self)
        tracer = self._telemetry.tracer
        tracer.push_phase(self._name)
        # The span begin shares this exact stamp with wall_seconds, so the
        # traced phase duration reconciles with telemetry to the float.
        self._start_wall = time.perf_counter()
        self._span_handle = tracer.begin(
            self._name, track="pipeline", cat="phase", det=True,
            at=self._start_wall)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_wall = time.perf_counter()
        error = None if exc_type is None else f"{exc_type.__name__}: {exc}"
        stats = PhaseStats(self._name,
                           wall_seconds=end_wall - self._start_wall,
                           error=error)
        try:
            if error is None:
                # A meter raising here propagates to the caller — but via
                # the finally below it can no longer leak this context on
                # the active stack.
                self._snapshot_into(stats)
                self._telemetry._record(stats)
            else:
                # The phase body already failed: snapshot best-effort (a
                # broken meter must not mask the original exception) and
                # keep the tainted stats out of the merged totals.
                try:
                    self._snapshot_into(stats)
                except Exception:
                    pass
                self._telemetry._failed.append(stats)
        finally:
            try:
                self._telemetry._active.remove(self)
            except ValueError:
                pass
            tracer = self._telemetry.tracer
            tracer.end(self._span_handle, at=end_wall, error=error)
            tracer.pop_phase()


#: Separator between a job namespace and a phase name in aggregated stats
#: (``"job003/map"``). Chosen so it can never collide with a phase name.
NAMESPACE_SEP = "/"


class Telemetry:
    """Collects :class:`PhaseStats` for a pipeline run.

    Phases with the same name occurring more than once (e.g. per-partition
    sort rounds) are merged: wall times and counters accumulate, peaks take
    the maximum — matching how the paper reports one row per phase.

    A *service-level* aggregate collecting many concurrent jobs must not
    let two jobs' same-named phases collide at collection time: their
    counter deltas come from different meter sets and their peaks are
    unrelated, so silently merging ``map`` with ``map`` produces totals
    attributed to the wrong job. Use :meth:`absorb` with a per-job
    namespace, and :meth:`merged_by_phase` for correct cross-job totals.
    """

    def __init__(self, *, tracer=None) -> None:
        if tracer is None:
            # Lazy: repro.trace's package init reaches back into this
            # module, so the import must not run at telemetry import time.
            from .trace.tracer import NULL_TRACER as tracer
        self.tracer = tracer
        self._meters: list[Meter] = []
        self._phases: dict[str, PhaseStats] = {}
        self._order: list[str] = []
        self._active: list[_PhaseContext] = []
        self._failed: list[PhaseStats] = []

    def register(self, meter: Meter) -> None:
        """Attach a telemetry source; subsequent phases include its data."""
        self._meters.append(meter)

    def phase(self, name: str) -> _PhaseContext:
        """Measure one phase: ``with telemetry.phase("sort"): ...``."""
        return _PhaseContext(self, name)

    def _counter_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for meter in self._meters:
            for key, value in meter.counters().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def _record(self, stats: PhaseStats) -> None:
        if stats.name in self._phases:
            self._phases[stats.name] = self._phases[stats.name].merged_with(stats)
        else:
            self._phases[stats.name] = stats
            self._order.append(stats.name)

    def absorb(self, stats: PhaseStats, *, namespace: str | None = None) -> None:
        """Fold a finished :class:`PhaseStats` from another run into this one.

        With a ``namespace`` (a job id), the stats are recorded under
        ``"<namespace>/<name>"`` so two concurrent jobs running the same
        phase land in distinct rows — the collision fix for multi-tenant
        aggregation. Failed stats go to :attr:`failed`, never the totals.
        """
        name = (f"{namespace}{NAMESPACE_SEP}{stats.name}" if namespace
                else stats.name)
        copied = PhaseStats(name, stats.wall_seconds, dict(stats.counters),
                            dict(stats.peaks), stats.error)
        if copied.error is None:
            self._record(copied)
        else:
            self._failed.append(copied)

    def merged_by_phase(self) -> dict[str, PhaseStats]:
        """Per-phase totals with job namespaces stripped.

        ``job001/map`` and ``job002/map`` merge into one ``map`` row (wall
        times and counters add, peaks take the max over jobs) — the
        cross-job analog of the paper's one-row-per-phase tables.
        """
        merged: dict[str, PhaseStats] = {}
        for stats in self:
            base = stats.name.rsplit(NAMESPACE_SEP, 1)[-1]
            renamed = PhaseStats(base, stats.wall_seconds,
                                 dict(stats.counters), dict(stats.peaks),
                                 stats.error)
            merged[base] = (merged[base].merged_with(renamed)
                            if base in merged else renamed)
        return merged

    def __iter__(self) -> Iterator[PhaseStats]:
        return (self._phases[name] for name in self._order)

    def __getitem__(self, name: str) -> PhaseStats:
        return self._phases[name]

    def __contains__(self, name: str) -> bool:
        return name in self._phases

    @property
    def phases(self) -> list[PhaseStats]:
        """Recorded phases in first-seen order."""
        return [self._phases[name] for name in self._order]

    @property
    def failed(self) -> list[PhaseStats]:
        """Phases whose body raised, tagged with their error, unmerged."""
        return list(self._failed)

    def total_wall_seconds(self) -> float:
        """Sum of wall time over all recorded phases."""
        return sum(stats.wall_seconds for stats in self)

    def total_sim_seconds(self) -> float:
        """Sum of modeled hardware time over all recorded phases."""
        return sum(stats.sim_seconds for stats in self)

    def report(self) -> str:
        """Multi-line report, one row per phase plus a total row.

        Failed phases (if any) are listed after the total, clearly tagged,
        and excluded from the totals themselves.
        """
        lines = [stats.summary() for stats in self]
        lines.append(
            f"total: wall={format_duration(self.total_wall_seconds())} "
            f"sim={format_duration(self.total_sim_seconds())}"
        )
        lines.extend(stats.summary() for stats in self._failed)
        return "\n".join(lines)

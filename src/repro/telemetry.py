"""Per-phase telemetry for pipeline runs.

The evaluation section of the paper reports, per assembly phase, the wall
time (Tables II/III) and the peak host/device memory (Tables IV/V). This
module provides the plumbing that gathers those numbers during a run:

* a :class:`Meter` protocol — anything exposing monotonically increasing
  counters and resettable high-water gauges,
* :class:`Telemetry` — registers meters and, via :meth:`Telemetry.phase`,
  snapshots counter deltas and gauge peaks per named phase,
* :class:`PhaseStats` — the per-phase record the benchmarks render.

Meters are implemented by the device/host memory pools, the simulated clock
and the I/O accountant; the pipeline only talks to this module.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Protocol

from .units import format_duration, format_size


class Meter(Protocol):
    """A telemetry source.

    ``counters()`` returns monotonically increasing totals (e.g. bytes read);
    ``peaks()`` returns high-water gauges since the last ``reset_peaks()``
    (e.g. peak device bytes).
    """

    def counters(self) -> Mapping[str, float]:
        """Monotonically increasing totals."""
        ...

    def peaks(self) -> Mapping[str, float]:
        """High-water gauges since the last reset."""
        ...

    def reset_peaks(self) -> None:
        """Reset gauges to their current values."""
        ...


@dataclass
class PhaseStats:
    """Everything recorded about one pipeline phase.

    ``counters`` holds deltas of every registered meter counter over the
    phase; ``peaks`` holds each gauge's high-water mark within the phase.
    """

    name: str
    wall_seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    peaks: dict[str, float] = field(default_factory=dict)

    @property
    def sim_seconds(self) -> float:
        """Modeled (simulated-hardware) seconds accrued during the phase."""
        return self.counters.get("sim_seconds", 0.0)

    @property
    def overlap_saved_s(self) -> float:
        """Wall seconds the pipelined overlap removed during this phase.

        Background work (worker tasks, read-ahead, write-behind) ran for
        ``par_busy_s`` seconds; the caller thread only *blocked* on it for
        ``par_wait_s``. A serialized schedule would have paid the full
        busy time on the critical path, so the difference is the saving.
        Zero in serial mode (the counters never move).
        """
        return max(0.0, self.counters.get("par_busy_s", 0.0)
                   - self.counters.get("par_wait_s", 0.0))

    def merged_with(self, other: "PhaseStats") -> "PhaseStats":
        """Combine two phases of the same name (times add, peaks max)."""
        merged = PhaseStats(self.name, self.wall_seconds + other.wall_seconds)
        for key in set(self.counters) | set(other.counters):
            merged.counters[key] = self.counters.get(key, 0.0) + other.counters.get(key, 0.0)
        for key in set(self.peaks) | set(other.peaks):
            merged.peaks[key] = max(self.peaks.get(key, 0.0), other.peaks.get(key, 0.0))
        return merged

    def summary(self) -> str:
        """One-line human-readable summary used by verbose pipeline logs."""
        parts = [f"{self.name}: wall={format_duration(self.wall_seconds)}"]
        if "sim_seconds" in self.counters:
            parts.append(f"sim={format_duration(self.sim_seconds)}")
        if self.overlap_saved_s > 0.0:
            parts.append(f"overlap_saved={format_duration(self.overlap_saved_s)}")
        for key in ("disk_read_bytes", "disk_write_bytes"):
            if self.counters.get(key):
                parts.append(f"{key.split('_')[1]}={format_size(self.counters[key])}")
        for key, value in self.peaks.items():
            parts.append(f"peak_{key}={format_size(value)}")
        return " ".join(parts)


class EventMeter:
    """A dict-backed :class:`Meter` for sparse event counters.

    Sources that are not memory pools or clocks — e.g. the fault-injection
    plan counting injected faults and instrumented I/O operations, or the
    pipelined executor counting busy/wait seconds — bump named counters
    here and register the meter like any other, so per-phase deltas
    (faults injected during *sort* vs *reduce*) come for free. Bumps are
    lock-protected: executor worker threads update concurrently.
    """

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}
        self._lock = threading.Lock()

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increase counter ``key`` by ``amount``."""
        with self._lock:
            self._counts[key] = self._counts.get(key, 0.0) + amount

    def counters(self) -> Mapping[str, float]:
        """Monotonically increasing event totals."""
        with self._lock:
            return dict(self._counts)

    def peaks(self) -> Mapping[str, float]:
        """Event meters expose no gauges."""
        return {}

    def reset_peaks(self) -> None:
        """No gauges to reset."""


class _PhaseContext:
    """Context manager produced by :meth:`Telemetry.phase`.

    Phases nest: entering an inner phase folds the gauges observed so far
    into every *enclosing* context's accumulator before resetting the
    meters, so an outer phase's peak covers its whole extent — including
    everything that happened inside inner phases (outer peak ≥ inner peak).
    """

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name
        self._start_wall = 0.0
        self._start_counters: dict[str, float] = {}
        self._peak_acc: dict[str, float] = {}

    def _fold_current_peaks(self) -> dict[str, float]:
        peaks = self._peak_acc
        for meter in self._telemetry._meters:
            for key, value in meter.peaks().items():
                peaks[key] = max(peaks.get(key, 0.0), value)
        return peaks

    def __enter__(self) -> "_PhaseContext":
        self._start_counters = self._telemetry._counter_totals()
        # Bank the peaks the enclosing phases have already seen — resetting
        # the meters for this phase must not erase them.
        for enclosing in self._telemetry._active:
            enclosing._fold_current_peaks()
        for meter in self._telemetry._meters:
            meter.reset_peaks()
        self._peak_acc = {}
        self._telemetry._active.append(self)
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._start_wall
        stats = PhaseStats(self._name, wall_seconds=wall)
        end_counters = self._telemetry._counter_totals()
        for key, value in end_counters.items():
            stats.counters[key] = value - self._start_counters.get(key, 0.0)
        # Meters are NOT reset here: the gauges since the last reset (this
        # phase's entry) stay visible, so enclosing phases absorb them too.
        stats.peaks = dict(self._fold_current_peaks())
        self._telemetry._active.remove(self)
        self._telemetry._record(stats)


class Telemetry:
    """Collects :class:`PhaseStats` for a pipeline run.

    Phases with the same name occurring more than once (e.g. per-partition
    sort rounds) are merged: wall times and counters accumulate, peaks take
    the maximum — matching how the paper reports one row per phase.
    """

    def __init__(self) -> None:
        self._meters: list[Meter] = []
        self._phases: dict[str, PhaseStats] = {}
        self._order: list[str] = []
        self._active: list[_PhaseContext] = []

    def register(self, meter: Meter) -> None:
        """Attach a telemetry source; subsequent phases include its data."""
        self._meters.append(meter)

    def phase(self, name: str) -> _PhaseContext:
        """Measure one phase: ``with telemetry.phase("sort"): ...``."""
        return _PhaseContext(self, name)

    def _counter_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for meter in self._meters:
            for key, value in meter.counters().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def _record(self, stats: PhaseStats) -> None:
        if stats.name in self._phases:
            self._phases[stats.name] = self._phases[stats.name].merged_with(stats)
        else:
            self._phases[stats.name] = stats
            self._order.append(stats.name)

    def __iter__(self) -> Iterator[PhaseStats]:
        return (self._phases[name] for name in self._order)

    def __getitem__(self, name: str) -> PhaseStats:
        return self._phases[name]

    def __contains__(self, name: str) -> bool:
        return name in self._phases

    @property
    def phases(self) -> list[PhaseStats]:
        """Recorded phases in first-seen order."""
        return [self._phases[name] for name in self._order]

    def total_wall_seconds(self) -> float:
        """Sum of wall time over all recorded phases."""
        return sum(stats.wall_seconds for stats in self)

    def total_sim_seconds(self) -> float:
        """Sum of modeled hardware time over all recorded phases."""
        return sum(stats.sim_seconds for stats in self)

    def report(self) -> str:
        """Multi-line report, one row per phase plus a total row."""
        lines = [stats.summary() for stats in self]
        lines.append(
            f"total: wall={format_duration(self.total_wall_seconds())} "
            f"sim={format_duration(self.total_sim_seconds())}"
        )
        return "\n".join(lines)

"""The per-overlap-length partition store.

The map phase converts each read batch into ``(length, fingerprint, vertex)``
tuples and splits them by length into ``l_max − l_min`` partitions per side
(S = suffixes, P = prefixes), "each into a file corresponding to the
partition" (§III.A). Partitions below ``l_min`` are never materialized and
the ``l_max`` partition is dropped to avoid self-loops.

The store owns the naming scheme and the writer lifecycle; sort and reduce
phases address partitions as ``(side, length)`` pairs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ConfigError, StreamProtocolError
from ..faults import plan as faults
from .io_stats import IOAccountant
from .streams import RunReader, RunWriter, _legacy_io

SIDES = ("S", "P")


class PartitionStore:
    """Manages the S/P partition run files under one directory."""

    def __init__(self, root: str | Path, dtype: np.dtype,
                 accountant: IOAccountant | None = None):
        self.root = Path(root)
        self.dtype = np.dtype(dtype)
        self.accountant = accountant
        self.root.mkdir(parents=True, exist_ok=True)
        self._writers: dict[tuple[str, int], RunWriter] = {}
        self._finalized = False
        # Grouped accounting is part of the optimized hot path; the seed
        # discipline (REPRO_LEGACY_IO=1) meters every append individually.
        self._grouped = not _legacy_io()

    # -- paths ------------------------------------------------------------

    def path(self, side: str, length: int, *, sorted_run: bool = False) -> Path:
        """File path of one partition (or of its sorted counterpart)."""
        if side not in SIDES:
            raise ConfigError(f"side must be one of {SIDES}, got {side!r}")
        stem = f"{side}_{length:05d}"
        return self.root / (f"{stem}.sorted.run" if sorted_run else f"{stem}.run")

    # -- writing (map phase) -----------------------------------------------

    def append(self, side: str, length: int, records: np.ndarray) -> None:
        """Append records to partition ``(side, length)``."""
        if self._finalized:
            # A late append would silently truncate the partition (RunWriter
            # opens "wb") and corrupt the sorted phase's input.
            raise StreamProtocolError(
                f"{self.root}: append to ({side}, {length}) after finalize()")
        key = (side, length)
        writer = self._writers.get(key)
        if writer is None:
            writer = RunWriter(self.path(side, length), self.dtype, self.accountant)
            self._writers[key] = writer
        writer.append(records)

    def append_pairs(self, pairs) -> None:
        """Append ``(length, prefix_records, suffix_records)`` tuples.

        Equivalent to ``append("P", ...)`` then ``append("S", ...)`` per
        tuple — same writers, same order, same bytes — but the accounting
        for the whole fan-out lands as one grouped, seekless
        :meth:`~repro.extmem.io_stats.IOAccountant.add_write_run` call
        (partition writers never seek). The map phase calls this once per
        batch × orientation instead of ~150 times. With a fault plan armed
        or under the seed I/O discipline every append is delivered and
        metered individually, exactly as before.
        """
        if not self._grouped or self.accountant is None or faults.active():
            for length, prefix, suffix in pairs:
                self.append("P", length, prefix)
                self.append("S", length, suffix)
            return
        if self._finalized:
            raise StreamProtocolError(
                f"{self.root}: append_pairs after finalize()")
        writers = self._writers
        sizes = []
        for length, prefix, suffix in pairs:
            for side, records in (("P", prefix), ("S", suffix)):
                key = (side, length)
                writer = writers.get(key)
                if writer is None:
                    writer = RunWriter(self.path(side, length), self.dtype,
                                       self.accountant)
                    writers[key] = writer
                sizes.append(writer.append(records, meter=False))
        self.accountant.add_write_run(sizes)

    def finalize(self) -> None:
        """Close all open partition writers (end of the map phase)."""
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        self._finalized = True

    def __enter__(self) -> "PartitionStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finalize()

    # -- reading (sort/reduce phases) -----------------------------------------

    def lengths(self) -> list[int]:
        """All partition lengths present on disk, ascending."""
        if self._writers:
            raise StreamProtocolError("finalize() the store before reading partitions")
        found = set()
        for path in self.root.glob("[SP]_*.run"):
            stem = path.name.split(".")[0]
            found.add(int(stem.split("_")[1]))
        return sorted(found)

    def open_run(self, side: str, length: int, *, sorted_run: bool = False) -> RunReader:
        """Open one partition for sequential reading."""
        return RunReader(self.path(side, length, sorted_run=sorted_run),
                         self.dtype, self.accountant)

    def records_in(self, side: str, length: int, *, sorted_run: bool = False) -> int:
        """Record count of one partition (0 if the file is absent)."""
        path = self.path(side, length, sorted_run=sorted_run)
        if not path.exists():
            return 0
        return path.stat().st_size // self.dtype.itemsize

    def total_bytes(self) -> int:
        """Bytes across every partition file currently on disk."""
        return sum(path.stat().st_size for path in self.root.glob("*.run"))

    def delete(self, side: str, length: int, *, sorted_run: bool = False) -> None:
        """Remove a partition file (after it has been consumed)."""
        self.path(side, length, sorted_run=sorted_run).unlink(missing_ok=True)

"""Algorithm 1, generalized: external-memory merging of k sorted runs.

The merge never random-accesses its inputs. It slides a window of ``M/k``
records over each of the ``k`` runs and, per iteration, either

* copies one window straight through when it wholly precedes every other
  run's head (lines 5–6 of Algorithm 1), or
* *equalizes* the windows — truncates every window at the smallest tail
  key among the k windows (lines 8–15 generalized: any record at or below
  that boundary can never be preceded by an unread record) — and hands the
  equalized prefixes to the merge executor (``GPU_MERGE``, line 16).

The paper's pairwise Algorithm 1 is exactly the ``k = 2`` case
(:func:`merge_streams`); :func:`merge_streams_k` is the fanout-k
generalization that cuts level-1 merge rounds from ``⌈log₂ R⌉`` to
``⌈log_k R⌉``, as in the k-way external merges of Bonizzoni et al. and
Guidi et al.

The same routine is used at both levels of the two-level model: disk runs
merged through host memory, and host blocks merged through device memory;
only the chunk *source*, the *emit* sink, and the merge executor differ.
The executor is either a binary ``merge_fn`` (equalized prefixes are folded
pairwise in a balanced tournament) or a k-ary ``merge_fn_k`` (a gathered
k-way device kernel). Output order is always globally sorted; ordering
among equal keys is not preserved across window boundaries (fingerprints
do not need it).
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from ..errors import ConfigError, SortContractError
from ..trace.tracer import NULL_TRACER
from .records import KEY_FIELD

MergeFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
MergeKFn = Callable[[Sequence[np.ndarray]], np.ndarray]
EmitFn = Callable[[np.ndarray], None]


class ChunkSource(Protocol):
    """Anything that yields successive record chunks (RunReader, array wrapper)."""

    def read(self, n: int) -> np.ndarray:
        """Consume up to ``n`` records (empty array at end of stream)."""
        ...


class ArraySource:
    """A :class:`ChunkSource` over an in-memory record array."""

    def __init__(self, records: np.ndarray):
        self._records = records
        self._cursor = 0

    def read(self, n: int) -> np.ndarray:
        """Consume up to ``n`` records from the array."""
        chunk = self._records[self._cursor:self._cursor + n]
        self._cursor += chunk.shape[0]
        return chunk


def _tournament_fold(parts: list[np.ndarray], merge_fn: MergeFn) -> np.ndarray:
    """Fold k sorted parts into one via balanced pairwise merges."""
    while len(parts) > 1:
        folded = [merge_fn(parts[i], parts[i + 1])
                  for i in range(0, len(parts) - 1, 2)]
        if len(parts) % 2:
            folded.append(parts[-1])
        parts = folded
    return parts[0]


class _Window:
    """One source's sliding merge window over reusable ping-pong buffers.

    The seed formulation re-allocated every refill
    (``np.concatenate([buf, extra])``); this one appends into a pair of
    persistent window-capacity buffers, so a merge round's working set is
    allocated once. Two aliasing rules keep it byte-identical under the
    write-behind sink, which holds emitted arrays until a background
    thread writes them:

    * a chunk fully replacing an empty window is *adopted* as-is
      (zero-copy, like the seed) — source chunks are never written to;
    * :meth:`emit_all` hands a persistent buffer over to the sink and
      takes a fresh one, because the window refills long before the sink
      is done with the emitted records.
    """

    __slots__ = ("live", "start", "length", "_buf", "_spare", "_capacity",
                 "_reuse")

    def __init__(self, capacity: int, empty: np.ndarray, reuse: bool = True):
        self._capacity = capacity
        self._reuse = reuse
        self.live = empty
        self.start = 0
        self.length = 0
        self._buf: np.ndarray | None = None
        self._spare: np.ndarray | None = None

    def view(self) -> np.ndarray:
        """The current window records."""
        return self.live[self.start:self.start + self.length]

    def absorb(self, extra: np.ndarray) -> None:
        """Append ``extra`` after the remaining records, reusing buffers."""
        n = extra.shape[0]
        if self.length == 0:
            self.live = extra  # adopt the fresh chunk, zero-copy
            self.start = 0
            self.length = n
            return
        if not self._reuse:
            # Legacy formulation: a fresh concatenation per refill.
            self.live = np.concatenate([self.view(), extra])
            self.start = 0
            self.length += n
            return
        if self._buf is None:
            self._buf = np.empty(self._capacity, dtype=extra.dtype)
            self._spare = np.empty(self._capacity, dtype=extra.dtype)
        if self.live is self._buf and self.start == 0:
            self._buf[self.length:self.length + n] = extra
        else:
            if self.live is self._buf:
                self._buf, self._spare = self._spare, self._buf
            self._buf[:self.length] = self.view()
            self._buf[self.length:self.length + n] = extra
            self.live = self._buf
            self.start = 0
        self.length += n

    def consume(self, rank: int) -> None:
        """Drop ``rank`` records off the front (they were merged out)."""
        self.start += rank
        self.length -= rank

    def emit_all(self) -> np.ndarray:
        """The whole window, detached so a sink may hold it indefinitely."""
        out = self.view()
        if self.live is self._buf:
            self._buf = np.empty(self._capacity, dtype=out.dtype)
        self.live = out[:0]
        self.start = 0
        self.length = 0
        return out


def merge_streams_k(sources: Sequence[ChunkSource], emit: EmitFn, *,
                    window_records: int, merge_fn: MergeFn | None = None,
                    merge_fn_k: MergeKFn | None = None,
                    key_field: str = KEY_FIELD, tracer=NULL_TRACER,
                    reuse_windows: bool = True) -> int:
    """Fanout-k Algorithm 1; returns the number of records emitted.

    ``window_records`` is ``M/k`` — the per-run window size; the merge
    executor therefore never sees more than ``len(sources) *
    window_records`` records. ``merge_fn_k`` merges the equalized window
    prefixes in one shot when provided; otherwise the binary ``merge_fn``
    is folded over them pairwise. At least one executor is required.
    ``tracer`` records a span per equalized-window merge (and an instant
    per pass-through window); only the level-1 disk merge passes a real
    one — the inner level-2 merges would flood the event log.
    ``reuse_windows=False`` restores the seed refill behaviour (a fresh
    concatenation per refill) instead of the persistent window buffers.
    """
    if window_records < 1:
        raise ConfigError("window_records must be >= 1")
    if merge_fn is None and merge_fn_k is None:
        raise ConfigError("merge_streams_k needs merge_fn or merge_fn_k")
    sources = list(sources)
    emitted = 0

    def _emit(records: np.ndarray) -> None:
        nonlocal emitted
        if records.shape[0]:
            emit(records)
            emitted += records.shape[0]

    def _merge_parts(parts: list[np.ndarray]) -> np.ndarray:
        if len(parts) == 1:
            # The lone equalized prefix is a view into a reusable window
            # buffer; detach it so a sink may hold it past the next refill.
            return parts[0].copy() if reuse_windows else parts[0]
        if merge_fn_k is not None:
            return merge_fn_k(parts)
        return _tournament_fold(parts, merge_fn)

    if not sources:
        return 0
    empty = sources[0].read(0)
    windows = [_Window(window_records, empty, reuse_windows)
               for _ in sources]
    active = list(range(len(sources)))
    while True:
        # Refill every window; drop sources exhausted with an empty buffer.
        for i in list(active):
            win = windows[i]
            if win.length < window_records:
                extra = sources[i].read(window_records - win.length)
                if extra.shape[0]:
                    # Sortedness contract check: a corrupted run (e.g. a
                    # bit-flipped key) must fail loudly here, not merge into
                    # silently mis-sorted output downstream.
                    keys = extra[key_field]
                    if np.any(keys[1:] < keys[:-1]) or (
                            win.length
                            and win.view()[key_field][-1] > keys[0]):
                        raise SortContractError(
                            f"merge input {i} violates sortedness on "
                            f"{key_field!r}")
                    win.absorb(extra)
            if win.length == 0:
                active.remove(i)
        if not active:
            return emitted
        if len(active) == 1:
            # Line 19: every other run is exhausted; stream the survivor out.
            survivor = active[0]
            _emit(windows[survivor].emit_all())
            while True:
                chunk = sources[survivor].read(window_records)
                if chunk.shape[0] == 0:
                    return emitted
                _emit(chunk)
        heads = {i: windows[i].view()[key_field][0] for i in active}
        tails = {i: windows[i].view()[key_field][-1] for i in active}
        # Pass-through fast path: a window wholly preceding all other heads.
        passthrough = next(
            (i for i in active
             if all(tails[i] <= heads[j] for j in active if j != i)), None)
        if passthrough is not None:
            if tracer.enabled:
                tracer.instant("merge-passthrough", track="merge",
                               records=int(windows[passthrough].length))
            _emit(windows[passthrough].emit_all())
            continue
        # Equalize every window at the smallest tail key, then merge: any
        # record <= that boundary precedes every unread record of every run.
        boundary = min(tails.values())
        parts: list[np.ndarray] = []
        for i in active:
            win = windows[i]
            rank = int(np.searchsorted(win.view()[key_field], boundary,
                                       side="right"))
            if rank:
                parts.append(win.view()[:rank])
                win.consume(rank)
        # det=False: under write-behind the window's simulated midpoint
        # depends on how far the background writer has drained.
        if tracer.enabled:
            with tracer.span("merge-window", track="merge", ways=len(parts),
                             records=int(sum(p.shape[0] for p in parts))):
                _emit(_merge_parts(parts))
        else:
            _emit(_merge_parts(parts))


def merge_streams(source_a: ChunkSource, source_b: ChunkSource, emit: EmitFn, *,
                  window_records: int, merge_fn: MergeFn,
                  key_field: str = KEY_FIELD) -> int:
    """Run pairwise Algorithm 1 (the ``k = 2`` case of
    :func:`merge_streams_k`); returns the number of records emitted.

    ``window_records`` is ``M/2`` — the per-run window size; the merge
    executor therefore never sees more than ``2 * window_records`` records.
    """
    return merge_streams_k([source_a, source_b], emit,
                           window_records=window_records, merge_fn=merge_fn,
                           key_field=key_field)


def merge_in_memory_k(runs: Sequence[np.ndarray], *, window_records: int,
                      merge_fn: MergeFn | None = None,
                      merge_fn_k: MergeKFn | None = None,
                      key_field: str = KEY_FIELD,
                      reuse_windows: bool = True) -> np.ndarray:
    """Fanout-k Algorithm 1 over in-memory runs; returns the merged run.

    This is the *second level* of the hybrid sort: host-resident blocks are
    merged by streaming device-sized windows through the merge executor.
    """
    runs = list(runs)
    if not runs:
        raise ConfigError("merge_in_memory_k needs at least one run")
    chunks: list[np.ndarray] = []
    merge_streams_k([ArraySource(run) for run in runs], chunks.append,
                    window_records=window_records, merge_fn=merge_fn,
                    merge_fn_k=merge_fn_k, key_field=key_field,
                    reuse_windows=reuse_windows)
    if not chunks:
        return runs[0][:0].copy()
    return np.concatenate(chunks)


def merge_in_memory(records_a: np.ndarray, records_b: np.ndarray, *,
                    window_records: int, merge_fn: MergeFn,
                    key_field: str = KEY_FIELD) -> np.ndarray:
    """Pairwise Algorithm 1 over two in-memory runs; returns the merged run."""
    return merge_in_memory_k([records_a, records_b],
                             window_records=window_records, merge_fn=merge_fn,
                             key_field=key_field)


def merge_runs_k(readers: Sequence[ChunkSource], writer, *,
                 window_records: int, merge_fn: MergeFn | None = None,
                 merge_fn_k: MergeKFn | None = None,
                 key_field: str = KEY_FIELD, tracer=NULL_TRACER,
                 reuse_windows: bool = True) -> int:
    """Fanout-k Algorithm 1 over on-disk runs; appends to an open RunWriter.

    This is the *first level*: disk runs merged through host memory.
    """
    return merge_streams_k(readers, writer.append,
                           window_records=window_records, merge_fn=merge_fn,
                           merge_fn_k=merge_fn_k, key_field=key_field,
                           tracer=tracer, reuse_windows=reuse_windows)


def merge_runs(reader_a, reader_b, writer, *, window_records: int,
               merge_fn: MergeFn, key_field: str = KEY_FIELD) -> int:
    """Pairwise Algorithm 1 over two on-disk runs (``k = 2``)."""
    return merge_runs_k([reader_a, reader_b], writer,
                        window_records=window_records, merge_fn=merge_fn,
                        key_field=key_field)

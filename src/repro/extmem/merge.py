"""Algorithm 1: external-memory merging of two sorted runs.

The merge never random-accesses its inputs. It slides a window of ``M/2``
records over each run and, per iteration, either

* copies one window straight through when the runs are totally ordered at
  the window boundary (lines 5–6 of Algorithm 1), or
* *equalizes* the windows — shrinks the window holding the larger tail key
  to the upper bound of the smaller tail key (lines 8–15) — and hands the
  equalized pair to the merge executor (``GPU_MERGE``, line 16).

The same routine is used at both levels of the two-level model:
disk runs merged through host memory, and host blocks merged through device
memory; only the chunk *source*, the *emit* sink, and the merge executor
differ. Output order is always globally sorted; ordering among equal keys
is not preserved across window boundaries (fingerprints do not need it).
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..errors import ConfigError
from .records import KEY_FIELD

MergeFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
EmitFn = Callable[[np.ndarray], None]


class ChunkSource(Protocol):
    """Anything that yields successive record chunks (RunReader, array wrapper)."""

    def read(self, n: int) -> np.ndarray:
        """Consume up to ``n`` records (empty array at end of stream)."""
        ...


class ArraySource:
    """A :class:`ChunkSource` over an in-memory record array."""

    def __init__(self, records: np.ndarray):
        self._records = records
        self._cursor = 0

    def read(self, n: int) -> np.ndarray:
        """Consume up to ``n`` records from the array."""
        chunk = self._records[self._cursor:self._cursor + n]
        self._cursor += chunk.shape[0]
        return chunk


def merge_streams(source_a: ChunkSource, source_b: ChunkSource, emit: EmitFn, *,
                  window_records: int, merge_fn: MergeFn,
                  key_field: str = KEY_FIELD) -> int:
    """Run Algorithm 1; returns the number of records emitted.

    ``window_records`` is ``M/2`` — the per-run window size; the merge
    executor therefore never sees more than ``2 * window_records`` records.
    """
    if window_records < 1:
        raise ConfigError("window_records must be >= 1")
    emitted = 0

    def _emit(records: np.ndarray) -> None:
        nonlocal emitted
        if records.shape[0]:
            emit(records)
            emitted += records.shape[0]

    empty = source_a.read(0)
    buf_a = empty
    buf_b = empty
    while True:
        if buf_a.shape[0] < window_records:
            extra = source_a.read(window_records - buf_a.shape[0])
            buf_a = extra if buf_a.shape[0] == 0 else np.concatenate([buf_a, extra])
        if buf_b.shape[0] < window_records:
            extra = source_b.read(window_records - buf_b.shape[0])
            buf_b = extra if buf_b.shape[0] == 0 else np.concatenate([buf_b, extra])
        if buf_a.shape[0] == 0 or buf_b.shape[0] == 0:
            # Line 19: one run is exhausted; stream the other straight out.
            _emit(buf_a)
            _emit(buf_b)
            survivor = source_a if buf_b.shape[0] == 0 else source_b
            while True:
                chunk = survivor.read(window_records)
                if chunk.shape[0] == 0:
                    return emitted
                _emit(chunk)
        keys_a = buf_a[key_field]
        keys_b = buf_b[key_field]
        if keys_a[-1] <= keys_b[0]:  # A ≺ B
            _emit(buf_a)
            buf_a = empty
            continue
        if keys_b[-1] < keys_a[0]:  # B ≺ A
            _emit(buf_b)
            buf_b = empty
            continue
        # Equalize windows on the smaller tail key, then merge (lines 8-16).
        if keys_a[-1] <= keys_b[-1]:
            boundary = keys_a[-1]
            rank = int(np.searchsorted(keys_b, boundary, side="right"))
            _emit(merge_fn(buf_a, buf_b[:rank]))
            buf_a = empty
            buf_b = buf_b[rank:]
        else:
            boundary = keys_b[-1]
            rank = int(np.searchsorted(keys_a, boundary, side="right"))
            _emit(merge_fn(buf_a[:rank], buf_b))
            buf_b = empty
            buf_a = buf_a[rank:]


def merge_in_memory(records_a: np.ndarray, records_b: np.ndarray, *,
                    window_records: int, merge_fn: MergeFn,
                    key_field: str = KEY_FIELD) -> np.ndarray:
    """Algorithm 1 over two in-memory runs; returns the merged run.

    This is the *second level* of the hybrid sort: host-resident blocks are
    merged by streaming device-sized windows through ``merge_fn``.
    """
    chunks: list[np.ndarray] = []
    merge_streams(ArraySource(records_a), ArraySource(records_b), chunks.append,
                  window_records=window_records, merge_fn=merge_fn,
                  key_field=key_field)
    if not chunks:
        return records_a[:0].copy()
    return np.concatenate(chunks)


def merge_runs(reader_a, reader_b, writer, *, window_records: int,
               merge_fn: MergeFn, key_field: str = KEY_FIELD) -> int:
    """Algorithm 1 over two on-disk runs; appends to an open RunWriter.

    This is the *first level*: disk runs merged through host memory.
    """
    return merge_streams(reader_a, reader_b, writer.append,
                         window_records=window_records, merge_fn=merge_fn,
                         key_field=key_field)

"""External-memory substrate: streams, partitions, and the two-level sort.

This package implements the paper's semi-streaming machinery (§III):

* :mod:`repro.extmem.records` — the (fingerprint, read-id) KV record layout,
* :mod:`repro.extmem.io_stats` — disk accounting + modeled disk time,
* :mod:`repro.extmem.streams` — sequential read-only / write-only run files
  (the paper's Fig. 3 memory types),
* :mod:`repro.extmem.partitions` — the per-overlap-length partition store
  produced by the map phase,
* :mod:`repro.extmem.merge` — Algorithm 1 (window-equalized merge of two
  sorted runs),
* :mod:`repro.extmem.sort` — the hybrid two-level external sort
  (disk → host blocks of ``m_h`` → device chunks of ``m_d``).
"""

from .records import kv_dtype, make_records, record_fields
from .io_stats import IOAccountant
from .streams import RunReader, RunWriter
from .partitions import PartitionStore
from .merge import merge_runs, merge_in_memory
from .sort import ExternalSorter, SortReport

__all__ = [
    "kv_dtype",
    "make_records",
    "record_fields",
    "IOAccountant",
    "RunReader",
    "RunWriter",
    "PartitionStore",
    "merge_runs",
    "merge_in_memory",
    "ExternalSorter",
    "SortReport",
]

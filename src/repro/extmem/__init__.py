"""External-memory substrate: streams, partitions, and the two-level sort.

This package implements the paper's semi-streaming machinery (§III):

* :mod:`repro.extmem.records` — the (fingerprint, read-id) KV record layout,
* :mod:`repro.extmem.io_stats` — disk accounting + modeled disk time,
* :mod:`repro.extmem.streams` — sequential read-only / write-only run files
  (the paper's Fig. 3 memory types),
* :mod:`repro.extmem.partitions` — the per-overlap-length partition store
  produced by the map phase,
* :mod:`repro.extmem.merge` — Algorithm 1 generalized to fanout-k
  (window-equalized merge of k sorted runs; pairwise is ``k = 2``),
* :mod:`repro.extmem.sort` — the hybrid two-level external sort
  (disk → host blocks of ``m_h`` → device chunks of ``m_d``), merging
  ``merge_fanout`` runs per round.
"""

from .records import kv_dtype, make_records, record_fields
from .io_stats import IOAccountant
from .streams import RunReader, RunWriter
from .partitions import PartitionStore
from .merge import (merge_runs, merge_runs_k, merge_in_memory,
                    merge_in_memory_k, merge_streams, merge_streams_k)
from .sort import ExternalSorter, SortReport, derive_fanout, merge_rounds_for

__all__ = [
    "kv_dtype",
    "make_records",
    "record_fields",
    "IOAccountant",
    "RunReader",
    "RunWriter",
    "PartitionStore",
    "merge_runs",
    "merge_runs_k",
    "merge_in_memory",
    "merge_in_memory_k",
    "merge_streams",
    "merge_streams_k",
    "ExternalSorter",
    "SortReport",
    "derive_fanout",
    "merge_rounds_for",
]

"""The hybrid two-level external sort (§III.B), with fanout-k merging.

Level 1 (disk ↔ host): the input run is read in *host blocks* of ``m_h``
records, each block is sorted and written back as an initial run; runs are
then merged ``merge_fanout`` at a time (Algorithm 1 generalized to k
streams, each windowed at ``m_h / (HOST_KWAY_FOOTPRINT · k)`` records)
until one remains. Disk passes: ``1 + ⌈log_k(number of initial runs)⌉`` —
the paper's pairwise merge is the ``k = 2`` case, and raising the fanout
trades host window size for disk passes exactly as the k-way external
merges of Bonizzoni et al. and Guidi et al. do.

Level 2 (host ↔ device): a host block is sorted by splitting it into
*device chunks* of ``m_d`` records, radix-sorting each on the virtual GPU,
and merging the sorted chunks ``merge_fanout`` at a time with Algorithm 1
streaming device-sized windows — so the device never holds more than its
capacity, while the disk sees only the level-1 traffic. This is the
paper's key optimization: host buffering cuts disk passes by
``log(m_h/m_d)`` without changing the device-side work.

Footprint divisors translate the paper's "``m`` elements fit in memory"
into concrete buffer sizes that include the scratch space the kernels need
(ping-pong sort buffers, merge inputs + output).

Crash safety: all intermediate runs live in a ``<out>.scratch`` directory
that is removed whether the sort succeeds or raises, and the final run is
moved into place with an atomic :meth:`Path.replace` — an interrupted sort
never leaves partial output or scratch residue behind.
"""

from __future__ import annotations

import math
from contextlib import ExitStack
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..device.gpu import VirtualGPU
from ..device.memory import BufferPool, MemoryPool
from ..errors import ConfigError, DeviceMemoryError
from ..faults import plan as faults
from ..parallel import PipelineExecutor, shm
from ..parallel.process_backend import (RecordingClock, RecordingPool,
                                        replay_device_log)
from ..trace.tracer import NULL_TRACER
from .io_stats import IOAccountant
from .merge import merge_in_memory_k, merge_streams_k
from .records import KEY_FIELD
from .streams import RunReader, RunWriter

#: A block being sorted in host memory needs itself + its sorted copy.
HOST_SORT_FOOTPRINT = 2
#: A pairwise level-1 merge holds two input windows and one merged output
#: window (kept for the ``k = 2`` window arithmetic and older callers).
HOST_MERGE_FOOTPRINT = 4
#: Per-way cost of a fanout-k merge: one input window plus that window's
#: share of the merged output. k ways therefore claim
#: ``HOST_KWAY_FOOTPRINT · k`` windows of host budget, so each window is
#: ``m_h / (HOST_KWAY_FOOTPRINT · k)`` records (``k = 2`` reproduces
#: HOST_MERGE_FOOTPRINT).
HOST_KWAY_FOOTPRINT = 2
#: Device radix sort: input + ping-pong scratch + output.
DEVICE_SORT_FOOTPRINT = 3
#: Device merge: two input windows + merged output (+ slack).
DEVICE_MERGE_FOOTPRINT = 4
#: Per-way device cost of a gathered k-way merge (inputs + output).
DEVICE_KWAY_FOOTPRINT = 2
#: Ceiling for the auto-derived merge fanout: past ~16 ways the windows
#: shrink enough that per-window seek overhead erases the pass saving.
MAX_AUTO_FANOUT = 16

#: Task path the process backend resolves inside its workers.
_SORT_TASK = "repro.extmem.sort:_sort_block_task"


def derive_fanout(host_block_pairs: int, device_block_pairs: int) -> int:
    """Auto merge fanout for a host/device budget split.

    Picks the largest ``k`` (capped at :data:`MAX_AUTO_FANOUT`) whose
    level-1 windows ``m_h / (HOST_KWAY_FOOTPRINT · k)`` still hold at
    least one device chunk, so the level-2 device streaming below each
    window stays efficient.
    """
    device_chunk = max(2, device_block_pairs // DEVICE_SORT_FOOTPRINT)
    return max(2, min(MAX_AUTO_FANOUT,
                      host_block_pairs // (HOST_KWAY_FOOTPRINT * device_chunk)))


def merge_rounds_for(initial_runs: int, fanout: int) -> int:
    """``⌈log_k R⌉`` — merge rounds to fold ``initial_runs`` into one.

    Computed by iterated ceil-division, exactly as the merge loop groups
    runs, so model and implementation can never disagree on rounding.
    """
    rounds = 0
    runs = max(0, initial_runs)
    while runs > 1:
        runs = math.ceil(runs / fanout)
        rounds += 1
    return rounds


@dataclass(frozen=True)
class SortReport:
    """What one external sort did."""

    n_records: int
    initial_runs: int
    merge_rounds: int
    #: Merge fanout ``k`` used for the level-1 rounds (2 = pairwise).
    fanout: int = 2

    @property
    def disk_passes(self) -> int:
        """Times the whole dataset crossed the disk (run formation + rounds)."""
        return (1 + self.merge_rounds) if self.n_records else 0


class ExternalSorter:
    """Sorts run files larger than memory through the two-level hierarchy."""

    def __init__(self, *, gpu: VirtualGPU, host_pool: MemoryPool,
                 accountant: IOAccountant | None, dtype: np.dtype,
                 host_block_pairs: int, device_block_pairs: int,
                 merge_fanout: int = 2, key_field: str = KEY_FIELD,
                 executor: PipelineExecutor | None = None, tracer=None):
        if host_block_pairs < 2 or device_block_pairs < 2:
            raise ConfigError("block sizes must be >= 2 records")
        if merge_fanout < 0 or merge_fanout == 1:
            raise ConfigError("merge_fanout must be 0 (auto) or >= 2")
        self.gpu = gpu
        self.host_pool = host_pool
        self.accountant = accountant
        #: Pipelined execution (read-ahead, ordered block sorting, write-
        #: behind); the default is the serial single-worker executor.
        self.executor = executor if executor is not None else PipelineExecutor(1)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.dtype = np.dtype(dtype)
        self.key_field = key_field
        #: Buffer-reuse fast paths (in-place chunk sorts, consuming
        #: transfers, persistent merge windows) follow the device buffer
        #: pool's switch, so ``buffer_pool=False`` restores the seed
        #: allocation discipline end to end.
        self._reuse = gpu.buffers.enabled
        self.m_h = host_block_pairs
        self.m_d = min(device_block_pairs, host_block_pairs)
        self.fanout = merge_fanout or derive_fanout(self.m_h, self.m_d)
        self.host_block = max(2, self.m_h // HOST_SORT_FOOTPRINT)
        self.host_merge_window = max(1, self.m_h // HOST_MERGE_FOOTPRINT)
        self.host_kway_window = max(
            1, self.m_h // (HOST_KWAY_FOOTPRINT * self.fanout))
        self.device_chunk = max(2, self.m_d // DEVICE_SORT_FOOTPRINT)
        self.device_merge_window = max(1, self.m_d // DEVICE_MERGE_FOOTPRINT)
        self.device_kway_window = max(
            1, self.m_d // (DEVICE_KWAY_FOOTPRINT * self.fanout))
        #: Largest equalized-window total the gathered device k-way kernel
        #: may see (inputs + merged output must both fit the device pool).
        self.device_kway_budget = max(2, self.m_d // DEVICE_KWAY_FOOTPRINT)

    # -- level 2: device-backed host-block sorting ----------------------------

    def _device_sort_chunk(self, records: np.ndarray) -> np.ndarray:
        chunk_d = self.gpu.to_device(records, label="sort-chunk")
        sorted_d = self.gpu.sort_records_device(chunk_d, key_field=self.key_field)
        chunk_d.free()
        if self._reuse and records.flags.writeable:
            # Sort the caller's chunk in place: run-formation chunks are
            # private (freshly read, or slices of one fresh block), so
            # writing back spares a same-size host allocation per chunk.
            out = self.gpu.to_host(sorted_d, out=records)
        else:
            out = self.gpu.to_host(sorted_d)
        sorted_d.free()
        return out

    def _device_merge(self, run_a: np.ndarray, run_b: np.ndarray) -> np.ndarray:
        # consume=: merge inputs are equalized window prefixes (or
        # tournament intermediates) that are never read again, so the
        # device borrows them zero-copy instead of copying them in.
        a_d = self.gpu.to_device(run_a, label="merge-a", consume=self._reuse)
        b_d = self.gpu.to_device(run_b, label="merge-b", consume=self._reuse)
        merged_d = self.gpu.merge_records_device(a_d, b_d, key_field=self.key_field)
        a_d.free()
        b_d.free()
        out = self.gpu.to_host(merged_d)
        merged_d.free()
        return out

    def _device_merge_k(self, parts: list[np.ndarray]) -> np.ndarray:
        """Gathered k-way device merge of window prefixes (all fit at once)."""
        handles = [self.gpu.to_device(part, label="merge-way",
                                      consume=self._reuse) for part in parts]
        merged_d = self.gpu.merge_records_device_k(handles, key_field=self.key_field)
        for handle in handles:
            handle.free()
        out = self.gpu.to_host(merged_d)
        merged_d.free()
        return out

    def merge_windows(self, parts: list[np.ndarray]) -> np.ndarray:
        """Merge equalized window prefixes through the device (k-ary executor).

        Small totals go through one gathered k-way kernel; totals beyond
        the device budget fall back to a pairwise tournament whose legs
        stream device-sized windows, so the device pool bound holds for
        any host window size.
        """
        parts = [part for part in parts if part.shape[0]]
        if not parts:
            return np.empty(0, dtype=self.dtype)
        if len(parts) == 1:
            return parts[0]
        total = sum(part.shape[0] for part in parts)
        if total <= self.device_kway_budget:
            return self._device_merge_k(parts)
        while len(parts) > 1:
            folded = [self.merge_blocks_in_host(parts[i], parts[i + 1])
                      for i in range(0, len(parts) - 1, 2)]
            if len(parts) % 2:
                folded.append(parts[-1])
            parts = folded
        return parts[0]

    def sort_block_in_host(self, records: np.ndarray) -> np.ndarray:
        """Sort one host-resident block by streaming device chunks (level 2)."""
        if records.shape[0] <= self.device_chunk:
            return self._device_sort_chunk(records) if records.shape[0] else records
        runs = [self._device_sort_chunk(records[start:start + self.device_chunk])
                for start in range(0, records.shape[0], self.device_chunk)]
        while len(runs) > 1:
            next_runs = []
            for start in range(0, len(runs), self.fanout):
                group = runs[start:start + self.fanout]
                if len(group) == 1:
                    next_runs.append(group[0])
                    continue
                next_runs.append(merge_in_memory_k(
                    group, window_records=self.device_kway_window,
                    merge_fn=self._device_merge, merge_fn_k=self.merge_windows,
                    key_field=self.key_field, reuse_windows=self._reuse))
            runs = next_runs
        return runs[0]

    def merge_blocks_in_host(self, records_a: np.ndarray, records_b: np.ndarray
                             ) -> np.ndarray:
        """Merge two sorted host blocks via device-sized windows (level 2)."""
        return merge_in_memory_k([records_a, records_b],
                                 window_records=self.device_merge_window,
                                 merge_fn=self._device_merge,
                                 key_field=self.key_field,
                                 reuse_windows=self._reuse)

    # -- level 1: disk-backed run sorting ---------------------------------------

    def report_for(self, n_records: int) -> SortReport:
        """The :class:`SortReport` this sorter would produce for ``n_records``.

        Lets a resumed run reconstruct the report of a partition whose
        sorted file already exists (the unsorted input was consumed), so a
        recovered pipeline returns byte-identical reports.
        """
        initial_runs = math.ceil(n_records / self.host_block) if n_records else 0
        return SortReport(n_records, initial_runs,
                          merge_rounds_for(initial_runs, self.fanout),
                          self.fanout)

    def sort_file(self, in_path: str | Path, out_path: str | Path) -> SortReport:
        """Sort a run file into ``out_path``; returns the :class:`SortReport`.

        Crash-safe: scratch space is torn down on both success and failure,
        and ``out_path`` appears atomically (rename of a finished run).
        """
        in_path, out_path = Path(in_path), Path(out_path)
        scratch_dir = out_path.parent / (out_path.name + ".scratch")
        scratch_dir.mkdir(parents=True, exist_ok=True)
        try:
            # det=True: sort_file begins and ends with all background work
            # drained (write-behind closed, map_ordered fully consumed).
            with self.tracer.span(f"sort:{out_path.name}", track="sort",
                                  det=True) as span:
                report = self._sort_into(in_path, out_path, scratch_dir)
                span.note(records=report.n_records, runs=report.initial_runs,
                          rounds=report.merge_rounds)
            return report
        finally:
            # A real crash never runs cleanup: when an injected crash is
            # unwinding, leave the scratch residue for recovery to face.
            if scratch_dir.exists() and not faults.crash_pending():
                for stray in scratch_dir.iterdir():
                    stray.unlink()
                scratch_dir.rmdir()

    def _sorted_blocks_via_processes(self, reader: RunReader):
        """Run-formation blocks sorted in worker processes.

        Blocks are read here (sequential op order unchanged), shipped to
        the workers through shared memory, sorted there against a
        *recording* device, and the returned charge log is replayed onto
        the real clock and pool at delivery — in submission order, so the
        modeled-device trajectory is bit-identical to the serial schedule.
        """
        executor = self.executor
        pending: set[str] = set()

        def payloads():
            while not reader.exhausted:
                block = reader.read(self.host_block)
                name = shm.put_array(block)
                pending.add(name)
                yield {"shm_in": name, "n": int(block.shape[0]),
                       "dtype": self.dtype, "key_field": self.key_field,
                       "m_h": self.m_h, "m_d": self.m_d,
                       "fanout": self.fanout,
                       "device_name": self.gpu.spec.name,
                       "capacity_bytes": self.gpu.pool.capacity_bytes,
                       "buffer_pool": self._reuse}

        try:
            for result in executor.map_tasks(_SORT_TASK, payloads()):
                try:
                    sorted_block = shm.get_array(result["shm_out"],
                                                 (result["n"],), self.dtype)
                finally:
                    shm.unlink(result["shm_out"])
                    shm.unlink(result["shm_in"])
                    pending.discard(result["shm_in"])
                with executor.device_lock:
                    replay_device_log(result["log"], clock=self.gpu.clock,
                                      pool=self.gpu.pool)
                yield sorted_block
        finally:
            # Abandoned mid-stream: input segments that never reached
            # delivery must still be removed.
            for name in list(pending):
                shm.unlink(name)

    def _sort_into(self, in_path: Path, out_path: Path,
                   scratch_dir: Path) -> SortReport:
        record_nbytes = self.dtype.itemsize
        executor = self.executor

        # Run formation: host blocks sorted through the device. Blocks are
        # pulled off disk on this thread (sequential op order is fixed) and
        # sorted on pool workers with submission-order delivery, so the
        # next block's read overlaps the current block's device sort while
        # the run files stay byte-identical. Device work is serialized by
        # the executor's device lock: the modeled GPU is one capacity pool,
        # and two concurrent block sorts would double its (real) peak.
        run_paths: list[Path] = []
        n_records = 0
        # det=True at the boundaries: map_ordered is fully consumed when the
        # span ends, so every worker charge has landed on the clock (float
        # summation order may differ across worker counts; the sim export's
        # nanosecond rounding swallows that).
        with self.tracer.span("runs", track="sort", det=True) as runs_span, \
                RunReader(in_path, self.dtype, self.accountant) as reader:
            def blocks():
                while not reader.exhausted:
                    yield reader.read(self.host_block)

            def sort_block(block: np.ndarray) -> np.ndarray:
                with executor.device_lock:
                    return self.sort_block_in_host(block)

            sorted_blocks = self._sorted_blocks_via_processes(reader) \
                if executor.process_parallel \
                else executor.map_ordered(sort_block, blocks())
            try:
                for sorted_block in sorted_blocks:
                    with self.host_pool.alloc(sorted_block.shape[0] * record_nbytes *
                                              HOST_SORT_FOOTPRINT, label="sort-block"):
                        n_records += sorted_block.shape[0]
                        run_path = scratch_dir / f"run_{len(run_paths):05d}.run"
                        # det=False: workers still sorting later blocks charge
                        # the clock while this run is being written.
                        with self.tracer.span("run:write", track="sort"), \
                                RunWriter(run_path, self.dtype,
                                          self.accountant) as writer:
                            writer.append(sorted_block)
                    run_paths.append(run_path)
            finally:
                # Prompt cleanup on a mid-run exception: the process path
                # drains its window and unlinks every leftover segment.
                sorted_blocks.close()
            runs_span.note(runs=len(run_paths), records=n_records)

        initial_runs = len(run_paths)
        if initial_runs == 0:
            empty_path = scratch_dir / "empty.run"
            empty_path.write_bytes(b"")
            faults.barrier(faults.RENAME, str(out_path))
            empty_path.replace(out_path)
            return SortReport(0, 0, 0, self.fanout)

        # Merge rounds: fanout-k Algorithm 1 through host windows.
        merge_rounds = 0
        generation = 0
        while len(run_paths) > 1:
            merge_rounds += 1
            next_paths: list[Path] = []
            # det=True: a round begins and ends with every background
            # reader/writer of the previous groups drained.
            with self.tracer.span("merge-round", track="sort", det=True,
                                  round=merge_rounds, runs=len(run_paths)):
                for group_index, start in enumerate(range(0, len(run_paths),
                                                          self.fanout)):
                    group = run_paths[start:start + self.fanout]
                    if len(group) == 1:
                        next_paths.append(group[0])
                        continue
                    merged_path = (scratch_dir /
                                   f"merge_{generation:03d}_{group_index:05d}.run")
                    group_records = (sum(p.stat().st_size for p in group)
                                     // record_nbytes)
                    working = min(
                        self.host_kway_window * HOST_KWAY_FOOTPRINT * len(group),
                        2 * group_records) * record_nbytes
                    with self.tracer.span("merge-group", track="sort", det=True,
                                          ways=len(group),
                                          records=group_records), \
                            self.host_pool.alloc(working, label="merge-windows"), \
                            ExitStack() as stack:
                        readers = [stack.enter_context(
                            RunReader(p, self.dtype, self.accountant))
                            for p in group]
                        writer = stack.enter_context(
                            RunWriter(merged_path, self.dtype, self.accountant))
                        # Read-ahead keeps one window per input stream in
                        # flight; write-behind overlaps the merged window's
                        # disk write with the next device merge. Both are
                        # order-preserving, so the merged run is byte-for-byte
                        # the serial one. The sink closes (draining and
                        # re-raising any deferred write error) before the
                        # ExitStack closes the writer underneath it. Each
                        # wrapped source's close() is registered *after* its
                        # reader entered the stack, so a failing merge joins
                        # every producer thread before the file handle it
                        # reads from is closed underneath it.
                        sources = []
                        for i, r in enumerate(readers):
                            source = executor.read_ahead(
                                r, self.host_kway_window,
                                lane=f"read-ahead-{i}")
                            if source is not r:
                                stack.callback(source.close)
                            sources.append(source)
                        with executor.write_behind(writer.append) as sink:
                            merge_streams_k(sources, sink.put,
                                            window_records=self.host_kway_window,
                                            merge_fn=self.merge_blocks_in_host,
                                            merge_fn_k=self.merge_windows,
                                            key_field=self.key_field,
                                            tracer=self.tracer,
                                            reuse_windows=self._reuse)
                    for path in group:
                        path.unlink()
                    next_paths.append(merged_path)
            run_paths = next_paths
            generation += 1

        faults.barrier(faults.RENAME, str(out_path))
        run_paths[0].replace(out_path)
        return SortReport(n_records, initial_runs, merge_rounds, self.fanout)


def _sort_block_task(payload: dict) -> dict:
    """Process-backend sort task: one unsorted host block in, sorted out.

    The worker rebuilds a minimal sorter around a *recording* virtual
    device (same spec, same capacity — a task that would blow the device
    budget fails here exactly as it would inline) and runs the very same
    level-2 :meth:`ExternalSorter.sort_block_in_host`. The sorted block
    travels back through a fresh segment together with the device charge
    log, which the parent replays onto the real clock and pool.
    """
    dtype = np.dtype(payload["dtype"])
    segment = shm.attach(payload["shm_in"])
    try:
        block = shm.as_array(segment, (payload["n"],), dtype).copy()
    finally:
        segment.close()
    log: list = []
    gpu = VirtualGPU(payload["device_name"],
                     capacity_bytes=payload["capacity_bytes"],
                     clock=RecordingClock(log),
                     buffers=BufferPool(payload["capacity_bytes"],
                                        enabled=payload.get("buffer_pool", True)))
    gpu.pool = RecordingPool("device", payload["capacity_bytes"],
                             DeviceMemoryError, log)
    sorter = ExternalSorter(gpu=gpu, host_pool=None, accountant=None,
                            dtype=dtype, host_block_pairs=payload["m_h"],
                            device_block_pairs=payload["m_d"],
                            merge_fanout=payload["fanout"],
                            key_field=payload["key_field"])
    sorted_block = sorter.sort_block_in_host(block)
    out = shm.create(sorted_block.nbytes)
    shm.disown(out)  # the parent unlinks it after delivery
    try:
        shm.as_array(out, sorted_block.shape, dtype)[...] = sorted_block
    except BaseException:
        out.close()
        shm.unlink(out.name)
        raise
    out.close()
    return {"shm_out": out.name, "shm_in": payload["shm_in"],
            "n": int(sorted_block.shape[0]), "log": log}

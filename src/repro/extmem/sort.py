"""The hybrid two-level external sort (§III.B).

Level 1 (disk ↔ host): the input run is read in *host blocks* of ``m_h``
records, each block is sorted and written back as an initial run; runs are
then merged pairwise (Algorithm 1 streaming through host windows) until one
remains. Disk passes: ``1 + ⌈log₂(number of initial runs)⌉``.

Level 2 (host ↔ device): a host block is sorted by splitting it into
*device chunks* of ``m_d`` records, radix-sorting each on the virtual GPU,
and merging the sorted chunks pairwise with Algorithm 1 streaming
device-sized windows — so the device never holds more than its capacity,
while the disk sees only the level-1 traffic. This is the paper's key
optimization: host buffering cuts disk passes by ``log(m_h/m_d)`` without
changing the device-side work.

Footprint divisors translate the paper's "``m`` elements fit in memory"
into concrete buffer sizes that include the scratch space the kernels need
(ping-pong sort buffers, merge inputs + output).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..device.gpu import VirtualGPU
from ..device.memory import MemoryPool
from ..errors import ConfigError
from .io_stats import IOAccountant
from .merge import merge_in_memory, merge_streams
from .records import KEY_FIELD
from .streams import RunReader, RunWriter

#: A block being sorted in host memory needs itself + its sorted copy.
HOST_SORT_FOOTPRINT = 2
#: A level-1 merge holds two input windows and one merged output window.
HOST_MERGE_FOOTPRINT = 4
#: Device radix sort: input + ping-pong scratch + output.
DEVICE_SORT_FOOTPRINT = 3
#: Device merge: two input windows + merged output (+ slack).
DEVICE_MERGE_FOOTPRINT = 4


@dataclass(frozen=True)
class SortReport:
    """What one external sort did."""

    n_records: int
    initial_runs: int
    merge_rounds: int

    @property
    def disk_passes(self) -> int:
        """Times the whole dataset crossed the disk (run formation + rounds)."""
        return (1 + self.merge_rounds) if self.n_records else 0


class ExternalSorter:
    """Sorts run files larger than memory through the two-level hierarchy."""

    def __init__(self, *, gpu: VirtualGPU, host_pool: MemoryPool,
                 accountant: IOAccountant | None, dtype: np.dtype,
                 host_block_pairs: int, device_block_pairs: int,
                 key_field: str = KEY_FIELD):
        if host_block_pairs < 2 or device_block_pairs < 2:
            raise ConfigError("block sizes must be >= 2 records")
        self.gpu = gpu
        self.host_pool = host_pool
        self.accountant = accountant
        self.dtype = np.dtype(dtype)
        self.key_field = key_field
        self.m_h = host_block_pairs
        self.m_d = min(device_block_pairs, host_block_pairs)
        self.host_block = max(2, self.m_h // HOST_SORT_FOOTPRINT)
        self.host_merge_window = max(1, self.m_h // HOST_MERGE_FOOTPRINT)
        self.device_chunk = max(2, self.m_d // DEVICE_SORT_FOOTPRINT)
        self.device_merge_window = max(1, self.m_d // DEVICE_MERGE_FOOTPRINT)

    # -- level 2: device-backed host-block sorting ----------------------------

    def _device_sort_chunk(self, records: np.ndarray) -> np.ndarray:
        chunk_d = self.gpu.to_device(records, label="sort-chunk")
        sorted_d = self.gpu.sort_records_device(chunk_d, key_field=self.key_field)
        chunk_d.free()
        out = self.gpu.to_host(sorted_d)
        sorted_d.free()
        return out

    def _device_merge(self, run_a: np.ndarray, run_b: np.ndarray) -> np.ndarray:
        a_d = self.gpu.to_device(run_a, label="merge-a")
        b_d = self.gpu.to_device(run_b, label="merge-b")
        merged_d = self.gpu.merge_records_device(a_d, b_d, key_field=self.key_field)
        a_d.free()
        b_d.free()
        out = self.gpu.to_host(merged_d)
        merged_d.free()
        return out

    def sort_block_in_host(self, records: np.ndarray) -> np.ndarray:
        """Sort one host-resident block by streaming device chunks (level 2)."""
        if records.shape[0] <= self.device_chunk:
            return self._device_sort_chunk(records) if records.shape[0] else records
        runs = [self._device_sort_chunk(records[start:start + self.device_chunk])
                for start in range(0, records.shape[0], self.device_chunk)]
        while len(runs) > 1:
            next_runs = []
            for i in range(0, len(runs) - 1, 2):
                next_runs.append(merge_in_memory(
                    runs[i], runs[i + 1],
                    window_records=self.device_merge_window,
                    merge_fn=self._device_merge, key_field=self.key_field))
            if len(runs) % 2:
                next_runs.append(runs[-1])
            runs = next_runs
        return runs[0]

    def merge_blocks_in_host(self, records_a: np.ndarray, records_b: np.ndarray
                             ) -> np.ndarray:
        """Merge two sorted host blocks via device-sized windows (level 2)."""
        return merge_in_memory(records_a, records_b,
                               window_records=self.device_merge_window,
                               merge_fn=self._device_merge, key_field=self.key_field)

    # -- level 1: disk-backed run sorting ---------------------------------------

    def sort_file(self, in_path: str | Path, out_path: str | Path) -> SortReport:
        """Sort a run file into ``out_path``; returns the :class:`SortReport`."""
        in_path, out_path = Path(in_path), Path(out_path)
        scratch_dir = out_path.parent / (out_path.name + ".scratch")
        scratch_dir.mkdir(parents=True, exist_ok=True)
        record_nbytes = self.dtype.itemsize

        # Run formation: host blocks sorted through the device.
        run_paths: list[Path] = []
        n_records = 0
        with RunReader(in_path, self.dtype, self.accountant) as reader:
            while not reader.exhausted:
                block_records = min(self.host_block, reader.remaining)
                with self.host_pool.alloc(block_records * record_nbytes *
                                          HOST_SORT_FOOTPRINT, label="sort-block"):
                    block = reader.read(self.host_block)
                    n_records += block.shape[0]
                    sorted_block = self.sort_block_in_host(block)
                    run_path = scratch_dir / f"run_{len(run_paths):05d}.run"
                    with RunWriter(run_path, self.dtype, self.accountant) as writer:
                        writer.append(sorted_block)
                run_paths.append(run_path)

        initial_runs = len(run_paths)
        if initial_runs == 0:
            out_path.write_bytes(b"")
            scratch_dir.rmdir()
            return SortReport(0, 0, 0)

        # Merge rounds: pairwise Algorithm 1 through host windows.
        merge_rounds = 0
        generation = 0
        while len(run_paths) > 1:
            merge_rounds += 1
            next_paths: list[Path] = []
            for i in range(0, len(run_paths) - 1, 2):
                merged_path = scratch_dir / f"merge_{generation:03d}_{i // 2:05d}.run"
                pair_records = (run_paths[i].stat().st_size
                                + run_paths[i + 1].stat().st_size) // record_nbytes
                working = min(self.host_merge_window * HOST_MERGE_FOOTPRINT,
                              2 * pair_records) * record_nbytes
                with self.host_pool.alloc(working, label="merge-windows"), \
                        RunReader(run_paths[i], self.dtype, self.accountant) as ra, \
                        RunReader(run_paths[i + 1], self.dtype, self.accountant) as rb, \
                        RunWriter(merged_path, self.dtype, self.accountant) as writer:
                    merge_streams(ra, rb, writer.append,
                                  window_records=self.host_merge_window,
                                  merge_fn=self.merge_blocks_in_host,
                                  key_field=self.key_field)
                run_paths[i].unlink()
                run_paths[i + 1].unlink()
                next_paths.append(merged_path)
            if len(run_paths) % 2:
                next_paths.append(run_paths[-1])
            run_paths = next_paths
            generation += 1

        run_paths[0].replace(out_path)
        for stray in scratch_dir.glob("*.run"):
            stray.unlink()
        scratch_dir.rmdir()
        return SortReport(n_records, initial_runs, merge_rounds)

"""Disk I/O accounting and modeled disk time.

The paper's headline observation is that the pipeline is I/O-bound ("the
most prominent bottleneck in the pipeline is the I/O throughput"), so every
byte that crosses the disk boundary is counted here. The accountant is a
telemetry meter (bytes and operation counts per phase) and, when bound to a
:class:`~repro.device.clock.SimClock`, charges modeled disk seconds from the
shared cost model.
"""

from __future__ import annotations

import threading
from typing import Mapping

from ..device import costs
from ..device.clock import SimClock
from ..device.specs import DiskSpec


class IOAccountant:
    """Counts disk bytes/ops; optionally charges a simulated clock."""

    def __init__(self, disk: DiskSpec | None = None, clock: SimClock | None = None):
        self.disk = disk if disk is not None else DiskSpec()
        self.clock = clock
        self._read_bytes = 0
        self._write_bytes = 0
        self._read_ops = 0
        self._write_ops = 0
        self._seeks = 0
        # Cached for the seekless fast path below.
        self._read_bw = self.disk.read_bandwidth
        self._write_bw = self.disk.write_bandwidth
        # Read-ahead producers and write-behind drains account from
        # background threads concurrently with the main thread.
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------
    #
    # These run once per logical stream op — hundreds of thousands of times
    # per phase — so the seekless common case inlines the cost formula
    # (``nbytes / bandwidth`` is bit-identical to what
    # :func:`repro.device.costs.disk_read_seconds` computes when
    # ``seeks == 0``: adding ``0 * seek_seconds = +0.0`` never changes a
    # non-negative float).

    def add_read(self, nbytes: int, *, seeks: int = 0) -> None:
        """Record a sequential read of ``nbytes`` (plus optional seeks)."""
        with self._lock:
            self._read_bytes += int(nbytes)
            self._read_ops += 1
            self._seeks += seeks
        if self.clock is not None:
            if seeks:
                self.clock.charge("disk_read", costs.disk_read_seconds(
                    self.disk, nbytes, seeks=seeks))
            elif nbytes > 0:
                self.clock.charge("disk_read", nbytes / self._read_bw)

    def add_write(self, nbytes: int, *, seeks: int = 0) -> None:
        """Record a sequential write of ``nbytes`` (plus optional seeks)."""
        with self._lock:
            self._write_bytes += int(nbytes)
            self._write_ops += 1
            self._seeks += seeks
        if self.clock is not None:
            if seeks:
                self.clock.charge("disk_write", costs.disk_write_seconds(
                    self.disk, nbytes, seeks=seeks))
            elif nbytes > 0:
                self.clock.charge("disk_write", nbytes / self._write_bw)

    def add_write_run(self, sizes) -> None:
        """Record consecutive seekless writes with grouped locking.

        ``sizes`` is a sequence of byte counts, one per logical write.
        Totals and simulated charges are bit-identical to calling
        :meth:`add_write` once per element (same values, same accumulation
        order, zero-byte charges skipped alike); only the per-call lock
        traffic is amortized. The map phase's partition fan-out uses this —
        each batch lands ~150 tiny appends.
        """
        with self._lock:
            self._write_bytes += sum(sizes)
            self._write_ops += len(sizes)
        if self.clock is not None:
            bw = self._write_bw
            self.clock.charge_many(
                "disk_write", [n / bw for n in sizes if n > 0])

    # -- inspection ------------------------------------------------------------

    @property
    def read_bytes(self) -> int:
        """Total bytes read from disk."""
        return self._read_bytes

    @property
    def write_bytes(self) -> int:
        """Total bytes written to disk."""
        return self._write_bytes

    @property
    def total_bytes(self) -> int:
        """Total disk traffic in both directions."""
        return self._read_bytes + self._write_bytes

    # -- telemetry Meter protocol -----------------------------------------------

    def counters(self) -> Mapping[str, float]:
        """Bytes, operations and seeks in both directions."""
        return {
            "disk_read_bytes": float(self._read_bytes),
            "disk_write_bytes": float(self._write_bytes),
            "disk_read_ops": float(self._read_ops),
            "disk_write_ops": float(self._write_ops),
            "disk_seeks": float(self._seeks),
        }

    def peaks(self) -> Mapping[str, float]:
        """No gauges: disk traffic only accumulates."""
        return {}

    def reset_peaks(self) -> None:
        """No-op (no gauges)."""
        return None

"""Sequential run files: the read-only and write-only memories of Fig. 3.

A *run* is a flat binary file of packed KV records. :class:`RunWriter`
appends strictly sequentially; :class:`RunReader` consumes strictly
sequentially. The same path must never be open for reading and writing at
once — the paper's "a file cannot be read and written at the same time"
rule — and violations raise
:class:`~repro.errors.StreamProtocolError`.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..errors import StreamProtocolError
from ..faults import plan as faults
from .io_stats import IOAccountant

#: Paths currently open, mapped to their mode ("r"/"w"); enforces exclusivity.
_OPEN_PATHS: dict[Path, str] = {}

#: Appends smaller than this coalesce in a writer-side tail buffer before
#: reaching the OS (the map phase appends ~tiny per-partition blocks at a
#: very high rate). Invisible to accounting: bytes, ops and simulated
#: charges are recorded per logical append either way.
_COALESCE_BYTES = 1 << 18


def _legacy_io() -> bool:
    """Route streams through the seed I/O discipline.

    ``REPRO_LEGACY_IO=1`` restores the seed formulation — one OS write per
    logical append and a bytes-object round trip per read — the
    before-side of the hot-path benchmark. Checked once per stream, so a
    toggle mid-stream cannot desynchronize a writer's tail buffer.
    """
    return os.environ.get("REPRO_LEGACY_IO", "") == "1"


def _register(path: Path, mode: str) -> None:
    if path in _OPEN_PATHS:
        raise StreamProtocolError(
            f"{path} is already open ({_OPEN_PATHS[path]!r}); "
            "read-only and write-only memories are exclusive"
        )
    _OPEN_PATHS[path] = mode


def _unregister(path: Path) -> None:
    _OPEN_PATHS.pop(path, None)


class RunWriter:
    """Appends records of one dtype to a run file, sequentially."""

    def __init__(self, path: str | Path, dtype: np.dtype,
                 accountant: IOAccountant | None = None):
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self._accountant = accountant
        # The exclusivity check must precede open() — "wb" truncates, and a
        # conflicting open must not destroy a run another stream is reading —
        # but the registration only sticks once the handle exists: a failed
        # open must not leave a stale entry poisoning every later open.
        _register(self.path, "w")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "wb")
        except BaseException:
            _unregister(self.path)
            raise
        self._records_written = 0
        # Writes charge bandwidth only: the write-only memory is appended
        # through the OS write-behind cache, which amortizes head movement
        # (the paper's map phase streams 74 partition files concurrently).
        self._pending_seek = 0
        self._tail = bytearray()
        self._coalesce = not _legacy_io()

    @property
    def records_written(self) -> int:
        """Records appended so far."""
        return self._records_written

    def append(self, records: np.ndarray, *, meter: bool = True) -> int:
        """Append a record array (must match the run dtype); returns nbytes.

        ``meter=False`` skips the per-call accounting so a caller landing a
        run of appends across several writers can meter them as a group
        (:meth:`repro.extmem.io_stats.IOAccountant.add_write_run`) — the
        OS-visible writes and the metered totals stay identical either way.
        """
        if self._handle.closed:
            raise StreamProtocolError(f"{self.path}: append after close")
        if records.dtype != self.dtype:
            raise StreamProtocolError(
                f"{self.path}: dtype mismatch ({records.dtype} != {self.dtype})")
        data = np.ascontiguousarray(records)
        if faults.active() or not self._coalesce:
            # Fault sites must observe one OS-visible write per append, in
            # order, so coalescing pauses while a plan is armed.
            self._drain_tail()
            faults.deliver_write(self.path, data.tobytes(), self._handle)
        elif data.nbytes >= _COALESCE_BYTES:
            self._drain_tail()
            self._handle.write(data)  # buffer-protocol export, no bytes copy
        else:
            self._tail += data.tobytes()
            if len(self._tail) >= _COALESCE_BYTES:
                self._drain_tail()
        if meter and self._accountant is not None:
            self._accountant.add_write(data.nbytes, seeks=self._pending_seek)
        self._pending_seek = 0
        self._records_written += records.shape[0]
        return data.nbytes

    def _drain_tail(self) -> None:
        if self._tail:
            # Clear the tail *before* delivery: if an armed plan crashes or
            # tears the write, the unwind path (close() also drains) must
            # not re-deliver the same prefix. A plan arming mid-stream thus
            # sees the buffered tail as one ordinary injectable write — a
            # coalesced tail can never mask a scheduled torn write.
            data = bytes(self._tail)
            self._tail.clear()
            if faults.active():
                faults.deliver_write(self.path, data, self._handle)
            else:
                self._handle.write(data)

    def close(self) -> None:
        """Finish the run; the path becomes available for reading."""
        if not self._handle.closed:
            self._drain_tail()
            self._handle.close()
            _unregister(self.path)

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RunReader:
    """Streams records of one dtype from a run file, sequentially."""

    def __init__(self, path: str | Path, dtype: np.dtype,
                 accountant: IOAccountant | None = None):
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self._accountant = accountant
        # Registration only sticks once the handle is open (see RunWriter):
        # a missing file or permission error must not leave a stale entry.
        _register(self.path, "r")
        try:
            self._handle = open(self.path, "rb")
        except BaseException:
            _unregister(self.path)
            raise
        size = self.path.stat().st_size
        if size % self.dtype.itemsize:
            _unregister(self.path)
            self._handle.close()
            raise StreamProtocolError(
                f"{self.path}: size {size} is not a multiple of record width "
                f"{self.dtype.itemsize}")
        self._total = size // self.dtype.itemsize
        self._consumed = 0
        self._pending_seek = 1
        self._fromfile = not _legacy_io()

    @property
    def total_records(self) -> int:
        """Records in the whole run."""
        return self._total

    @property
    def remaining(self) -> int:
        """Records not yet consumed."""
        return self._total - self._consumed

    @property
    def exhausted(self) -> bool:
        """Whether the stream has been fully consumed."""
        return self.remaining == 0

    def read(self, n: int) -> np.ndarray:
        """Consume up to ``n`` records (empty array at end of stream)."""
        if self._handle.closed:
            raise StreamProtocolError(f"{self.path}: read after close")
        n = min(n, self.remaining)
        if n <= 0:
            return np.empty(0, dtype=self.dtype)
        if faults.active() or not self._fromfile:
            raw = faults.filter_read(
                self.path, self._handle.read(n * self.dtype.itemsize))
            records = np.frombuffer(raw, dtype=self.dtype).copy()
        else:
            # No plan armed: read straight into the fresh array, skipping
            # the intermediate bytes object filter_read would inspect.
            records = np.fromfile(self._handle, dtype=self.dtype, count=n)
        if self._accountant is not None:
            self._accountant.add_read(records.nbytes, seeks=self._pending_seek)
        self._pending_seek = 0
        self._consumed += records.shape[0]
        return records

    def read_all(self) -> np.ndarray:
        """Consume the entire remainder in one call (small runs only)."""
        return self.read(self.remaining)

    def skip(self, n: int) -> int:
        """Advance past ``n`` records without reading their bytes.

        Used by chunk-checkpoint resume: a restarted (or speculating) node
        seeks its sorted streams to the last durable chunk boundary instead
        of re-reading the processed prefix. Charged as one seek, zero bytes
        — exactly the cheap-recovery accounting the chunk ledger buys.
        Returns the number of records actually skipped.
        """
        if self._handle.closed:
            raise StreamProtocolError(f"{self.path}: skip after close")
        n = min(n, self.remaining)
        if n <= 0:
            return 0
        self._handle.seek(n * self.dtype.itemsize, os.SEEK_CUR)
        self._consumed += n
        self._pending_seek += 1
        return n

    def close(self) -> None:
        """Release the path."""
        if not self._handle.closed:
            self._handle.close()
            _unregister(self.path)

    def __enter__(self) -> "RunReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

"""The key–value record layout for suffix/prefix fingerprints.

A record is ``(key, [aux,] val)``:

* ``key``  — the primary packed fingerprint (``uint64``); the only field
  sorting and searching look at,
* ``aux``  — the second packed fingerprint lane (present when the scheme
  uses ``lanes=2``); an equality filter at match time,
* ``val``  — the vertex id (``uint32``): ``read_id << 1 | orientation``.

With one lane a record is 12 bytes; with two it is 20 bytes — the width of
the paper's (128-bit fingerprint, 32-bit read-id) pairs, which is what makes
the scaled disk-pass counts line up with Tables II/III.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

KEY_FIELD = "key"
AUX_FIELD = "aux"
VAL_FIELD = "val"


def kv_dtype(lanes: int = 1) -> np.dtype:
    """The packed structured dtype for ``lanes`` fingerprint lanes."""
    if lanes == 1:
        return np.dtype([(KEY_FIELD, "<u8"), (VAL_FIELD, "<u4")])
    if lanes == 2:
        return np.dtype([(KEY_FIELD, "<u8"), (AUX_FIELD, "<u8"), (VAL_FIELD, "<u4")])
    raise ConfigError("kv_dtype supports 1 or 2 lanes")


def make_records(keys: np.ndarray, vals: np.ndarray,
                 aux: np.ndarray | None = None) -> np.ndarray:
    """Assemble columns into a packed record array."""
    lanes = 1 if aux is None else 2
    records = np.empty(keys.shape[0], dtype=kv_dtype(lanes))
    records[KEY_FIELD] = keys
    records[VAL_FIELD] = vals
    if aux is not None:
        records[AUX_FIELD] = aux
    return records


def record_fields(records: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Split a record array into ``(keys, vals, aux-or-None)`` views."""
    aux = records[AUX_FIELD] if AUX_FIELD in (records.dtype.names or ()) else None
    return records[KEY_FIELD], records[VAL_FIELD], aux

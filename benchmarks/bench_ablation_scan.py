"""Ablation D2 — block-per-read scan fingerprinting vs thread-per-read loops.

The paper reports that assigning one GPU *thread* per read throttles on
memory and wastes shared memory, motivating the Hillis–Steele block-per-read
scan (§III.A). The Python analog of the same contrast: the batched scan
kernel (one vectorized op per log-step, the whole batch in flight) against a
per-read scalar Horner loop. The measured throughput gap is the reason the
map phase is feasible at all in this reproduction.
"""

import time

import numpy as np
import pytest

from repro.analysis import ComparisonTable
from repro.fingerprint import naive_prefix_fingerprints, prefix_fingerprints_batch
from repro.fingerprint.rabin_karp import HashSpec

from _common import emit


@pytest.mark.benchmark(group="ablation")
def test_ablation_scan_vs_per_read(benchmark):
    rng = np.random.default_rng(4)
    codes = rng.integers(0, 4, (4000, 100), dtype=np.uint8)
    spec = HashSpec.lane(0)

    scan_out = benchmark.pedantic(
        lambda: prefix_fingerprints_batch(codes, spec), rounds=3, iterations=1)

    start = time.perf_counter()
    scan_repeats = 5
    for _ in range(scan_repeats):
        prefix_fingerprints_batch(codes, spec)
    scan_seconds = (time.perf_counter() - start) / scan_repeats

    start = time.perf_counter()
    loop_rows = 200  # a subsample; the full loop would take minutes
    for row in codes[:loop_rows]:
        naive_prefix_fingerprints(row, spec)
    loop_seconds = (time.perf_counter() - start) * (codes.shape[0] / loop_rows)

    # Correctness of the fast path against the slow path.
    assert np.array_equal(scan_out[17], naive_prefix_fingerprints(codes[17], spec))

    bases = codes.size
    table = ComparisonTable(
        "Ablation D2 - fingerprint generation strategy (400k bases)",
        ["strategy", "time", "throughput"],
    )
    table.add_row("block-per-read scan (Figs. 5-6)", f"{scan_seconds * 1e3:.1f} ms",
                  f"{bases / scan_seconds / 1e6:.0f} Mbases/s")
    table.add_row("thread-per-read loop", f"{loop_seconds * 1e3:.0f} ms (extrap.)",
                  f"{bases / loop_seconds / 1e6:.2f} Mbases/s")
    table.add_note(f"speedup {loop_seconds / scan_seconds:.0f}x; the paper "
                   "reports the same directional win from the scan formulation")
    emit("ablation_scan", table)

    assert loop_seconds > 5 * scan_seconds

"""Ablation D4 — fingerprint width: 1 packed key lane vs 2 (~62 vs ~124 bits).

The paper uses 128-bit fingerprints because they "yield zero false positive
edges across all datasets". This ablation measures what each lane costs
(record width → sort volume → time) and what it buys (false positives vs
the exact-overlap oracle).
"""

import pytest

from repro import Assembler, AssemblyConfig
from repro.analysis import ComparisonTable
from repro.baselines import exact_overlaps
from repro.seq.datasets import tiny_dataset
from repro.units import format_size

from _common import DATA_ROOT, emit


@pytest.mark.benchmark(group="ablation")
def test_ablation_fingerprint_lanes(benchmark):
    md, batch = tiny_dataset(DATA_ROOT / "ablation", genome_length=3000,
                             read_length=50, coverage=18.0, min_overlap=25,
                             seed=42)
    truth = set(exact_overlaps(batch, 25))

    def run_both():
        return {lanes: Assembler(AssemblyConfig(min_overlap=25,
                                                fingerprint_lanes=lanes)
                                 ).assemble(md.store_path)
                for lanes in (1, 2)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = ComparisonTable(
        "Ablation D4 - fingerprint lanes (hash bits per suffix/prefix)",
        ["lanes", "record bytes", "sort traffic", "candidates",
         "false candidates", "aux-rejected", "sim sort time"],
    )
    false_counts = {}
    for lanes, result in results.items():
        candidates = result.reduce_report.candidates
        false_counts[lanes] = candidates - len(truth)
        sort_stats = result.telemetry["sort"]
        table.add_row(
            f"{lanes} (~{62 * lanes} bits)", 12 if lanes == 1 else 20,
            format_size(sort_stats.counters["disk_read_bytes"]
                        + sort_stats.counters["disk_write_bytes"]),
            f"{candidates:,}", false_counts[lanes],
            result.reduce_report.aux_rejected,
            f"{sort_stats.sim_seconds:.3g}s")
    table.add_note("paper: 128-bit fingerprints give zero false positives; "
                   "even one 62-bit lane achieves that at these scales")
    emit("ablation_fingerprint", table)

    # Zero false positives in both configurations (the paper's observation).
    assert false_counts[1] == 0 and false_counts[2] == 0
    # The wider record costs proportionally more sort traffic (20/12 ≈ 1.67).
    traffic = {lanes: results[lanes].telemetry["sort"].counters["disk_read_bytes"]
               for lanes in (1, 2)}
    assert traffic[2] / traffic[1] == pytest.approx(20 / 12, rel=0.05)
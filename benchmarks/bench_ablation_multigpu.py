"""Ablation — GPUs per node vs nodes: where does the time actually go?

The paper scales *out* (more nodes, §III.E) rather than *up* (more GPUs per
node) "for exploiting a higher aggregate I/O bandwidth". This study puts
numbers to that choice at paper scale: adding GPUs to one node divides only
the kernel+PCIe component and saturates hard at the shared-disk bound,
while adding nodes divides the disk stream too.
"""

import pytest

from repro.analysis import ComparisonTable
from repro.config import MemoryConfig
from repro.model import (model_distributed_seconds, model_multi_gpu_seconds,
                         model_phase_components)
from repro.units import format_duration

from _common import emit, workload


@pytest.mark.benchmark(group="ablation")
def test_ablation_multi_gpu_vs_multi_node(benchmark):
    w = workload("H.Genome")
    memory = MemoryConfig.preset("supermic")

    def evaluate():
        gpus = {n: model_multi_gpu_seconds(w, memory, "K20X", n)["total"]
                for n in (1, 2, 4, 8)}
        nodes = {n: model_distributed_seconds(w, memory, "K20X", n)["total"]
                 for n in (1, 2, 4, 8)}
        return gpus, nodes

    gpus, nodes = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    components = model_phase_components(w, memory, "K20X")
    disk_total = sum(parts["disk"] for parts in components.values())
    device_total = sum(parts["device"] for parts in components.values())

    table = ComparisonTable(
        "Ablation - scale up (GPUs/node) vs scale out (nodes), H.Genome @ paper scale",
        ["parallelism", "1", "2", "4", "8"],
    )
    table.add_row("GPUs on one node",
                  *(format_duration(gpus[n]) for n in (1, 2, 4, 8)))
    table.add_row("nodes (paper's design)",
                  *(format_duration(nodes[n]) for n in (1, 2, 4, 8)))
    table.add_note(f"one node's time splits into disk {format_duration(disk_total)} "
                   f"(shared) + device {format_duration(device_total)} (divisible)")
    emit("ablation_multigpu", table)

    # GPUs saturate at the disk floor; nodes keep scaling.
    assert gpus[8] > disk_total
    assert gpus[8] / gpus[1] > 0.6            # < 1.7x gain from 8 GPUs
    assert nodes[8] < 0.45 * nodes[1]         # > 2.2x gain from 8 nodes
    assert nodes[8] < gpus[8] / 2

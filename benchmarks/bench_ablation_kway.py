"""Ablation D6 — merge fanout: pairwise Algorithm 1 vs fanout-k merging.

The paper's level-1 merge folds runs pairwise, so sorting ``R`` initial
runs costs ``1 + ⌈log₂ R⌉`` disk passes. Generalizing Algorithm 1 to a
k-way window-equalized merge (as in the external-memory string-graph
constructions of Bonizzoni et al. and Guidi et al.) cuts that to
``1 + ⌈log_k R⌉`` — each round's windows shrink by ``k/2``, but windows
are cheap and disk passes are the dominant cost.

The dataset is synthetic and *larger than the host pool* (the records do
not fit in host memory), so every merge round is a real disk round trip.
``REPRO_KWAY_RECORDS`` overrides the record count (CI quick mode uses a
small value).
"""

import os

import numpy as np
import pytest

from repro.analysis import ComparisonTable
from repro.device import MemoryPool, SimClock, VirtualGPU
from repro.errors import HostMemoryError
from repro.extmem import ExternalSorter, IOAccountant, RunReader, RunWriter
from repro.extmem.records import make_records
from repro.model.sorting import model_partition_sort_seconds, predicted_sort_passes
from repro.units import format_duration, format_size

from _common import emit

#: Default synthetic partition size; override with REPRO_KWAY_RECORDS.
DEFAULT_RECORDS = 192_000
FANOUTS = (2, 4, 8, 16)


def _sort(tmp_path, records, m_h, m_d, fanout):
    clock = SimClock()
    accountant = IOAccountant(clock=clock)
    record_nbytes = records.dtype.itemsize
    gpu = VirtualGPU("K40", capacity_bytes=max(1 << 16, m_d * record_nbytes * 2),
                     clock=clock)
    # Host pool sized to one m_h block: the dataset itself cannot fit.
    host = MemoryPool("host", max(1 << 16, m_h * record_nbytes),
                      HostMemoryError)
    assert records.nbytes > host.capacity_bytes, "dataset must exceed host pool"
    sorter = ExternalSorter(gpu=gpu, host_pool=host, accountant=accountant,
                            dtype=records.dtype, host_block_pairs=m_h,
                            device_block_pairs=m_d, merge_fanout=fanout)
    in_path = tmp_path / f"in_k{fanout}.run"
    with RunWriter(in_path, records.dtype) as writer:
        writer.append(records)
    before = accountant.total_bytes
    report = sorter.sort_file(in_path, tmp_path / f"out_k{fanout}.run")
    with RunReader(tmp_path / f"out_k{fanout}.run", records.dtype) as reader:
        out_keys = reader.read_all()["key"]
    assert np.array_equal(out_keys, np.sort(records["key"]))
    return report, accountant.total_bytes - before, clock.total_seconds


@pytest.mark.benchmark(group="ablation")
def test_ablation_kway_merge_fanout(benchmark, tmp_path):
    n = int(os.environ.get("REPRO_KWAY_RECORDS", DEFAULT_RECORDS))
    rng = np.random.default_rng(29)
    records = make_records(rng.integers(0, 2**62, n, dtype=np.uint64),
                           np.arange(n, dtype=np.uint32))
    m_h = n // 8       # host blocks of m_h/2 records -> 16 initial runs
    m_d = max(64, m_h // 8)

    def sweep():
        return {fanout: _sort(tmp_path, records, m_h, m_d, fanout)
                for fanout in FANOUTS}

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "Ablation D6 - merge fanout k (1 + ceil(log_k R) disk passes)",
        ["fanout k", "initial runs", "merge rounds", "disk passes",
         "passes (model)", "disk bytes", "sim time"],
    )
    for fanout in FANOUTS:
        report, disk_bytes, sim = measured[fanout]
        table.add_row(fanout, report.initial_runs, report.merge_rounds,
                      report.disk_passes,
                      predicted_sort_passes(n, m_h, merge_fanout=fanout),
                      format_size(disk_bytes), format_duration(sim))
    paper2 = model_partition_sort_seconds(640_000_000, 20_000_000)
    paper4 = model_partition_sort_seconds(640_000_000, 20_000_000,
                                          merge_fanout=4)
    table.add_note(f"records: {n:,} ({format_size(records.nbytes)}), "
                   f"host pool holds m_h = {m_h:,} records only")
    table.add_note(f"model @ paper scale (m_h=640M): k=2 "
                   f"{format_duration(paper2)} -> k=4 {format_duration(paper4)}")
    emit("ablation_kway", table)

    report2, bytes2, sim2 = measured[2]
    report4, bytes4, sim4 = measured[4]
    assert report2.initial_runs >= 8
    # The measured pass counts match the analytic model for every fanout...
    for fanout in FANOUTS:
        assert measured[fanout][0].disk_passes \
            == predicted_sort_passes(n, m_h, merge_fanout=fanout)
    # ...and k=4 beats pairwise on passes, disk traffic, and modeled time.
    assert report4.disk_passes < report2.disk_passes
    assert bytes4 < bytes2
    assert sim4 < sim2

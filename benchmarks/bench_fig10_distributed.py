"""Fig. 10 — distributed execution times for 1–8 nodes (H.Genome on K20s).

Measured: the simulated cluster actually runs the whole pipeline per node
count on the scaled dataset; the phase times are per-node modeled hardware
seconds with barrier semantics. Model: the paper-scale composition,
including the headline "a little over 5 hours on 8 nodes".

Reproduction targets: map/sort scale ~1/n; the all-to-all shuffle appears
only for n > 1 (n = 2 barely improving on n = 1, as the paper observes);
reduce saturates under the bit-vector token law; the assembly output is
invariant to the node count.
"""

import pytest

from repro import AssemblyConfig
from repro.analysis import ComparisonTable
from repro.distributed import DistributedAssembler
from repro.model.distributed import model_distributed_seconds
from repro.model.paper_values import FIG10_TOTAL_HOURS
from repro.config import MemoryConfig
from repro.units import format_duration

from _common import dataset, emit, scale, scaled_memory, workload

NODE_COUNTS = (1, 2, 4, 8)
PHASES = ("map", "shuffle", "sort", "reduce", "compress")


@pytest.mark.benchmark(group="fig10")
def test_fig10_distributed_scaling(benchmark):
    materialized = dataset("H.Genome")
    config = AssemblyConfig(min_overlap=materialized.spec.min_overlap,
                            memory=scaled_memory("supermic"),
                            device_name="K20X", fingerprint_lanes=2)

    def run_all():
        return {n: DistributedAssembler(config, n).assemble(materialized.store_path)
                for n in NODE_COUNTS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    w = workload("H.Genome")
    paper_memory = MemoryConfig.preset("supermic")
    table = ComparisonTable(
        f"Fig. 10 - H.Genome on K20 nodes (scaled x{scale():g})",
        ["nodes"] + [f"meas {p}" for p in PHASES]
        + ["meas total", "model total (paper)", "paper total"],
    )
    for n in NODE_COUNTS:
        result = results[n]
        model = model_distributed_seconds(w, paper_memory, "K20X", n)
        table.add_row(
            n,
            *(format_duration(result.phase_seconds[p]) for p in PHASES),
            format_duration(result.total_seconds),
            f"{model['total'] / 3600:.1f}h",
            f"~{FIG10_TOTAL_HOURS[n]}h",
        )
    table.add_note("measured = per-node modeled hardware seconds with barriers; "
                   "the distributed work itself really executed")

    from repro.analysis import AsciiChart
    chart = AsciiChart("Fig. 10 - total hours vs nodes (paper scale)",
                       [str(n) for n in NODE_COUNTS])
    chart.add_series("model", [
        model_distributed_seconds(w, paper_memory, "K20X", n)["total"] / 3600
        for n in NODE_COUNTS])
    chart.add_series("paper", [FIG10_TOTAL_HOURS[n] for n in NODE_COUNTS])
    emit("fig10", table, chart)

    # Output invariant to node count.
    assert len({results[n].edges for n in NODE_COUNTS}) == 1
    # map and sort scale; shuffle exists only for n > 1.
    for phase in ("map", "sort"):
        times = [results[n].phase_seconds[phase] for n in NODE_COUNTS]
        assert times == sorted(times, reverse=True)
    assert results[1].phase_seconds["shuffle"] == 0.0
    assert all(results[n].phase_seconds["shuffle"] > 0 for n in NODE_COUNTS[1:])
    # Total improves monotonically from 2 nodes on.
    totals = [results[n].total_seconds for n in NODE_COUNTS]
    assert totals[1] > totals[2] > totals[3]
    # Paper-scale model hits the 8-node headline within 35%.
    model8 = model_distributed_seconds(w, paper_memory, "K20X", 8)["total"] / 3600
    assert abs(model8 - FIG10_TOTAL_HOURS[8]) / FIG10_TOTAL_HOURS[8] < 0.35

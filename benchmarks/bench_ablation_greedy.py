"""Ablation D3 — greedy best-overlap graph vs full graph + transitive reduction.

The paper chooses the greedy rule (≤1 in/out edge, an out-degree bit per
vertex) over the classic Myers/SGA construction (keep all overlap edges,
remove transitive ones). The trade-off quantified here on one dataset:

* memory per vertex: O(1) greedy vs O(overlap-degree) full graph — at 40x
  coverage the full graph stores tens of edges per vertex before reduction,
* build time: one bit-vector pass vs edge-dict insertion + O(d²) reduction,
* assembly quality: comparable contiguity on error-free data.
"""

import time

import numpy as np
import pytest

from repro.analysis import ComparisonTable
from repro.baselines import exact_overlaps, greedy_graph_from_overlaps
from repro.graph import extract_paths, spell_contigs
from repro.graph.simplify import FullOverlapGraph
from repro.seq.datasets import tiny_dataset
from repro.seq.stats import assembly_stats
from repro.units import format_size

from _common import DATA_ROOT, emit


@pytest.mark.benchmark(group="ablation")
def test_ablation_greedy_vs_transitive_reduction(benchmark):
    md, batch = tiny_dataset(DATA_ROOT / "ablation", genome_length=4000,
                             read_length=50, coverage=20.0, min_overlap=25,
                             seed=41)
    overlaps = exact_overlaps(batch, 25)
    oriented = np.empty((2 * batch.n_reads, batch.read_length), dtype=np.uint8)
    oriented[0::2] = batch.codes
    oriented[1::2] = batch.reverse_complements().codes

    def build_greedy():
        return greedy_graph_from_overlaps(overlaps, batch.n_reads,
                                          batch.read_length)

    greedy = benchmark.pedantic(build_greedy, rounds=1, iterations=1)
    start = time.perf_counter()
    build_greedy()
    greedy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    full = FullOverlapGraph(batch.n_reads, batch.read_length)
    full.add_edges(np.array([o[0] for o in overlaps]),
                   np.array([o[1] for o in overlaps]),
                   np.array([o[2] for o in overlaps]))
    edges_before = full.n_edges
    removed = full.transitive_reduction()
    full_seconds = time.perf_counter() - start

    greedy_paths = extract_paths(greedy).deduplicated()
    greedy_stats = assembly_stats(spell_contigs(greedy_paths, oriented).lengths())
    unitigs = full.unitig_paths()
    unitig_lengths = [sum(overhang for _, overhang in path) for path in unitigs]
    full_stats = assembly_stats(unitig_lengths)

    table = ComparisonTable(
        "Ablation D3 - greedy bit-vector graph vs full graph + transitive reduction",
        ["variant", "edges", "memory", "build time", "N50", "contigs"],
    )
    table.add_row("greedy (paper)", greedy.n_edges, format_size(greedy.nbytes),
                  f"{greedy_seconds * 1e3:.0f} ms", greedy_stats["n50"],
                  greedy_stats["n_contigs"])
    table.add_row("full + reduction", f"{edges_before} -> {full.n_edges}",
                  format_size(full.nbytes_estimate()),
                  f"{full_seconds * 1e3:.0f} ms", full_stats["n50"],
                  full_stats["n_contigs"])
    table.add_note(f"transitive reduction removed {removed} edges; "
                   f"candidate overlaps: {len(overlaps):,}")
    emit("ablation_greedy", table)

    # The paper's rationale: greedy memory is per-vertex, not per-overlap.
    assert greedy.n_edges < edges_before
    assert greedy.nbytes < full.nbytes_estimate()
    # Both assemble: same order of magnitude of recovered sequence.
    assert greedy_stats["total_bases"] > 0 and full_stats["total_bases"] > 0

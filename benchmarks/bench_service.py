"""Multi-tenant service benchmark: cache hit-rate and warm-over-cold speedup.

Drives the :mod:`repro.service` scheduler with the seeded traffic mix from
:mod:`repro.service.traffic` three ways over the same job list:

* **uncached** — cache disabled, the correctness baseline,
* **cold**     — content-addressed cache enabled but empty,
* **warm**     — same cache directory again, so every phase should hit.

and reports jobs/sec for each, the warm hit rate, and whether cached runs
stayed byte-identical to the uncached baseline (contigs *and* checkpoint
ledgers). Two more serial passes exercise the failure ladder: **faulted**
re-runs the mix with a seeded crash injected inside a job body (the retry
must converge byte-identically) and **shed** bounds the queue so load
shedding fires. Results land in
``benchmarks/results/BENCH_service.json``::

    {"cpu_count": ..., "mode": "full"|"smoke", "seed": ...,
     "jobs": ..., "sources": ..., "max_parallel": ...,
     "runs": {"uncached": {...}, "cold": {...}, "warm": {...}},
     "warm_speedup": ..., "hit_rate": ...,
     "byte_identical_contigs": true, "byte_identical_ledgers": true,
     "fairness": {"alice": {...}, "bob": {...}},
     "resilience": {"crash_op": ..., "job_retries": ...,
                    "retry_backoff_sim_s": ..., "jobs_quarantined": ...,
                    "byte_identical_after_retry": true,
                    "shed_bound": ..., "admission_shed": ...}}

``--smoke`` shrinks the mix so CI can exercise the scheduler and cache
paths in seconds; it is a plumbing check, not a measurement.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ServiceConfig
from repro.core.checkpoint import STATE_FILE
from repro.faults import FaultPlan, inject
from repro.service import (AssemblyService, TrafficMix, build_sources,
                           generate_jobs)

SEED = 42
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_service.json"


def _contigs(report) -> dict:
    return {o.spec.job_id: o.contig_bytes() for o in report.outcomes}


def _ledgers(report) -> dict:
    hashes = {}
    for outcome in report.outcomes:
        if outcome.executed and outcome.workdir is not None:
            ledger = outcome.workdir / STATE_FILE
            hashes[outcome.spec.job_id] = hashlib.sha256(
                ledger.read_bytes()).hexdigest()
    return hashes


def _run(root: Path, jobs, name: str, *, cache: bool,
         max_parallel: int, **overrides):
    config = ServiceConfig(
        workdir=str(root / name),
        cache_dir=str(root / "cache") if cache else "",
        cache_bytes=256 << 20,
        host_budget_bytes=512 << 20,
        device_budget_bytes=64 << 20,
        max_parallel=max_parallel,
        tenant_weights={"alice": 2.0},
        **overrides,
    )
    return AssemblyService(config).run_jobs(jobs)


def _run_entry(report) -> dict:
    return {
        "jobs_done": report.n_done,
        "jobs_failed": report.n_failed,
        "wall_s": round(report.wall_seconds, 6),
        "jobs_per_s": round(report.jobs_per_second, 4),
        "pipeline_runs": int(report.counters.get("pipeline_runs", 0)),
        "cache": {k: int(v) for k, v in sorted(report.cache.items())},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny mix (CI plumbing check)")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)

    mix = (TrafficMix(n_jobs=6, n_sources=2, genome_length=400, seed=SEED)
           if args.smoke
           else TrafficMix(n_jobs=24, n_sources=4, genome_length=1200,
                           coverage=8.0, seed=SEED))
    max_parallel = 2 if args.smoke else 4

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        root = Path(tmp)
        sources = build_sources(root / "data", mix)
        jobs = generate_jobs(sources, mix)

        uncached = _run(root, jobs, "uncached", cache=False,
                        max_parallel=max_parallel)
        cold = _run(root, jobs, "cold", cache=True,
                    max_parallel=max_parallel)
        warm = _run(root, jobs, "warm", cache=True,
                    max_parallel=max_parallel)

        baseline_contigs = _contigs(uncached)
        baseline_ledgers = _ledgers(uncached)
        identical_contigs = all(_contigs(r) == baseline_contigs
                                for r in (cold, warm))
        identical_ledgers = all(_ledgers(r) == baseline_ledgers
                                for r in (cold, warm))

        # Failure-ladder passes (serial: injected faults and their retries
        # must be exactly reproducible). First probe the op space of a
        # clean run, then crash inside a job body at a seeded op.
        probe_plan = FaultPlan()
        with inject(probe_plan):
            probe = _run(root, jobs, "probe", cache=False, max_parallel=1)
        crash_op = random.Random(SEED).randrange(1, probe_plan.ops_seen)
        with inject(FaultPlan.crash_at(crash_op)):
            faulted = _run(root, jobs, "faulted", cache=False,
                           max_parallel=1, job_max_attempts=3)
        retry_identical = _contigs(faulted) == _contigs(probe)
        # Only single-flight leaders occupy queue slots (one per distinct
        # source), so the bound must undercut the source count to shed.
        shed_bound = max(1, mix.n_sources // 2)
        shed = _run(root, jobs, "shed", cache=False, max_parallel=1,
                    max_queued=shed_bound)

    speedup = (warm.jobs_per_second / cold.jobs_per_second
               if cold.jobs_per_second else 0.0)
    payload = {
        "cpu_count": os.cpu_count(),
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "jobs": mix.n_jobs,
        "sources": mix.n_sources,
        "max_parallel": max_parallel,
        "runs": {"uncached": _run_entry(uncached),
                 "cold": _run_entry(cold),
                 "warm": _run_entry(warm)},
        "warm_speedup": round(speedup, 3),
        "hit_rate": round(warm.hit_rate, 4),
        "byte_identical_contigs": identical_contigs,
        "byte_identical_ledgers": identical_ledgers,
        "fairness": {t.tenant: {"weight": t.weight, "jobs": t.jobs,
                                "served_units": t.served_units}
                     for t in warm.tenants.values()},
        "resilience": {
            "crash_op": crash_op,
            "job_retries": int(faulted.counters.get("job_retries", 0)),
            "retry_backoff_sim_s": round(
                faulted.counters.get("retry_backoff_sim_s", 0.0), 6),
            "jobs_quarantined": int(
                faulted.counters.get("jobs_quarantined", 0)),
            "byte_identical_after_retry": retry_identical,
            "shed_bound": shed_bound,
            "admission_shed": int(shed.counters.get("admission_shed", 0)),
        },
    }

    for name, entry in payload["runs"].items():
        print(f"{name:>9}: {entry['jobs_done']} jobs in "
              f"{entry['wall_s']:.3f}s ({entry['jobs_per_s']:.2f} jobs/s, "
              f"{entry['pipeline_runs']} pipeline runs)")
    print(f"warm speedup {speedup:.2f}x, hit rate {warm.hit_rate:.2%}, "
          f"contigs identical={identical_contigs}, "
          f"ledgers identical={identical_ledgers}")
    resilience = payload["resilience"]
    print(f"faulted (crash at op {crash_op}): "
          f"{resilience['job_retries']} retries, "
          f"{resilience['jobs_quarantined']} quarantined, "
          f"identical after retry={retry_identical}; "
          f"shed {resilience['admission_shed']} jobs at "
          f"max_queued={shed_bound}")
    if not (identical_contigs and identical_ledgers):
        print("WARNING: cached runs diverged from the uncached baseline")
    if not retry_identical:
        print("WARNING: retried run diverged from the clean baseline")
    if warm.hit_rate <= 0.0:
        print("WARNING: warm run had no cache hits")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

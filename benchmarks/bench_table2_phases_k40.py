"""Table II — single-node per-phase times, 128 GB host + K40 (12 GB).

Three columns per phase: the published time, the analytic model at paper
scale, and the measured wall time of the scaled run (whose *shape* — sort
dominant, map second, compress negligible — is the reproduction target).
"""

import pytest

from repro.analysis import ComparisonTable
from repro.model import model_phase_seconds
from repro.model.paper_values import TABLE2_K40

from _common import PAPER_ORDER, emit, pipeline_result, scale, workload

PHASES = ("map", "sort", "reduce", "compress", "load", "total")


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("paper_name", PAPER_ORDER)
def test_table2_phase_times_k40(benchmark, paper_name):
    result = benchmark.pedantic(
        lambda: pipeline_result(paper_name, "qb2"), rounds=1, iterations=1)

    from repro.config import MemoryConfig
    model = model_phase_seconds(workload(paper_name),
                                MemoryConfig.preset("qb2"), "K40")
    measured = result.phase_seconds()
    measured["total"] = sum(measured.values())

    table = ComparisonTable(
        f"Table II - {paper_name} on 128 GB + K40 (scaled x{scale():g})",
        ["phase", "paper", "model (paper scale)", "measured wall (scaled)"],
        ["raw", "duration", "duration", "duration"],
    )
    for phase in PHASES:
        table.add_row(phase, TABLE2_K40[paper_name][phase], model[phase],
                      measured[phase])
    table.add_note(f"sort disk passes: {result.sort_report.max_disk_passes} "
                   f"(paper: 1 on this host)")
    emit(f"table2_{paper_name.replace(' ', '').replace('.', '').lower()}", table)

    # Shape assertions: the paper's qualitative structure must hold.
    assert result.sort_report.max_disk_passes == 1
    assert model["sort"] > model["map"] > model["compress"]
    assert measured["compress"] < 0.2 * measured["total"]

"""Ablation D1 — the two-level (hybrid) sort vs direct disk↔device sorting.

Removing the host buffer tier means initial runs are device-block-sized
(``m_h = m_d``): the run count explodes and with it the merge rounds and
disk passes — the paper's claimed ``log(m_h/m_d)`` pass saving (§III.B),
"typically about 3–4 times".
"""

import numpy as np
import pytest

from repro.analysis import ComparisonTable
from repro.device import MemoryPool, SimClock, VirtualGPU
from repro.errors import HostMemoryError
from repro.extmem import ExternalSorter, IOAccountant, RunWriter
from repro.extmem.records import make_records
from repro.units import format_duration, format_size

from _common import dataset, emit


def _sort(tmp_path, records, m_h, m_d, tag):
    clock = SimClock()
    accountant = IOAccountant(clock=clock)
    gpu = VirtualGPU("K40", capacity_bytes=max(1 << 20, m_d * 60), clock=clock)
    host = MemoryPool("host", max(1 << 22, m_h * 60), HostMemoryError)
    sorter = ExternalSorter(gpu=gpu, host_pool=host, accountant=accountant,
                            dtype=records.dtype, host_block_pairs=m_h,
                            device_block_pairs=m_d)
    in_path = tmp_path / f"in_{tag}.run"
    with RunWriter(in_path, records.dtype) as writer:
        writer.append(records)
    before = accountant.total_bytes
    report = sorter.sort_file(in_path, tmp_path / f"out_{tag}.run")
    return report, accountant.total_bytes - before, clock.total_seconds


@pytest.mark.benchmark(group="ablation")
def test_ablation_hybrid_memory_sort(benchmark, tmp_path):
    materialized = dataset("H.Genome")
    n = 2 * materialized.n_reads
    rng = np.random.default_rng(7)
    records = make_records(rng.integers(0, 2**62, n, dtype=np.uint64),
                           np.arange(n, dtype=np.uint32))
    m_d = n // 32

    def run_both():
        hybrid = _sort(tmp_path, records, n, m_d, "hybrid")
        direct = _sort(tmp_path, records, m_d, m_d, "direct")
        return hybrid, direct

    (hybrid, direct) = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = ComparisonTable(
        "Ablation D1 - hybrid (disk->host->device) vs direct (disk->device) sort",
        ["variant", "m_h", "disk passes", "disk bytes", "sim time"],
    )
    for label, (report, disk_bytes, sim), m_h in (
            ("hybrid two-level", hybrid, n),
            ("no host tier", direct, m_d)):
        table.add_row(label, f"{m_h:,}", report.disk_passes,
                      format_size(disk_bytes), format_duration(sim))
    saving = direct[0].disk_passes / hybrid[0].disk_passes
    table.add_note(f"disk-pass saving {saving:.1f}x "
                   "(paper: 'typically about 3-4 times')")
    emit("ablation_hybrid", table)

    assert direct[0].disk_passes >= 3 * hybrid[0].disk_passes
    assert direct[1] > 2 * hybrid[1]   # disk traffic
    assert direct[2] > hybrid[2]       # modeled time

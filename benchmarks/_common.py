"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and prints
a comparison block with up to three columns per cell:

* **paper**    — the published number (:mod:`repro.model.paper_values`),
* **model**    — the analytic cost model evaluated at *paper scale*,
* **measured** — a real run of this implementation on the scaled dataset.

Scaled runs use the Table I analog datasets at ``REPRO_SCALE`` (default
2e-5) with memory budgets scaled by the same factor, so pass counts match
the paper's. Pipeline results are cached per (dataset, preset) because
several tables read the same runs (II+IV, III+V, VI).

Rendered blocks are printed and also appended to
``benchmarks/results/<bench>.txt`` so they survive pytest's capture.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro import Assembler, AssemblyConfig
from repro.analysis import ComparisonTable
from repro.config import MemoryConfig
from repro.core.results import AssemblyResult
from repro.model.workload import Workload
from repro.seq.datasets import active_scale, dataset_registry, materialize_dataset

#: Directory for materialized scaled datasets (kept across runs).
DATA_ROOT = Path(os.environ.get("REPRO_BENCH_DATA",
                                Path(__file__).parent / ".data"))
#: Directory where rendered comparison tables are persisted.
RESULTS_ROOT = Path(__file__).parent / "results"

#: paper-name ↔ registry-name correspondence, in Table I order.
NAME_BY_PAPER = {
    "H.Chr 14": "hchr14_sim",
    "Bumblebee": "bumblebee_sim",
    "Parakeet": "parakeet_sim",
    "H.Genome": "hgenome_sim",
}
PAPER_ORDER = tuple(NAME_BY_PAPER)

#: Testbed presets: (memory preset, GPU) as in the paper's Tables II/III.
PRESETS = {"qb2": "K40", "supermic": "K20X"}


def scale() -> float:
    """The active dataset/memory scale factor."""
    return active_scale()


def scaled_memory(preset: str) -> MemoryConfig:
    """The preset budget scaled down with the datasets."""
    return MemoryConfig.preset(preset).scaled(scale())


def dataset(paper_name: str):
    """Materialize (or reuse) the scaled analog of one Table I dataset."""
    return materialize_dataset(NAME_BY_PAPER[paper_name], DATA_ROOT)


def workload(paper_name: str) -> Workload:
    """Paper-scale workload descriptor for the model columns."""
    return Workload.from_spec(dataset_registry()[NAME_BY_PAPER[paper_name]])


@functools.lru_cache(maxsize=None)
def pipeline_result(paper_name: str, preset: str) -> AssemblyResult:
    """Run (once) the full pipeline on a scaled dataset under a preset.

    Uses two fingerprint lanes — the paper's 20-byte record — so the scaled
    disk-pass structure matches Tables II/III.
    """
    materialized = dataset(paper_name)
    config = AssemblyConfig(
        min_overlap=materialized.spec.min_overlap,
        memory=scaled_memory(preset),
        device_name=PRESETS[preset],
        fingerprint_lanes=2,
    )
    return Assembler(config).assemble(materialized.store_path)


def emit(bench_name: str, *renderables) -> None:
    """Print tables/charts (anything with ``.render()``) and persist them
    under benchmarks/results/."""
    RESULTS_ROOT.mkdir(parents=True, exist_ok=True)
    rendered = "\n\n".join(item.render() for item in renderables)
    print("\n" + rendered)
    (RESULTS_ROOT / f"{bench_name}.txt").write_text(rendered + "\n")

"""Table VI — LaSAGNA vs SGA (preprocess + index + overlap phases).

Reproduction targets: LaSAGNA wins on every dataset/configuration; SGA hits
OOM exactly on H.Genome with the 64 GB-analog budget; the speedup factor is
in the low single digits (paper: 1.89x–3.05x).

The measured columns run both assemblers for real on the scaled datasets
(the SGA-analog builds a genuine FM index and backward-searches every
read); the model columns evaluate both sides at paper scale.
"""

import time

import pytest

from repro.analysis import ComparisonTable
from repro.baselines import SGAAssembler
from repro.config import MemoryConfig
from repro.errors import HostMemoryError
from repro.model.comparison import (model_lasagna_comparable_seconds,
                                    model_sga_seconds)
from repro.model.paper_values import TABLE6_SGA, TABLE6_SPEEDUP_RANGE

from _common import (PAPER_ORDER, PRESETS, dataset, emit, pipeline_result,
                     scale, scaled_memory, workload)


def _measured_lasagna_seconds(paper_name: str, preset: str) -> float:
    """Timed LaSAGNA phases at the default execution budget.

    The scaled-budget runs (Tables II/III) exercise the streaming *structure*
    (pass counts, peak memory), but at miniature scale their per-batch Python
    overhead is not representative of throughput; for who-wins timing both
    systems run at their natural operating point on identical data. The OOM
    axis of the comparison still uses the scaled host budget (see
    :func:`_measured_sga_seconds`).
    """
    from repro import Assembler, AssemblyConfig

    materialized = dataset(paper_name)
    config = AssemblyConfig(min_overlap=materialized.spec.min_overlap)
    result = Assembler(config).assemble(materialized.store_path)
    return sum(result.phase_seconds()[p] for p in ("load", "map", "sort", "reduce"))


def _measured_sga_seconds(paper_name: str, preset: str) -> float | None:
    materialized = dataset(paper_name)
    sga = SGAAssembler(min_overlap=materialized.spec.min_overlap,
                       host_budget_bytes=scaled_memory(preset).host_bytes)
    with materialized.open_store() as store:
        batch = store.read_slice(0, store.n_reads)
    try:
        start = time.perf_counter()
        result = sga.assemble(batch)
        elapsed = time.perf_counter() - start
        return elapsed - result.phase_seconds.get("assemble", 0.0)
    except HostMemoryError:
        return None


@pytest.mark.benchmark(group="table6")
@pytest.mark.parametrize("preset,column", [("supermic", "64"), ("qb2", "128")])
def test_table6_sga_comparison(benchmark, preset, column):
    measured = benchmark.pedantic(
        lambda: {name: (_measured_sga_seconds(name, preset),
                        _measured_lasagna_seconds(name, preset))
                 for name in PAPER_ORDER},
        rounds=1, iterations=1)

    memory = MemoryConfig.preset(preset)
    device = PRESETS[preset]
    table = ComparisonTable(
        f"Table VI - SGA vs LaSAGNA at {memory.host_bytes // 10**9} GB "
        f"(scaled x{scale():g})",
        ["dataset", "paper SGA", "paper LaSAGNA", "paper speedup",
         "model speedup", "measured speedup"],
        ["raw", "duration", "duration", "ratio", "ratio", "ratio"],
    )
    speedups = {}
    for paper_name in PAPER_ORDER:
        paper_row = TABLE6_SGA[paper_name]
        paper_sga = paper_row[f"sga_{column}"]
        paper_ours = paper_row[f"lasagna_{column}"]
        w = workload(paper_name)
        model_sga = model_sga_seconds(w, memory.host_bytes)
        model_ours = model_lasagna_comparable_seconds(w, memory, device)
        sga_seconds, ours_seconds = measured[paper_name]
        speedup = None if sga_seconds is None else sga_seconds / ours_seconds
        speedups[paper_name] = speedup
        table.add_row(
            paper_name, paper_sga, paper_ours,
            None if paper_sga is None else paper_sga / paper_ours,
            None if model_sga is None else model_sga / model_ours,
            speedup)
    table.add_note(f"paper speedup range: {TABLE6_SPEEDUP_RANGE[0]}x-"
                   f"{TABLE6_SPEEDUP_RANGE[1]}x; OOM = exceeds host budget")
    table.add_note("measured timing at natural execution budgets; OOM axis "
                   "uses the scaled host budget")
    emit(f"table6_{column}gb", table)

    # Who-wins shape: LaSAGNA faster wherever SGA completes; the OOM cell
    # appears exactly where the paper reports it.
    for paper_name in PAPER_ORDER:
        expected_oom = TABLE6_SGA[paper_name][f"sga_{column}"] is None
        assert (speedups[paper_name] is None) is expected_oom
        if speedups[paper_name] is not None:
            assert speedups[paper_name] > 1.0, paper_name

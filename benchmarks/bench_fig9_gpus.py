"""Fig. 9 — sorting time across GPUs (K40/P40/P100/V100) vs host block-size.

Measured: the scaled partition sort re-run under each GPU's spec (the
virtual device charges bandwidth-dependent kernel/PCIe time), at a large
and a small host block. Model: the paper-scale curve per GPU.

Reproduction targets: V100 < P100 < P40 < K40 in time (P100 beats P40
despite fewer cores — bandwidth), and the GPUs converge as the host block
shrinks and sorting turns I/O-bound.
"""

import numpy as np
import pytest

from repro.analysis import ComparisonTable
from repro.device import MemoryPool, SimClock, VirtualGPU
from repro.errors import HostMemoryError
from repro.extmem import ExternalSorter, IOAccountant, RunWriter
from repro.extmem.records import make_records
from repro.model.paper_values import FIG9_GPU_ORDER_FAST_TO_SLOW
from repro.model.sorting import model_partition_sort_seconds
from repro.units import format_duration

from _common import dataset, emit

GPUS = ("K40", "P40", "P100", "V100")


def _sort_with_gpu(tmp_path, records, gpu_name: str, m_h: int, m_d: int) -> float:
    clock = SimClock()
    accountant = IOAccountant(clock=clock)
    gpu = VirtualGPU(gpu_name, capacity_bytes=max(1 << 20, m_d * 60), clock=clock)
    host_pool = MemoryPool("host", max(1 << 22, m_h * 60), HostMemoryError)
    sorter = ExternalSorter(gpu=gpu, host_pool=host_pool, accountant=accountant,
                            dtype=records.dtype, host_block_pairs=m_h,
                            device_block_pairs=m_d)
    in_path = tmp_path / f"in_{gpu_name}_{m_h}.run"
    with RunWriter(in_path, records.dtype) as writer:
        writer.append(records)
    sorter.sort_file(in_path, tmp_path / f"out_{gpu_name}_{m_h}.run")
    return clock.total_seconds


@pytest.mark.benchmark(group="fig9")
def test_fig9_gpu_sweep(benchmark, tmp_path):
    materialized = dataset("H.Genome")
    n = 2 * materialized.n_reads
    rng = np.random.default_rng(99)
    records = make_records(rng.integers(0, 2**62, n, dtype=np.uint64),
                           np.arange(n, dtype=np.uint32),
                           aux=rng.integers(0, 2**62, n, dtype=np.uint64))
    big_block, small_block = 2 * n, n // 8

    def sweep():
        return {(gpu, m_h): _sort_with_gpu(tmp_path, records, gpu, m_h, n // 16)
                for gpu in GPUS for m_h in (big_block, small_block)}

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = ComparisonTable(
        "Fig. 9 - per-partition sort time by GPU and host block-size",
        ["GPU", "model large m_h", "model small m_h",
         "measured(sim) large m_h", "measured(sim) small m_h"],
    )
    for gpu in GPUS:
        table.add_row(
            gpu,
            format_duration(model_partition_sort_seconds(2_560_000_000,
                                                         20_000_000, gpu)),
            format_duration(model_partition_sort_seconds(160_000_000,
                                                         20_000_000, gpu)),
            format_duration(measured[(gpu, big_block)]),
            format_duration(measured[(gpu, small_block)]),
        )
    table.add_note("expected ordering fast-to-slow: "
                   + " < ".join(FIG9_GPU_ORDER_FAST_TO_SLOW))

    from repro.analysis import AsciiChart
    host_blocks = (40_000_000, 160_000_000, 640_000_000, 2_560_000_000)
    chart = AsciiChart("Fig. 9 (model) - partition sort seconds vs host "
                       "block-size, fixed m_d = 20 M",
                       [f"{b // 10**6}M" for b in host_blocks], y_log=True)
    for gpu in GPUS:
        chart.add_series(gpu, [model_partition_sort_seconds(b, 20_000_000, gpu)
                               for b in host_blocks])
    emit("fig9", table, chart)

    # Ordering at the large block: bandwidth ranking, incl. P100 > P40.
    big = {gpu: measured[(gpu, big_block)] for gpu in GPUS}
    assert tuple(sorted(big, key=big.get)) == FIG9_GPU_ORDER_FAST_TO_SLOW
    assert big["P100"] < big["P40"]
    # Convergence: relative GPU spread shrinks in the I/O-bound regime.
    small = {gpu: measured[(gpu, small_block)] for gpu in GPUS}

    def spread(times):
        return (max(times.values()) - min(times.values())) / min(times.values())

    assert spread(small) < spread(big)

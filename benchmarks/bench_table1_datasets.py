"""Table I — dataset inventory (paper vs the scaled analogs).

Regenerates the dataset table: published read counts/base counts/sizes next
to the scaled analogs actually used by the measured benchmark columns.
The benchmark times dataset materialization (simulation + packing).
"""

import pytest

from repro.analysis import ComparisonTable
from repro.model.paper_values import TABLE1

from _common import NAME_BY_PAPER, PAPER_ORDER, dataset, emit, scale


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_inventory(benchmark):
    materialized = {}

    def build_all():
        for paper_name in PAPER_ORDER:
            materialized[paper_name] = dataset(paper_name)
        return materialized

    benchmark.pedantic(build_all, rounds=1, iterations=1)

    table = ComparisonTable(
        f"Table I - datasets (scale factor {scale():g})",
        ["dataset", "len", "l_min", "paper reads", "paper bases",
         "scaled reads", "scaled bases"],
    )
    for paper_name in PAPER_ORDER:
        md = materialized[paper_name]
        row = TABLE1[paper_name]
        table.add_row(paper_name, row["length"], row["min_overlap"],
                      f"{row['reads']:,}", f"{row['bases']:,}",
                      f"{md.n_reads:,}", f"{md.n_bases:,}")
        assert md.spec.read_length == row["length"]
    table.add_note("scaled analogs preserve read length, l_min and coverage")
    emit("table1", table)

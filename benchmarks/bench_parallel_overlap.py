"""Pipelined-execution overlap benchmark: serial vs worker-pool runs.

Runs the map + sort phases (the two pipelined hot paths) on the Fig. 8
workload — the scaled H.Genome partition dataset — under ``workers`` ∈
{1, 2, 4} and reports, per run, the wall time and the wall seconds the
double-buffered overlap removed (``overlap_saved_s``, background busy
minus caller blocked time). ``--backend`` picks the executor backend
(default ``auto``: processes when workers > 1). Results land in
``benchmarks/results/BENCH_parallel.json``::

    {"cpu_count": ..., "mode": "full"|"smoke", "backend": ...,
     "entries": [{"workload": ..., "workers": ..., "backend": ...,
                  "wall_s": ..., "overlap_saved_s": ...}, ...]}

``--smoke`` swaps in a tiny simulated dataset so CI can exercise the
parallel code paths in seconds; it is a plumbing check, not a measurement.
Speedups need real cores: on a single-CPU host all worker counts degenerate
to roughly serial wall time (the JSON records ``cpu_count`` so a reader can
tell).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_overlap.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.config import AssemblyConfig, MemoryConfig
from repro.core.context import RunContext
from repro.core.map_phase import run_map
from repro.core.sort_phase import run_sort
from repro.seq.datasets import tiny_dataset
from repro.seq.packing import PackedReadStore

WORKER_COUNTS = (1, 2, 4)
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_parallel.json"


def _measure(store_path: Path, config: AssemblyConfig, workdir: Path) -> dict:
    """One map+sort run; returns wall and overlap seconds."""
    ctx = RunContext(config, workdir=workdir)
    try:
        begin = time.perf_counter()
        with PackedReadStore.open(store_path) as store:
            with ctx.telemetry.phase("map"):
                partitions, _ = run_map(ctx, store)
            with ctx.telemetry.phase("sort"):
                run_sort(ctx, partitions)
        wall = time.perf_counter() - begin
        saved = sum(stats.overlap_saved_s for stats in ctx.telemetry)
        map_wall = ctx.telemetry["map"].wall_seconds
    finally:
        ctx.cleanup()
    return {"wall_s": round(wall, 4), "overlap_saved_s": round(saved, 4),
            "map_wall_s": round(map_wall, 4)}


def _full_workload(root: Path):
    from _common import dataset, scaled_memory

    materialized = dataset("H.Genome")
    config_for = lambda workers, backend: AssemblyConfig(  # noqa: E731
        min_overlap=materialized.spec.min_overlap,
        memory=scaled_memory("qb2"), device_name="K40",
        fingerprint_lanes=2, workers=workers, executor_backend=backend)
    return "hgenome_sim(map+sort)", materialized.store_path, config_for


def _smoke_workload(root: Path):
    materialized, _ = tiny_dataset(root / "data", genome_length=2000,
                                   read_length=50, coverage=20.0,
                                   min_overlap=25, seed=11)
    config_for = lambda workers, backend: AssemblyConfig(  # noqa: E731
        min_overlap=25, workers=workers, executor_backend=backend,
        memory=MemoryConfig(64 << 20, 1 << 20),
        host_block_pairs=500, device_block_pairs=128)
    return "tiny_sim(map+sort)", materialized.store_path, config_for


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset, seconds not minutes (CI plumbing check)")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "serial", "threads", "processes"),
                        help="executor backend for every worker count")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)

    import os

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as tmp:
        tmp_root = Path(tmp)
        workload, store_path, config_for = (
            _smoke_workload(tmp_root) if args.smoke else _full_workload(tmp_root))
        entries = []
        for workers in WORKER_COUNTS:
            measured = _measure(store_path, config_for(workers, args.backend),
                                tmp_root / f"work-{workers}")
            entry = {"workload": workload, "workers": workers,
                     "backend": args.backend, **measured}
            entries.append(entry)
            print(f"workers={workers}: wall={entry['wall_s']:.3f}s "
                  f"(map {entry['map_wall_s']:.3f}s) "
                  f"overlap_saved={entry['overlap_saved_s']:.3f}s")

    serial = entries[0]["wall_s"]
    for entry in entries[1:]:
        print(f"speedup @ {entry['workers']} workers: "
              f"{serial / entry['wall_s']:.2f}x")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(
        {"cpu_count": os.cpu_count(),
         "mode": "smoke" if args.smoke else "full",
         "backend": args.backend,
         "entries": entries}, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation — storage media sensitivity (HDD vs SSD).

"In practice, LaSAGNA will benefit from the use of local disks and faster
media such as solid-state drives" (§III.E). Measured: the same scaled
assembly runs against the HDD-class and SSD-class disk models; the modeled
clock shows how much of the pipeline the faster medium recovers and how
the bottleneck shifts from disk toward the device.
"""

import pytest

from repro import Assembler, AssemblyConfig
from repro.analysis import ComparisonTable
from repro.device.specs import DiskSpec
from repro.units import format_duration

from _common import dataset, emit, scale, scaled_memory


@pytest.mark.benchmark(group="ablation")
def test_ablation_disk_media(benchmark):
    materialized = dataset("Parakeet")
    config = AssemblyConfig(min_overlap=materialized.spec.min_overlap,
                            memory=scaled_memory("supermic"),
                            device_name="K20X", fingerprint_lanes=2)

    def run_both():
        out = {}
        for label, disk in (("hdd", DiskSpec()), ("ssd", DiskSpec.ssd())):
            result = Assembler(config, disk=disk).assemble(materialized.store_path)
            out[label] = result
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = ComparisonTable(
        f"Ablation - disk media, Parakeet analog (scaled x{scale():g})",
        ["disk", "sim total", "sim disk share", "sim sort", "sim map"],
    )
    for label, result in results.items():
        total = result.telemetry.total_sim_seconds()
        disk_seconds = sum(
            stats.counters.get("sim_disk_read_seconds", 0.0)
            + stats.counters.get("sim_disk_write_seconds", 0.0)
            for stats in result.telemetry)
        table.add_row(label, format_duration(total),
                      f"{disk_seconds / total:.0%}",
                      format_duration(result.telemetry["sort"].sim_seconds),
                      format_duration(result.telemetry["map"].sim_seconds))
    speedup = (results["hdd"].telemetry.total_sim_seconds()
               / results["ssd"].telemetry.total_sim_seconds())
    table.add_note(f"SSD end-to-end speedup {speedup:.2f}x; identical contigs")
    emit("ablation_disk", table)

    # Faster media speed the run up and shrink the disk share of total time.
    assert speedup > 1.3
    hdd, ssd = results["hdd"], results["ssd"]
    assert ssd.telemetry["sort"].sim_seconds < hdd.telemetry["sort"].sim_seconds
    # The assembly itself is unchanged.
    import numpy as np
    assert np.array_equal(hdd.contigs.flat_codes, ssd.contigs.flat_codes)

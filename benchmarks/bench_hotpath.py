"""Hot-path memory benchmark: pooled + in-place substrate vs. seed path.

Runs the map + sort phases (the allocator-bound hot path) on the Fig. 8
workload — the scaled H.Genome partition dataset — under two substrate
variants and records the perf-trajectory artifact
``benchmarks/results/BENCH_hotpath.json``:

* ``seed``   — ``buffer_pool=False`` + ``REPRO_LEGACY_SCAN=1`` +
  ``REPRO_LEGACY_IO=1``: fresh numpy allocations per transfer/kernel, the
  per-lane reference scan formulation, and one OS write / one bytes round
  trip per stream op, reproducing the pre-optimization hot path;
* ``pooled`` — the default substrate: :class:`repro.device.memory.BufferPool`
  recycling, zero-copy transfers, and the stacked in-place scan kernels.

Each variant runs in its own subprocess: ``--repeats`` interleaved clean
passes for wall seconds (per phase and total, reduced by minimum — the
robust estimator under machine noise) and one instrumented pass for
tracemalloc peaks (tracemalloc skews wall time, so the passes are
separate). Peak RSS (``VmHWM``) is per-variant because each variant owns
its process. The two variants must produce byte-identical artifacts and
identical simulated seconds — the benchmark fails loudly if they diverge,
making it double as an end-to-end equivalence check.

``--smoke`` swaps in a tiny dataset (CI plumbing + regression gate);
``--check`` compares the fresh pooled wall time against a previously
committed results file and exits 1 on a >25% regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_hotpath.json"
#: Wall-time regression threshold for ``--check`` (fraction over baseline).
REGRESSION_LIMIT = 0.25
VARIANTS = ("seed", "pooled")


def _workload(mode: str, root: Path):
    """(name, store_path, config) for the benchmark mode."""
    from repro.config import AssemblyConfig, MemoryConfig

    if mode == "smoke":
        from repro.seq.datasets import tiny_dataset

        materialized, _ = tiny_dataset(root / "data", genome_length=4000,
                                       read_length=50, coverage=15.0,
                                       min_overlap=25, seed=11)
        config = AssemblyConfig(min_overlap=25,
                                memory=MemoryConfig(64 << 20, 1 << 20),
                                fingerprint_lanes=2)
        return "tiny_sim(map+sort)", materialized.store_path, config
    from _common import dataset, scaled_memory

    materialized = dataset("H.Genome")
    config = AssemblyConfig(min_overlap=materialized.spec.min_overlap,
                            memory=scaled_memory("qb2"), device_name="K40",
                            fingerprint_lanes=2)
    return "hgenome_sim(map+sort)", materialized.store_path, config


def _digest_workdir(workdir: Path) -> str:
    """Order-independent digest of every artifact byte under the workdir."""
    digest = hashlib.sha256()
    for path in sorted(workdir.rglob("*")):
        if path.is_file():
            digest.update(str(path.relative_to(workdir)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def _vm_hwm_bytes() -> int | None:
    """Peak resident set of this process (Linux ``VmHWM``), in bytes."""
    try:
        status = Path("/proc/self/status").read_text()
    except OSError:
        return None
    for line in status.splitlines():
        if line.startswith("VmHWM:"):
            return int(line.split()[1]) * 1024
    return None


def _run_one(mode: str, variant: str, trace_memory: bool, out_path: Path) -> int:
    """Child process: one map+sort run; writes a JSON measurement."""
    from dataclasses import replace

    from repro.core.context import RunContext
    from repro.core.map_phase import run_map
    from repro.core.sort_phase import run_sort
    from repro.seq.packing import PackedReadStore

    with tempfile.TemporaryDirectory(prefix=f"hotpath-{variant}-") as tmp:
        tmp_root = Path(tmp)
        workload, store_path, config = _workload(mode, tmp_root)
        config = replace(config, buffer_pool=(variant == "pooled"))
        workdir = tmp_root / "work"
        ctx = RunContext(config, workdir=workdir)
        phases = {}
        try:
            begin = time.perf_counter()
            with PackedReadStore.open(store_path) as store:
                for name in ("map", "sort"):
                    if trace_memory:
                        tracemalloc.start()
                    with ctx.telemetry.phase(name):
                        if name == "map":
                            partitions, _ = run_map(ctx, store)
                        else:
                            run_sort(ctx, partitions)
                    entry = {"wall_s": round(
                        ctx.telemetry[name].wall_seconds, 4)}
                    if trace_memory:
                        entry["tracemalloc_peak_bytes"] = \
                            tracemalloc.get_traced_memory()[1]
                        tracemalloc.stop()
                    phases[name] = entry
            wall = time.perf_counter() - begin
            measurement = {
                "workload": workload,
                "variant": variant,
                "wall_s": round(wall, 4),
                "sim_s": repr(sum(s.sim_seconds for s in ctx.telemetry)),
                "phases": phases,
                "digest": _digest_workdir(workdir),
                "vm_hwm_bytes": _vm_hwm_bytes(),
                "bufpool": dict(ctx.gpu.buffers.counters()),
            }
        finally:
            ctx.cleanup()
    out_path.write_text(json.dumps(measurement, indent=2))
    return 0


def _spawn(mode: str, variant: str, trace_memory: bool, out_path: Path) -> dict:
    env = dict(os.environ)
    env["REPRO_LEGACY_SCAN"] = "1" if variant == "seed" else "0"
    env["REPRO_LEGACY_IO"] = "1" if variant == "seed" else "0"
    env.pop("REPRO_WORKERS", None)
    env.pop("REPRO_BACKEND", None)
    argv = [sys.executable, str(Path(__file__).resolve()),
            "--run-one", variant, "--mode", mode, "--out", str(out_path)]
    if trace_memory:
        argv.append("--trace-memory")
    subprocess.run(argv, check=True, env=env)
    return json.loads(out_path.read_text())


def smoke_baseline_path() -> Path:
    return RESULTS_PATH.with_name("BENCH_hotpath_smoke.json")


def _check_regression(fresh: dict, baseline_path: Path) -> int:
    """Exit status of the wall-time regression gate."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("mode") != fresh["mode"]:
        print(f"baseline mode {baseline.get('mode')!r} != {fresh['mode']!r}; "
              "skipping regression check")
        return 0
    old = baseline["variants"]["pooled"]["wall_s"]
    new = fresh["variants"]["pooled"]["wall_s"]
    limit = old * (1.0 + REGRESSION_LIMIT)
    verdict = "REGRESSION" if new > limit else "ok"
    print(f"regression check: pooled wall {new:.3f}s vs baseline {old:.3f}s "
          f"(limit {limit:.3f}s): {verdict}")
    return 1 if new > limit else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset, seconds not minutes")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved wall-time passes per variant "
                             "(minimum is reported)")
    parser.add_argument("--check", action="store_true",
                        help="fail on >25%% pooled wall regression vs the "
                             "committed results file")
    parser.add_argument("--output", type=Path, default=None,
                        help="results file (default: the committed artifact "
                             "for the mode)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline for --check (default: the committed "
                             "artifact for the mode)")
    parser.add_argument("--run-one", choices=VARIANTS, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--mode", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--out", type=Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--trace-memory", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.run_one:
        return _run_one(args.mode, args.run_one, args.trace_memory, args.out)

    mode = "smoke" if args.smoke else "full"
    committed = smoke_baseline_path() if args.smoke else RESULTS_PATH
    output = args.output if args.output is not None else committed
    baseline = args.baseline if args.baseline is not None else committed
    repeats = max(1, args.repeats)
    variants: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="hotpath-out-") as tmp:
        passes: dict[str, list[dict]] = {v: [] for v in VARIANTS}
        for rep in range(repeats):
            for variant in VARIANTS:  # interleaved: noise hits both alike
                passes[variant].append(
                    _spawn(mode, variant, False, Path(tmp) / "t.json"))
        for variant in VARIANTS:
            runs = passes[variant]
            timing = dict(runs[0])
            if any(r["digest"] != timing["digest"] or
                   r["sim_s"] != timing["sim_s"] for r in runs[1:]):
                print(f"FATAL: {variant} passes diverged between repeats",
                      file=sys.stderr)
                return 2
            timing["wall_s"] = min(r["wall_s"] for r in runs)
            timing["phases"] = {
                phase: {"wall_s": min(r["phases"][phase]["wall_s"]
                                      for r in runs)}
                for phase in timing["phases"]}
            memory = _spawn(mode, variant, True, Path(tmp) / "m.json")
            for phase, entry in timing["phases"].items():
                entry["tracemalloc_peak_bytes"] = \
                    memory["phases"][phase]["tracemalloc_peak_bytes"]
            timing["vm_hwm_bytes"] = memory["vm_hwm_bytes"] or \
                timing["vm_hwm_bytes"]
            variants[variant] = timing
            print(f"{variant}: wall={timing['wall_s']:.3f}s "
                  f"(map {timing['phases']['map']['wall_s']:.3f}s, "
                  f"sort {timing['phases']['sort']['wall_s']:.3f}s) "
                  f"sim={timing['sim_s']} rss={timing['vm_hwm_bytes']} "
                  f"over {repeats} passes")

    identical = (variants["seed"]["digest"] == variants["pooled"]["digest"]
                 and variants["seed"]["sim_s"] == variants["pooled"]["sim_s"])
    speedup = variants["seed"]["wall_s"] / variants["pooled"]["wall_s"]
    print(f"speedup: {speedup:.2f}x  artifacts identical: {identical}")
    if not identical:
        print("FATAL: variants diverged (artifact bytes or simulated time)",
              file=sys.stderr)
        return 2

    result = {"cpu_count": os.cpu_count(), "mode": mode, "repeats": repeats,
              "speedup": round(speedup, 3), "identical_artifacts": identical,
              "variants": variants}
    status = 0
    if args.check:
        status = _check_regression(result, baseline)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())

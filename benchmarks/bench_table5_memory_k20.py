"""Table V — peak host/device memory per phase, 64 GB + K20X.

Same structure as Table IV on the smaller testbed: device peaks scale with
the device (6 GB vs 12 GB) but stay data-size independent; host peaks are
capped by the smaller budget (H.Genome's sort peak saturates near the
buffer limit — the paper's 54.66 GB on a 64 GB host).
"""

import pytest

from repro.analysis import ComparisonTable
from repro.config import MemoryConfig
from repro.model import model_memory_peaks
from repro.model.paper_values import TABLE5_MEMORY_K20

from _common import PAPER_ORDER, emit, pipeline_result, scale, workload

GB = 1e9


@pytest.mark.benchmark(group="table5")
def test_table5_memory_peaks_k20(benchmark):
    results = benchmark.pedantic(
        lambda: {name: pipeline_result(name, "supermic") for name in PAPER_ORDER},
        rounds=1, iterations=1)

    memory = MemoryConfig.preset("supermic")
    factor = scale()
    table = ComparisonTable(
        f"Table V (GB) - paper | model | measured-scaled/{scale():g}",
        ["dataset", "host map", "host sort", "host reduce", "dev map",
         "dev sort", "dev reduce"],
    )
    for paper_name in PAPER_ORDER:
        result = results[paper_name]
        model = model_memory_peaks(workload(paper_name), memory, "K20X")
        paper = TABLE5_MEMORY_K20[paper_name]

        def cell(kind, phase):
            published = paper[kind][phase]
            modeled = model[kind][phase] / GB
            key = "device_bytes" if kind == "device" else "host_bytes"
            measured = result.telemetry[phase].peaks.get(key, 0.0)
            return f"{published:.1f} | {modeled:.1f} | {measured / factor / GB:.1f}"

        table.add_row(paper_name, cell("host", "map"), cell("host", "sort"),
                      cell("host", "reduce"), cell("device", "map"),
                      cell("device", "sort"), cell("device", "reduce"))
    emit("table5", table)

    # Device peaks halve with the device (Table IV vs V pattern).
    qb2_sort = pipeline_result("H.Genome", "qb2").telemetry["sort"] \
        .peaks["device_bytes"]
    supermic_sort = results["H.Genome"].telemetry["sort"].peaks["device_bytes"]
    assert supermic_sort < qb2_sort
    # H.Genome host sort peak approaches the scaled 64 GB-analog budget.
    budget = MemoryConfig.preset("supermic").scaled(factor)
    hgenome_sort_host = results["H.Genome"].telemetry["sort"].peaks["host_bytes"]
    assert hgenome_sort_host > 0.5 * budget.host_bytes
    assert hgenome_sort_host <= budget.host_bytes

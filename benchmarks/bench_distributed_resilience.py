"""Distributed-resilience benchmark: recovery overhead vs injected crashes.

For each cluster size in {2, 4, 8} this runs the distributed assembler
clean, then with k ∈ {1, 2, 4} injected ``node-crash`` faults (each kills
the owner of one deterministic reduce partition at its token boundary,
forcing heartbeat detection, restart and ledger-verified replay), and
reports the recovery overhead — extra modeled token time as a percentage
of the clean run's. Every faulted run must still produce the clean run's
byte-identical contigs; ``recovered`` records that check. Results land in
``benchmarks/results/BENCH_resilience.json``::

    {"cpu_count": ..., "mode": "full"|"smoke", "seed": ...,
     "entries": [{"nodes": ..., "crashes": ..., "fired": ...,
                  "token_s": ..., "total_s": ..., "overhead_pct": ...,
                  "restarts": ..., "failovers": ..., "recovered": true},
                 ...]}

``--smoke`` shrinks the dataset and sweep so CI can exercise the recovery
paths in seconds; it is a plumbing check, not a measurement.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed_resilience.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import AssemblyConfig
from repro.distributed import DistributedAssembler
from repro.faults import NODE, NODE_CRASH, Fault, FaultPlan, inject
from repro.seq.datasets import tiny_dataset

NODE_COUNTS = (2, 4, 8)
CRASH_COUNTS = (0, 1, 2, 4)
SEED = 23
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_resilience.json"


def _identity(result) -> tuple:
    return (result.contigs.flat_codes.tobytes(),
            result.contigs.offsets.tobytes(), result.edges)


def _crash_plan(clean, crashes: int, seed: int) -> FaultPlan:
    """Kill the owner of ``crashes`` distinct partitions at the token boundary.

    Match-based (not op-pinned) faults: each fires at the first reduce
    attempt of its partition no matter how earlier recoveries shifted the
    op counter, so exactly ``crashes`` faults fire per run.
    """
    lengths = sorted({entry["length"] for entry in clean.token_trace})
    chosen = random.Random(seed).sample(lengths, min(crashes, len(lengths)))
    # fnmatch treats "[...]" as a character class — escape the bracket.
    return FaultPlan([Fault(NODE_CRASH, site=NODE,
                            match=f"*:reduce[[]{length}]")
                      for length in chosen], seed=seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset + reduced sweep (CI plumbing check)")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)

    node_counts = (2, 4) if args.smoke else NODE_COUNTS
    crash_counts = (0, 1, 2) if args.smoke else CRASH_COUNTS
    genome = 600 if args.smoke else 1800

    entries = []
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as tmp:
        md, _ = tiny_dataset(Path(tmp) / "data", genome_length=genome,
                             read_length=36, coverage=8.0, min_overlap=24,
                             seed=7)
        # Restart budget sized so every injected crash is absorbed by
        # restart + replay (the overhead being measured), not by node loss.
        config = AssemblyConfig(min_overlap=24, seed=7,
                                node_restarts=max(crash_counts))
        for nodes in node_counts:
            assembler = DistributedAssembler(config, nodes)
            clean = assembler.assemble(md.store_path)
            baseline = _identity(clean)
            for crashes in crash_counts:
                if crashes == 0:
                    result, fired = clean, 0
                else:
                    plan = _crash_plan(clean, crashes, SEED + crashes)
                    with inject(plan):
                        result = assembler.assemble(md.store_path)
                    fired = len(plan.events)
                token_s = result.phase_seconds["reduce"]
                overhead = (100.0 * (token_s - clean.phase_seconds["reduce"])
                            / clean.phase_seconds["reduce"])
                entry = {
                    "nodes": nodes,
                    "crashes": crashes,
                    "fired": fired,
                    "token_s": round(token_s, 6),
                    "total_s": round(result.total_seconds, 6),
                    "overhead_pct": round(overhead, 2),
                    "restarts": int(result.notes.get("node_restarts", 0)),
                    "failovers": int(result.notes.get("failovers", 0)),
                    "recovered": (result.degraded is None
                                  and _identity(result) == baseline),
                }
                entries.append(entry)
                print(f"nodes={nodes} crashes={crashes} (fired {fired}): "
                      f"token={entry['token_s']:.4f}s "
                      f"overhead={entry['overhead_pct']:+.2f}% "
                      f"restarts={entry['restarts']} "
                      f"recovered={entry['recovered']}")

    if not all(entry["recovered"] for entry in entries):
        print("WARNING: some faulted runs did not recover byte-identically")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(
        {"cpu_count": os.cpu_count(),
         "mode": "smoke" if args.smoke else "full",
         "seed": SEED,
         "entries": entries}, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

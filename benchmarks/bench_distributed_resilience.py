"""Distributed-resilience benchmark: recovery overhead vs injected crashes.

For each cluster size in {2, 4, 8} this runs the distributed assembler
clean, then with k ∈ {1, 2, 4} injected ``node-crash`` faults (each kills
the owner of one deterministic reduce partition at its token boundary,
forcing heartbeat detection, restart and ledger-verified replay) — under
**two recovery policies**:

``seed``
    The historical ladder: detection waits out ``node_timeout`` and the
    replay reprocesses the dead node's whole partition attempt.

``cheap``
    The cheap-recovery stack (DESIGN.md §2g): fast heartbeats
    (``heartbeat_interval=0.02``), speculative re-execution
    (``speculation_threshold=0.02``) and intra-partition chunk
    checkpoints (``chunk_checkpoint_every=512``). All three are
    policy-only — every cell still asserts byte-identity to the clean run.

Each entry reports the extra modeled reduce time over that policy's own
clean run (``overhead_pct``), and for faulted cells the *genuinely lost
work* — wasted attempt seconds plus speculation waste plus displaced
(moved) work — and the ``overhead_ratio = overhead_s / lost_work_s``. The
acceptance line for the cheap policy is ``overhead_ratio <= 2`` at
2 nodes / 1 crash: recovery costs at most twice the work the crash
actually destroyed, versus ~10x under the seed policy (whose overhead is
dominated by the 1 s detection timeout, not by lost work).

Known shape: cells where *every* node dies at least once (2 nodes with
2+ crashes, 4 nodes with 4) can regress slightly under the cheap policy —
with no idle capacity there is nothing to speculate onto, and the fast
heartbeat cadence makes each restart's detection charge
(``misses x heartbeat_interval`` of network traffic) visible. That is the
documented cost of fast detection, not lost recovery work.

Results land in ``benchmarks/results/BENCH_resilience.json``::

    {"cpu_count": ..., "mode": "full"|"smoke", "seed": ...,
     "entries": [{"policy": "seed"|"cheap", "nodes": ..., "crashes": ...,
                  "fired": ..., "token_s": ..., "total_s": ...,
                  "overhead_pct": ..., "lost_work_s": ...,
                  "overhead_ratio": ..., "restarts": ..., "failovers": ...,
                  "speculations": ..., "chunk_resumes": ...,
                  "recovered": true},
                 ...]}

``--smoke`` shrinks the dataset and sweep so CI can exercise the recovery
paths in seconds; it is a plumbing check, not a measurement.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed_resilience.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import AssemblyConfig
from repro.distributed import DistributedAssembler
from repro.faults import NODE, NODE_CRASH, Fault, FaultPlan, inject
from repro.seq.datasets import tiny_dataset

NODE_COUNTS = (2, 4, 8)
CRASH_COUNTS = (0, 1, 2, 4)
SEED = 23
RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_resilience.json"

#: The cheap-recovery policy knobs (all policy-only, out of the checkpoint
#: fingerprint): fast detection, speculation as soon as a heartbeat is
#: missed, chunk commits every 512 processed records.
CHEAP_KNOBS = {
    "heartbeat_interval": 0.02,
    "speculation_threshold": 0.02,
    "chunk_checkpoint_every": 512,
}


def _identity(result) -> tuple:
    return (result.contigs.flat_codes.tobytes(),
            result.contigs.offsets.tobytes(), result.edges)


def _crash_plan(clean, crashes: int, seed: int) -> FaultPlan:
    """Kill the owner of ``crashes`` distinct partitions at the token boundary.

    Match-based (not op-pinned) faults: each fires at the first reduce
    attempt of its partition no matter how earlier recoveries shifted the
    op counter, so exactly ``crashes`` faults fire per run.
    """
    lengths = sorted({entry["length"] for entry in clean.token_trace})
    chosen = random.Random(seed).sample(lengths, min(crashes, len(lengths)))
    # fnmatch treats "[...]" as a character class — escape the bracket.
    return FaultPlan([Fault(NODE_CRASH, site=NODE,
                            match=f"*:reduce[[]{length}]")
                      for length in chosen], seed=seed)


def _lost_work_s(notes: dict) -> float:
    """Simulated seconds of work the crashes genuinely destroyed/displaced."""
    return (notes.get("wasted_s", 0.0)
            + notes.get("speculation_wasted_s", 0.0)
            + notes.get("speculation_moved_s", 0.0))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset + reduced sweep (CI plumbing check)")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)

    node_counts = (2, 4) if args.smoke else NODE_COUNTS
    crash_counts = (0, 1, 2) if args.smoke else CRASH_COUNTS
    genome = 600 if args.smoke else 1800

    entries = []
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as tmp:
        md, _ = tiny_dataset(Path(tmp) / "data", genome_length=genome,
                             read_length=36, coverage=8.0, min_overlap=24,
                             seed=7)
        # Restart budget sized so every injected crash is absorbed by
        # restart + replay (the overhead being measured), not by node loss.
        base = dict(min_overlap=24, seed=7, node_restarts=max(crash_counts))
        policies = {
            "seed": AssemblyConfig(**base),
            "cheap": AssemblyConfig(**base, **CHEAP_KNOBS),
        }
        for nodes in node_counts:
            for policy, config in policies.items():
                assembler = DistributedAssembler(config, nodes)
                clean = assembler.assemble(md.store_path)
                baseline = _identity(clean)
                clean_token = clean.phase_seconds["reduce"]
                for crashes in crash_counts:
                    if crashes == 0:
                        result, fired = clean, 0
                    else:
                        plan = _crash_plan(clean, crashes, SEED + crashes)
                        with inject(plan):
                            result = assembler.assemble(md.store_path)
                        fired = len(plan.events)
                    token_s = result.phase_seconds["reduce"]
                    overhead_s = token_s - clean_token
                    lost = _lost_work_s(result.notes)
                    entry = {
                        "policy": policy,
                        "nodes": nodes,
                        "crashes": crashes,
                        "fired": fired,
                        "token_s": round(token_s, 6),
                        "total_s": round(result.total_seconds, 6),
                        "overhead_pct": round(100.0 * overhead_s
                                              / clean_token, 2),
                        "lost_work_s": round(lost, 6),
                        "overhead_ratio": (round(overhead_s / lost, 3)
                                           if lost > 0 else None),
                        "restarts": int(result.notes.get("node_restarts", 0)),
                        "failovers": int(result.notes.get("failovers", 0)),
                        "speculations": int(result.notes.get(
                            "speculations", 0)),
                        "chunk_resumes": int(result.notes.get(
                            "chunk_resumes", 0)),
                        "recovered": (result.degraded is None
                                      and _identity(result) == baseline),
                    }
                    entries.append(entry)
                    ratio = entry["overhead_ratio"]
                    print(f"[{policy:5s}] nodes={nodes} crashes={crashes} "
                          f"(fired {fired}): token={entry['token_s']:.4f}s "
                          f"overhead={entry['overhead_pct']:+.2f}% "
                          f"lost={entry['lost_work_s']:.4f}s "
                          f"ratio={ratio if ratio is not None else '-'} "
                          f"restarts={entry['restarts']} "
                          f"spec={entry['speculations']} "
                          f"resumes={entry['chunk_resumes']} "
                          f"recovered={entry['recovered']}")

    if not all(entry["recovered"] for entry in entries):
        print("WARNING: some faulted runs did not recover byte-identically")

    # The acceptance cell: cheap recovery at 2 nodes / 1 crash must cost at
    # most twice the work the crash destroyed.
    accept = [e for e in entries
              if e["policy"] == "cheap" and e["nodes"] == 2
              and e["crashes"] == 1 and e["overhead_ratio"] is not None]
    for entry in accept:
        verdict = "PASS" if entry["overhead_ratio"] <= 2.0 else "FAIL"
        print(f"acceptance (cheap, 2 nodes, 1 crash): "
              f"ratio={entry['overhead_ratio']} <= 2.0 -> {verdict}")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(
        {"cpu_count": os.cpu_count(),
         "mode": "smoke" if args.smoke else "full",
         "seed": SEED,
         "entries": entries}, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

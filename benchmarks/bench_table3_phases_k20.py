"""Table III — single-node per-phase times, 64 GB host + K20X (6 GB).

The structural claim reproduced here: halving host memory slows the *sort*
phase, and only for the dataset whose partitions stop fitting in one host
block (H.Genome gains one merge pass); the other phases are unchanged.
"""

import pytest

from repro.analysis import ComparisonTable
from repro.model import model_phase_seconds
from repro.model.paper_values import TABLE3_K20

from _common import PAPER_ORDER, emit, pipeline_result, scale, workload

PHASES = ("map", "sort", "reduce", "compress", "load", "total")


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("paper_name", PAPER_ORDER)
def test_table3_phase_times_k20(benchmark, paper_name):
    result = benchmark.pedantic(
        lambda: pipeline_result(paper_name, "supermic"), rounds=1, iterations=1)

    from repro.config import MemoryConfig
    model = model_phase_seconds(workload(paper_name),
                                MemoryConfig.preset("supermic"), "K20X")
    measured = result.phase_seconds()
    measured["total"] = sum(measured.values())

    table = ComparisonTable(
        f"Table III - {paper_name} on 64 GB + K20X (scaled x{scale():g})",
        ["phase", "paper", "model (paper scale)", "measured wall (scaled)"],
        ["raw", "duration", "duration", "duration"],
    )
    for phase in PHASES:
        table.add_row(phase, TABLE3_K20[paper_name][phase], model[phase],
                      measured[phase])
    table.add_note(f"sort disk passes: {result.sort_report.max_disk_passes}")
    emit(f"table3_{paper_name.replace(' ', '').replace('.', '').lower()}", table)

    # The pass-count crossover (Table II vs III): extra pass for H.Genome only.
    expected_passes = 2 if paper_name == "H.Genome" else 1
    assert result.sort_report.max_disk_passes == expected_passes


@pytest.mark.benchmark(group="table3")
def test_table3_sort_slowdown_is_hgenome_only(benchmark):
    """Cross-table check: sort_64GB / sort_128GB per dataset, measured."""
    def ratios():
        out = {}
        for paper_name in PAPER_ORDER:
            small = pipeline_result(paper_name, "supermic")
            big = pipeline_result(paper_name, "qb2")
            out[paper_name] = (
                small.telemetry["sort"].sim_seconds
                / max(big.telemetry["sort"].sim_seconds, 1e-9))
        return out

    measured = benchmark.pedantic(ratios, rounds=1, iterations=1)
    table = ComparisonTable(
        "Table II vs III - modeled sort slowdown from halving host memory",
        ["dataset", "paper ratio", "measured (sim) ratio"],
        ["raw", "ratio", "ratio"],
    )
    paper_ratio = {"H.Chr 14": 672 / 576, "Bumblebee": 5725 / 4860,
                   "Parakeet": 20483 / 17876, "H.Genome": 53601 / 39945}
    for paper_name in PAPER_ORDER:
        table.add_row(paper_name, paper_ratio[paper_name], measured[paper_name])
    emit("table3_sort_ratio", table)
    assert measured["H.Genome"] == max(measured.values())
    assert measured["H.Genome"] > 1.5

"""Table IV — peak host/device memory per phase, 128 GB + K40.

The structural claims: device peaks are data-size independent (fixed
per-phase allocations, fully used), host peaks grow with the dataset and
peak in the sort phase. Peaks come from the same cached runs as Table II;
paper-scale values come from the memory model.
"""

import pytest

from repro.analysis import ComparisonTable
from repro.config import MemoryConfig
from repro.model import model_memory_peaks
from repro.model.paper_values import TABLE4_MEMORY_K40

from _common import PAPER_ORDER, emit, pipeline_result, scale, workload

GB = 1e9


@pytest.mark.benchmark(group="table4")
def test_table4_memory_peaks_k40(benchmark):
    results = benchmark.pedantic(
        lambda: {name: pipeline_result(name, "qb2") for name in PAPER_ORDER},
        rounds=1, iterations=1)

    memory = MemoryConfig.preset("qb2")
    host_table = ComparisonTable(
        f"Table IV (host GB) - paper | model | measured-scaled/{scale():g}",
        ["dataset", "map", "sort", "reduce", "contig"],
    )
    device_table = ComparisonTable(
        f"Table IV (device GB) - paper | model | measured-scaled/{scale():g}",
        ["dataset", "map", "sort", "reduce"],
    )
    factor = scale()
    for paper_name in PAPER_ORDER:
        result = results[paper_name]
        model = model_memory_peaks(workload(paper_name), memory, "K40")
        paper = TABLE4_MEMORY_K40[paper_name]

        def cell(kind, phase, measured_phase):
            published = paper[kind][phase]
            modeled = model[kind][phase] / GB
            measured = result.telemetry[measured_phase].peaks.get(
                f"{'device' if kind == 'device' else 'host'}_bytes", 0.0)
            return f"{published:.1f} | {modeled:.1f} | {measured / factor / GB:.1f}"

        host_table.add_row(paper_name, cell("host", "map", "map"),
                           cell("host", "sort", "sort"),
                           cell("host", "reduce", "reduce"),
                           cell("host", "contig", "compress"))
        device_table.add_row(paper_name, cell("device", "map", "map"),
                             cell("device", "sort", "sort"),
                             cell("device", "reduce", "reduce"))
    host_table.add_note("measured column rescaled to paper units by 1/scale")
    emit("table4", host_table, device_table)

    # Structure: device sort peak is identical for every dataset large enough
    # to fill the device blocks; H.Chr 14 sits below (the paper shows the
    # same: 6.46 GB vs 9.02 GB for the other three in Table IV).
    sort_peaks = {name: results[name].telemetry["sort"].peaks["device_bytes"]
                  for name in PAPER_ORDER}
    large = [sort_peaks[n] for n in PAPER_ORDER if n != "H.Chr 14"]
    assert max(large) / max(1.0, min(large)) < 1.05
    assert sort_peaks["H.Chr 14"] <= min(large)
    # Host sort peak grows with dataset size.
    host_sort = [results[name].telemetry["sort"].peaks["host_bytes"]
                 for name in PAPER_ORDER]
    assert host_sort[-1] >= host_sort[0]
    # Budgets never exceeded.
    budget = MemoryConfig.preset("qb2").scaled(factor)
    for result in results.values():
        for stats in result.telemetry:
            assert stats.peaks.get("device_bytes", 0) <= budget.device_bytes
            assert stats.peaks.get("host_bytes", 0) <= budget.host_bytes

"""Ablation — sequencing noise vs exact-fingerprint overlaps.

LaSAGNA's overlaps are exact matches (the paper evaluates on real Illumina
data *after* standard preprocessing; its SGA comparison explicitly excludes
SGA's error-correction stage). This study quantifies what that exactness
assumption costs as substitution noise rises, and how much the
k-mer-spectrum corrector (this repo's optional preprocessor) recovers.
"""

import numpy as np
import pytest

from repro import Assembler, AssemblyConfig
from repro.analysis import ComparisonTable
from repro.seq.correction import correct_and_filter
from repro.seq.packing import PackedReadStore
from repro.seq.records import ReadBatch
from repro.seq.simulate import ReadSimulator, simulate_genome

from _common import DATA_ROOT, emit

ERROR_RATES = (0.0, 0.005, 0.01, 0.02)


def _assemble(batch: ReadBatch, tmp_path, tag: str):
    path = tmp_path / f"{tag}.lsgr"
    with PackedReadStore.create(path, batch.read_length) as store:
        store.append_batch(batch)
    return Assembler(AssemblyConfig(min_overlap=30)).assemble(path)


@pytest.mark.benchmark(group="ablation")
def test_ablation_noise_and_correction(benchmark, tmp_path):
    genome = simulate_genome(6000, seed=71)

    def run_grid():
        grid = {}
        for rate in ERROR_RATES:
            reads = ReadSimulator(genome=genome, read_length=60, coverage=30.0,
                                  seed=72, error_rate=rate).all_reads()
            raw = _assemble(reads, tmp_path, f"raw{rate}")
            corrected, _, dropped = correct_and_filter(reads, k=17)
            fixed = _assemble(corrected, tmp_path, f"fix{rate}")
            grid[rate] = (raw, fixed, dropped)
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    table = ComparisonTable(
        "Ablation - substitution noise vs exact overlaps, with/without correction",
        ["error rate", "raw N50", "raw edges", "corrected N50",
         "corrected edges", "reads dropped"],
    )
    for rate, (raw, fixed, dropped) in grid.items():
        table.add_row(f"{rate:.1%}", raw.stats()["n50"],
                      f"{raw.reduce_report.edges_added:,}",
                      fixed.stats()["n50"],
                      f"{fixed.reduce_report.edges_added:,}", dropped)
    table.add_note("exact-match overlaps degrade sharply with noise; "
                   "spectrum correction restores clean-level contiguity")
    emit("ablation_correction", table)

    clean_n50 = grid[0.0][0].stats()["n50"]
    # Raw assembly collapses with noise...
    assert grid[0.02][0].stats()["n50"] < 0.5 * clean_n50
    # ...and correction restores most of it at moderate noise.
    assert grid[0.01][1].stats()["n50"] > 0.6 * clean_n50
    # Monotone damage on the raw side.
    raw_n50s = [grid[r][0].stats()["n50"] for r in ERROR_RATES]
    assert raw_n50s[0] >= raw_n50s[1] >= raw_n50s[3]

"""Fig. 8 — effect of host and device block-sizes on sorting time.

Measured: one scaled H.Genome partition is externally sorted under a grid
of (m_h, m_d) block sizes; modeled seconds (which include the disk-pass
structure) are reported alongside. Model: the same grid at paper scale
(2.5 G records of 20 bytes on a K40).

Reproduction targets: time falls as the host block grows (log-shaped, one
disk pass fewer per doubling) and flattens at the single-pass point; the
device block-size matters far less.
"""

import numpy as np
import pytest

from repro.analysis import ComparisonTable
from repro.device import MemoryPool, SimClock, VirtualGPU
from repro.errors import HostMemoryError
from repro.extmem import ExternalSorter, IOAccountant, RunWriter
from repro.extmem.records import kv_dtype, make_records
from repro.model.paper_values import FIG8_DEVICE_BLOCKS, FIG8_HOST_BLOCKS
from repro.model.sorting import PARTITION_RECORDS, model_partition_sort_seconds
from repro.units import format_duration

from _common import dataset, emit


def _partition_records(n: int) -> np.ndarray:
    rng = np.random.default_rng(88)
    return make_records(rng.integers(0, 2**62, n, dtype=np.uint64),
                        np.arange(n, dtype=np.uint32),
                        aux=rng.integers(0, 2**62, n, dtype=np.uint64))


def _sort_once(tmp_path, records: np.ndarray, m_h: int, m_d: int, fanout=2):
    clock = SimClock()
    accountant = IOAccountant(clock=clock)
    gpu = VirtualGPU("K40", capacity_bytes=max(1 << 20, m_d * 60), clock=clock)
    host_pool = MemoryPool("host", max(1 << 22, m_h * 60), HostMemoryError)
    sorter = ExternalSorter(gpu=gpu, host_pool=host_pool, accountant=accountant,
                            dtype=records.dtype, host_block_pairs=m_h,
                            device_block_pairs=m_d, merge_fanout=fanout)
    in_path = tmp_path / f"part_{m_h}_{m_d}_{fanout}.run"
    with RunWriter(in_path, records.dtype) as writer:
        writer.append(records)
    report = sorter.sort_file(in_path, tmp_path / f"out_{m_h}_{m_d}_{fanout}.run")
    return report, clock.total_seconds


@pytest.mark.benchmark(group="fig8")
def test_fig8_block_size_sweep(benchmark, tmp_path):
    materialized = dataset("H.Genome")
    n = 2 * materialized.n_reads  # one scaled partition
    records = _partition_records(n)

    host_grid = [n // 4, n // 2, n, 2 * n, 4 * n]
    device_grid = [n // 64, n // 32, n // 16, n // 8]
    fanout_grid = [2, 4, 8]
    fixed_device = n // 16

    def sweep():
        measurements = {}
        for m_h in host_grid:
            measurements[("host", m_h)] = _sort_once(tmp_path, records, m_h,
                                                     fixed_device)
        for m_d in device_grid:
            measurements[("device", m_d)] = _sort_once(tmp_path, records,
                                                       n // 2, m_d)
        for fanout in fanout_grid:
            measurements[("fanout", fanout)] = _sort_once(
                tmp_path, records, n // 8, fixed_device, fanout)
        return measurements

    measurements = benchmark.pedantic(sweep, rounds=1, iterations=1)

    host_table = ComparisonTable(
        "Fig. 8 (host axis) - sort time vs host block-size",
        ["m_h (fraction of partition)", "passes", "sim time",
         "model @ paper scale"],
    )
    for m_h, paper_m_h in zip(host_grid, FIG8_HOST_BLOCKS):
        report, sim = measurements[("host", m_h)]
        model = model_partition_sort_seconds(paper_m_h, 20_000_000)
        host_table.add_row(f"{m_h / n:.3g}x", report.disk_passes,
                           format_duration(sim), format_duration(model))

    device_table = ComparisonTable(
        "Fig. 8 (device axis) - sort time vs device block-size (m_h = n/2)",
        ["m_d (fraction of partition)", "sim time", "model @ paper scale"],
    )
    for m_d, paper_m_d in zip(device_grid, FIG8_DEVICE_BLOCKS):
        _, sim = measurements[("device", m_d)]
        model = model_partition_sort_seconds(640_000_000, paper_m_d)
        device_table.add_row(f"{m_d / n:.3g}x", format_duration(sim),
                             format_duration(model))
    host_table.add_note(f"measured partition: {n:,} records; paper partition: "
                        f"{PARTITION_RECORDS:,} records")

    fanout_table = ComparisonTable(
        "Fig. 8 extension - merge fanout at m_h = n/8 (16 initial runs)",
        ["fanout k", "passes", "sim time", "model @ paper scale"],
    )
    for fanout in fanout_grid:
        report, sim = measurements[("fanout", fanout)]
        model = model_partition_sort_seconds(160_000_000, 20_000_000,
                                             merge_fanout=fanout)
        fanout_table.add_row(fanout, report.disk_passes, format_duration(sim),
                             format_duration(model))

    from repro.analysis import AsciiChart
    chart = AsciiChart("Fig. 8 (model) - partition sort seconds (K40)",
                       [f"{b // 10**6}M" for b in FIG8_HOST_BLOCKS], y_log=True)
    for paper_m_d in FIG8_DEVICE_BLOCKS:
        chart.add_series(f"m_d={paper_m_d // 10**6}M",
                         [model_partition_sort_seconds(b, paper_m_d)
                          for b in FIG8_HOST_BLOCKS])
    emit("fig8", host_table, fanout_table, device_table, chart)

    # Shapes: monotone drop along the host axis, flat past single-pass
    # (blocks of 2n and 4n records both sort the partition in one pass).
    host_sims = [measurements[("host", m_h)][1] for m_h in host_grid]
    assert host_sims[0] > host_sims[1] > host_sims[2]
    assert measurements[("host", 2 * n)][0].disk_passes == 1
    assert abs(host_sims[-1] - host_sims[-2]) < 0.05 * host_sims[-2]
    # Host axis effect dwarfs device axis effect.
    device_sims = [measurements[("device", m_d)][1] for m_d in device_grid]
    host_effect = host_sims[0] / host_sims[-1]
    device_effect = max(device_sims) / min(device_sims)
    assert host_effect > 1.5 * device_effect
    # Fanout axis: k-way merging removes whole disk passes at fixed m_h.
    fanout_passes = [measurements[("fanout", k)][0].disk_passes
                     for k in fanout_grid]
    assert fanout_passes == sorted(fanout_passes, reverse=True)
    assert fanout_passes[-1] < fanout_passes[0]
    assert measurements[("fanout", 8)][1] < measurements[("fanout", 2)][1]

"""Ablation D5 — length partitioning vs fingerprint-range partitioning.

The paper's reduce serializes on the out-degree bit-vector token traveling
through length partitions (scalability bound ``n_max = t_o/t_g``); its
stated future work is to partition by *fingerprint* instead. Both are
implemented here; this benchmark runs the same sorted partitions through

* the token-serialized distributed reduce (``repro.distributed.cluster``),
* the fingerprint-range reduce (``repro.distributed.fingerprint_partition``),

and compares critical paths and outputs. Disk seeks are zeroed so the
comparison isolates the throughput/serialization structure rather than
miniature-scale seek constants.
"""

import pytest

from repro import AssemblyConfig
from repro.analysis import ComparisonTable
from repro.core.context import RunContext
from repro.core.load_phase import run_load
from repro.core.map_phase import run_map
from repro.core.sort_phase import run_sort
from repro.device.specs import DiskSpec
from repro.distributed import DistributedAssembler
from repro.distributed.fingerprint_partition import reduce_fingerprint_partitioned
from repro.units import format_duration

from _common import dataset, emit

NO_SEEK_DISK = DiskSpec(seek_seconds=0.0)
NODE_COUNTS = (1, 2, 4, 8)


@pytest.mark.benchmark(group="ablation")
def test_ablation_partitioning_strategies(benchmark, tmp_path):
    materialized = dataset("Bumblebee")
    config = AssemblyConfig(min_overlap=materialized.spec.min_overlap)

    # Prepare sorted partitions once (the input both strategies consume).
    ctx = RunContext(config, workdir=tmp_path / "prep", disk=NO_SEEK_DISK)
    store = run_load(ctx, materialized.store_path)
    partitions, _ = run_map(ctx, store)
    run_sort(ctx, partitions)

    def run_all():
        fingerprint = {
            n: reduce_fingerprint_partitioned(config, partitions, store, n,
                                              disk=NO_SEEK_DISK)
            for n in NODE_COUNTS
        }
        token = {
            n: DistributedAssembler(config, n, disk=NO_SEEK_DISK)
            .assemble(materialized.store_path)
            for n in NODE_COUNTS
        }
        return fingerprint, token

    fingerprint, token = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = ComparisonTable(
        "Ablation D5 - reduce partitioning strategy (critical path, seek-free)",
        ["nodes", "length+token reduce", "fingerprint-range reduce", "speedup",
         "edges equal"],
    )
    for n in NODE_COUNTS:
        token_reduce = token[n].phase_seconds["reduce"]
        fp_reduce = fingerprint[n].critical_seconds
        table.add_row(
            n, format_duration(token_reduce), format_duration(fp_reduce),
            f"{token_reduce / max(fp_reduce, 1e-12):.2f}x",
            fingerprint[n].graph.n_edges == token[n].edges,
        )
    table.add_note("fingerprint partitioning parallelizes overlap finding for "
                   "all lengths at once; greedy application is one central pass")
    emit("ablation_partitioning", table)

    # Both strategies produce a valid graph with identical candidate sets.
    for n in NODE_COUNTS:
        fingerprint[n].graph.check_invariants()
        assert fingerprint[n].report.candidates \
            == token[n].reduce_report.candidates
    # The fingerprint strategy scales the find stage with node count.
    finds = [max(fingerprint[n].per_node_find_seconds) for n in NODE_COUNTS]
    assert finds[-1] < finds[0] / 3
    store.close()
    ctx.cleanup()

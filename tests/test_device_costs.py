"""Cost model: monotonicity and hardware-ordering properties."""

import pytest

from repro.device import costs
from repro.device.specs import DiskSpec, HostSpec, get_device_spec

K40 = get_device_spec("K40")
V100 = get_device_spec("V100")


class TestKernelCosts:
    def test_sort_linear_in_n(self):
        t1 = costs.sort_pairs_seconds(K40, 10**6, 8, 4)
        t2 = costs.sort_pairs_seconds(K40, 2 * 10**6, 8, 4)
        assert t2 == pytest.approx(2 * t1)

    def test_sort_scales_with_key_width(self):
        """16-byte (128-bit) keys need twice the radix passes of 8-byte keys."""
        t8 = costs.sort_pairs_seconds(K40, 10**6, 8, 4)
        t16 = costs.sort_pairs_seconds(K40, 10**6, 16, 4)
        assert t16 > t8

    def test_bandwidth_ordering(self):
        for fn in (lambda s: costs.sort_pairs_seconds(s, 10**6, 8, 4),
                   lambda s: costs.merge_pairs_seconds(s, 10**6, 8, 4),
                   lambda s: costs.scan_seconds(s, 10**4, 100)):
            assert fn(V100) < fn(K40)

    def test_zero_work_is_free(self):
        assert costs.sort_pairs_seconds(K40, 0, 8, 4) == 0.0
        assert costs.search_seconds(K40, 0, 100) == 0.0
        assert costs.scan_seconds(K40, 0, 100) == 0.0
        assert costs.transfer_seconds(K40, 0) == 0.0

    def test_search_logarithmic_in_haystack(self):
        small = costs.search_seconds(K40, 1000, 2**10)
        large = costs.search_seconds(K40, 1000, 2**20)
        assert large == pytest.approx(2 * small, rel=0.01)


class TestTransferAndDisk:
    def test_pcie_bandwidth(self):
        assert costs.transfer_seconds(K40, int(6e9)) == pytest.approx(1.0)

    def test_disk_rates(self):
        disk = DiskSpec(read_bandwidth=100e6, write_bandwidth=50e6, seek_seconds=0.01)
        assert costs.disk_read_seconds(disk, int(100e6)) == pytest.approx(1.0)
        assert costs.disk_write_seconds(disk, int(100e6)) == pytest.approx(2.0)
        assert costs.disk_read_seconds(disk, 0, seeks=3) == pytest.approx(0.03)

    def test_host_work(self):
        host = HostSpec()
        assert costs.host_work_seconds(host, 10**9) > 0
        assert costs.host_work_seconds(host, 0) == 0.0

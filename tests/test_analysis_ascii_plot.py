"""ASCII chart rendering."""

import pytest

from repro.analysis import AsciiChart
from repro.errors import ConfigError


class TestAsciiChart:
    def test_basic_render(self):
        chart = AsciiChart("demo", ["1", "2", "4"])
        chart.add_series("up", [1.0, 2.0, 3.0])
        chart.add_series("down", [3.0, 2.0, 1.0])
        text = chart.render()
        assert "demo" in text
        assert "o=up" in text and "x=down" in text
        # downward series' glyph appears above the upward one's in column 0
        lines = text.splitlines()
        first_col = [line for line in lines if "o" in line or "x" in line]
        assert first_col

    def test_log_scale(self):
        chart = AsciiChart("log", ["a", "b"], y_log=True)
        chart.add_series("s", [1.0, 1000.0])
        assert "[log y]" in chart.render()

    def test_log_rejects_nonpositive(self):
        chart = AsciiChart("log", ["a"], y_log=True)
        chart.add_series("s", [0.0])
        with pytest.raises(ConfigError):
            chart.render()

    def test_length_mismatch(self):
        chart = AsciiChart("x", ["a", "b"])
        with pytest.raises(ConfigError):
            chart.add_series("s", [1.0])

    def test_empty_chart(self):
        with pytest.raises(ConfigError):
            AsciiChart("x", ["a"]).render()

    def test_overlap_marker(self):
        chart = AsciiChart("x", ["a"], height=5)
        chart.add_series("s1", [1.0])
        chart.add_series("s2", [1.0])
        assert "!" in chart.render()

    def test_constant_series(self):
        chart = AsciiChart("flat", ["a", "b", "c"])
        chart.add_series("s", [5.0, 5.0, 5.0])
        text = chart.render()  # zero span must not divide by zero
        assert text.count("o") >= 3

    def test_monotone_series_monotone_rows(self):
        chart = AsciiChart("mono", ["1", "2", "3", "4"], height=9)
        chart.add_series("s", [1.0, 2.0, 3.0, 4.0])
        rows = {}
        for row_index, line in enumerate(chart.render().splitlines()):
            if "|" not in line:
                continue  # skip title/axis/legend lines
            for col, char in enumerate(line.split("|", 1)[1]):
                if char == "o":
                    rows[col] = row_index
        ordered = [rows[c] for c in sorted(rows)]
        assert ordered == sorted(ordered, reverse=True)

"""The lasagna CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        from repro import __version__
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_simulate_assemble_stats_flow(self, tmp_path, capsys):
        reads = tmp_path / "reads.fastq"
        genome = tmp_path / "genome.fasta"
        contigs = tmp_path / "contigs.fasta"
        assert main(["simulate-reads", "--genome-length", "1500",
                     "--read-length", "50", "--coverage", "12",
                     "-o", str(reads), "--genome-out", str(genome)]) == 0
        assert reads.exists() and genome.exists()

        assert main(["assemble", str(reads), "--min-overlap", "25",
                     "-o", str(contigs)]) == 0
        out = capsys.readouterr().out
        assert "contigs" in out
        assert contigs.exists()

        assert main(["stats", str(contigs)]) == 0
        assert "n50" in capsys.readouterr().out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "hgenome_sim" in out and "H.Genome" in out

    def test_model(self, capsys):
        assert main(["model", "--dataset", "hchr14_sim", "--memory", "qb2",
                     "--device", "K40"]) == 0
        out = capsys.readouterr().out
        assert "sort" in out and "total" in out

    def test_correct_reads(self, tmp_path, capsys):
        reads = tmp_path / "noisy.fastq"
        fixed = tmp_path / "fixed.fastq"
        main(["simulate-reads", "--genome-length", "1500", "--read-length", "50",
              "--coverage", "20", "--error-rate", "0.01", "-o", str(reads)])
        assert main(["correct-reads", str(reads), "-o", str(fixed),
                     "--k", "15"]) == 0
        out = capsys.readouterr().out
        assert "corrected" in out and fixed.exists()
        from repro.seq.fastq import read_fastq
        n_fixed = sum(1 for _ in read_fastq(fixed))
        assert 0 < n_fixed <= 600

    def test_distributed(self, tmp_path, capsys):
        reads = tmp_path / "r.fastq"
        contigs = tmp_path / "c.fasta"
        main(["simulate-reads", "--genome-length", "1200", "--read-length", "40",
              "--coverage", "12", "-o", str(reads)])
        assert main(["distributed", str(reads), "--nodes", "3",
                     "--min-overlap", "20", "-o", str(contigs)]) == 0
        out = capsys.readouterr().out
        assert "3 simulated nodes" in out and "shuffle" in out
        assert contigs.exists()

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "Fig. 9" in out and "Fig. 10" in out
        assert "V100" in out

    def test_assemble_gfa_export(self, tmp_path, capsys):
        reads = tmp_path / "r.fastq"
        gfa = tmp_path / "graph.gfa"
        main(["simulate-reads", "--genome-length", "800", "--read-length", "40",
              "--coverage", "10", "-o", str(reads)])
        assert main(["assemble", str(reads), "--min-overlap", "20",
                     "--gfa", str(gfa)]) == 0
        text = gfa.read_text()
        assert text.startswith("H\tVN:Z:1.0")
        assert "\nL\t" in text and "\nP\t" in text

    def test_assemble_rejects_bad_overlap(self, tmp_path):
        reads = tmp_path / "r.fastq"
        main(["simulate-reads", "--genome-length", "500", "--read-length", "40",
              "--coverage", "5", "-o", str(reads)])
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main(["assemble", str(reads), "--min-overlap", "40"])

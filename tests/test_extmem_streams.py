"""Run streams: sequential access contracts and accounting."""

import numpy as np
import pytest

from repro.errors import StreamProtocolError
from repro.extmem import IOAccountant, RunReader, RunWriter
from repro.extmem.records import kv_dtype, make_records


@pytest.fixture()
def records(rng):
    return make_records(rng.integers(0, 100, 50, dtype=np.uint64),
                        np.arange(50, dtype=np.uint32))


class TestRoundtrip:
    def test_write_then_read(self, tmp_path, records):
        path = tmp_path / "run"
        with RunWriter(path, records.dtype) as writer:
            writer.append(records[:30])
            writer.append(records[30:])
            assert writer.records_written == 50
        with RunReader(path, records.dtype) as reader:
            assert reader.total_records == 50
            out = reader.read_all()
        assert np.array_equal(out, records)

    def test_partial_reads(self, tmp_path, records):
        path = tmp_path / "run"
        with RunWriter(path, records.dtype) as writer:
            writer.append(records)
        with RunReader(path, records.dtype) as reader:
            first = reader.read(20)
            assert first.shape[0] == 20 and reader.remaining == 30
            rest = reader.read(1000)
            assert rest.shape[0] == 30
            assert reader.exhausted
            assert reader.read(10).shape[0] == 0

    def test_read_copy_is_owned(self, tmp_path, records):
        path = tmp_path / "run"
        with RunWriter(path, records.dtype) as writer:
            writer.append(records)
        with RunReader(path, records.dtype) as reader:
            chunk = reader.read(5)
            chunk["val"][:] = 0  # must not raise (writable copy)


class TestContracts:
    def test_exclusive_open(self, tmp_path, records):
        path = tmp_path / "run"
        writer = RunWriter(path, records.dtype)
        with pytest.raises(StreamProtocolError, match="already open"):
            RunReader(path, records.dtype)
        writer.close()
        reader = RunReader(path, records.dtype)
        with pytest.raises(StreamProtocolError, match="already open"):
            RunWriter(path, records.dtype)
        reader.close()

    def test_dtype_mismatch(self, tmp_path, records):
        path = tmp_path / "run"
        with RunWriter(path, records.dtype) as writer:
            with pytest.raises(StreamProtocolError, match="dtype mismatch"):
                writer.append(np.zeros(3, dtype=kv_dtype(2)))

    def test_append_after_close(self, tmp_path, records):
        writer = RunWriter(tmp_path / "run", records.dtype)
        writer.close()
        with pytest.raises(StreamProtocolError):
            writer.append(records)

    def test_size_must_be_record_multiple(self, tmp_path, records):
        path = tmp_path / "bad"
        path.write_bytes(b"\x00" * (records.dtype.itemsize + 1))
        with pytest.raises(StreamProtocolError, match="multiple"):
            RunReader(path, records.dtype)

    def test_failed_reader_open_leaves_no_stale_registration(self, tmp_path,
                                                             records):
        """A reader that never got a handle must not poison the path: the
        next open (either mode) has to succeed, not raise 'already open'."""
        path = tmp_path / "missing"
        with pytest.raises(FileNotFoundError):
            RunReader(path, records.dtype)
        with RunWriter(path, records.dtype) as writer:  # must not raise
            writer.append(records)
        with RunReader(path, records.dtype) as reader:
            assert reader.total_records == records.shape[0]

    def test_failed_writer_open_leaves_no_stale_registration(self, tmp_path,
                                                             records):
        path = tmp_path / "blocked"
        path.mkdir()  # open(..., "wb") on a directory raises IsADirectoryError
        with pytest.raises(OSError):
            RunWriter(path, records.dtype)
        path.rmdir()
        with RunWriter(path, records.dtype) as writer:  # must not raise
            writer.append(records)

    def test_bad_size_reader_leaves_no_stale_registration(self, tmp_path,
                                                          records):
        path = tmp_path / "bad"
        path.write_bytes(b"\x00" * (records.dtype.itemsize + 1))
        with pytest.raises(StreamProtocolError, match="multiple"):
            RunReader(path, records.dtype)
        path.unlink()
        with RunWriter(path, records.dtype) as writer:
            writer.append(records)


class TestAccounting:
    def test_bytes_and_seeks(self, tmp_path, records):
        accountant = IOAccountant()
        path = tmp_path / "run"
        with RunWriter(path, records.dtype, accountant) as writer:
            writer.append(records)
        assert accountant.write_bytes == records.nbytes
        with RunReader(path, records.dtype, accountant) as reader:
            reader.read(10)
            reader.read(10)
        assert accountant.read_bytes == 20 * records.dtype.itemsize
        counters = accountant.counters()
        assert counters["disk_seeks"] == 1.0  # reader positioning only
        assert counters["disk_read_ops"] == 2.0

    def test_clock_charged(self, tmp_path, records):
        from repro.device import SimClock
        from repro.device.specs import DiskSpec

        clock = SimClock()
        accountant = IOAccountant(DiskSpec(read_bandwidth=1e6, write_bandwidth=1e6,
                                           seek_seconds=0.0), clock)
        with RunWriter(tmp_path / "run", records.dtype, accountant) as writer:
            writer.append(records)
        assert clock.seconds("disk_write") == pytest.approx(records.nbytes / 1e6)

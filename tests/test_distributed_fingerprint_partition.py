"""The fingerprint-range partitioned reduce (paper future work, D5)."""

import numpy as np
import pytest

from repro import AssemblyConfig
from repro.core.context import RunContext
from repro.core.load_phase import run_load
from repro.core.map_phase import run_map
from repro.core.reduce_phase import run_reduce
from repro.core.sort_phase import run_sort
from repro.device.specs import DiskSpec
from repro.distributed.fingerprint_partition import (
    _range_boundaries, reduce_fingerprint_partitioned)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def prepared(tmp_path_factory):
    """Sorted partitions + the standard reduce's graph, built once."""
    from repro.seq.datasets import tiny_dataset

    root = tmp_path_factory.mktemp("fp-reduce")
    md, _ = tiny_dataset(root, genome_length=1500, read_length=50,
                         coverage=18.0, min_overlap=25, seed=61)
    config = AssemblyConfig(min_overlap=25)
    ctx = RunContext(config, workdir=root / "work")
    store = run_load(ctx, md.store_path)
    partitions, _ = run_map(ctx, store)
    run_sort(ctx, partitions)
    graph, report = run_reduce(ctx, partitions, store)
    return config, partitions, store, graph, report


class TestBoundaries:
    def test_cover_key_space(self):
        boundaries = _range_boundaries(4)
        assert boundaries[0] == 0
        assert boundaries[-1] >= 2**62  # beyond any packed 62-bit key
        assert (np.diff(boundaries.astype(np.float64)) > 0).all()


class TestEquivalence:
    @pytest.mark.parametrize("n_nodes", [1, 2, 3, 8])
    def test_candidates_and_edges_match_standard_reduce(self, prepared, n_nodes):
        config, partitions, store, base_graph, base_report = prepared
        result = reduce_fingerprint_partitioned(config, partitions, store, n_nodes)
        result.graph.check_invariants()
        assert result.report.candidates == base_report.candidates
        assert result.graph.n_edges == base_graph.n_edges

    def test_edge_lists_identical_across_node_counts(self, prepared):
        config, partitions, store, _, _ = prepared
        lists = []
        for n in (1, 4):
            result = reduce_fingerprint_partitioned(config, partitions, store, n)
            lists.append(result.graph.edge_list())
        for a, b in zip(*lists):
            assert np.array_equal(a, b)


class TestScaling:
    def test_find_stage_scales(self, prepared):
        config, partitions, store, _, _ = prepared
        no_seek = DiskSpec(seek_seconds=0.0)
        finds = {}
        for n in (1, 4):
            result = reduce_fingerprint_partitioned(config, partitions, store, n,
                                                    disk=no_seek)
            finds[n] = max(result.per_node_find_seconds)
        assert finds[4] < 0.5 * finds[1]

    def test_critical_path_composition(self, prepared):
        config, partitions, store, _, _ = prepared
        result = reduce_fingerprint_partitioned(config, partitions, store, 2)
        assert result.critical_seconds == pytest.approx(
            max(result.per_node_find_seconds) + result.apply_seconds)


class TestValidation:
    def test_rejects_zero_nodes(self, prepared):
        config, partitions, store, _, _ = prepared
        with pytest.raises(ConfigError):
            reduce_fingerprint_partitioned(config, partitions, store, 0)

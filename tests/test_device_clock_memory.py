"""SimClock and MemoryPool."""

import pytest

from repro.device import MemoryPool, SimClock
from repro.errors import ConfigError, DeviceMemoryError, ReproError


class TestSimClock:
    def test_accumulates_by_category(self):
        clock = SimClock()
        clock.charge("kernel", 1.0)
        clock.charge("kernel", 0.5)
        clock.charge("disk_read", 2.0)
        assert clock.seconds("kernel") == 1.5
        assert clock.total_seconds == 3.5

    def test_unknown_category(self):
        with pytest.raises(ConfigError):
            SimClock().charge("gpu_magic", 1.0)
        with pytest.raises(ConfigError):
            SimClock().seconds("gpu_magic")

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            SimClock().charge("kernel", -1.0)

    def test_advance_to_takes_maximum(self):
        slow, fast = SimClock(), SimClock()
        slow.charge("disk_read", 10.0)
        fast.charge("kernel", 1.0)
        fast.advance_to(slow)
        assert fast.seconds("disk_read") == 10.0
        assert fast.seconds("kernel") == 1.0
        slow.advance_to(fast)
        assert slow.seconds("kernel") == 1.0

    def test_meter_protocol(self):
        clock = SimClock()
        clock.charge("h2d", 2.0)
        counters = clock.counters()
        assert counters["sim_seconds"] == 2.0
        assert counters["sim_h2d_seconds"] == 2.0
        assert clock.peaks() == {}


class TestMemoryPool:
    def test_alloc_free_cycle(self):
        pool = MemoryPool("device", 100, DeviceMemoryError)
        allocation = pool.alloc(60)
        assert pool.used_bytes == 60 and pool.free_bytes == 40
        allocation.free()
        assert pool.used_bytes == 0
        allocation.free()  # idempotent
        assert pool.used_bytes == 0

    def test_capacity_enforced_with_specific_error(self):
        pool = MemoryPool("device", 100, DeviceMemoryError)
        pool.alloc(80)
        with pytest.raises(DeviceMemoryError, match="device pool exhausted"):
            pool.alloc(21)

    def test_oom_error_is_also_memoryerror(self):
        pool = MemoryPool("device", 10, DeviceMemoryError)
        with pytest.raises(MemoryError):
            pool.alloc(11)

    def test_peaks_and_reset(self):
        pool = MemoryPool("host", 1000, ReproError)
        a = pool.alloc(400)
        b = pool.alloc(300)
        b.free()
        assert pool.peak_bytes == 700
        pool.reset_peaks()
        assert pool.peak_bytes == 400  # resets to current, not zero
        assert pool.lifetime_peak_bytes == 700
        a.free()

    def test_context_manager(self):
        pool = MemoryPool("host", 100, ReproError)
        with pool.alloc(50):
            assert pool.used_bytes == 50
        assert pool.used_bytes == 0

    def test_meter_protocol(self):
        pool = MemoryPool("device", 100, ReproError)
        pool.alloc(10)
        assert pool.peaks() == {"device_bytes": 10.0}
        assert pool.counters()["device_allocs"] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            MemoryPool("x", 0, ReproError)
        pool = MemoryPool("x", 10, ReproError)
        with pytest.raises(ConfigError):
            pool.alloc(-1)

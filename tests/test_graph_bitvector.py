"""Packed bit-vector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.graph import PackedBitVector


class TestBasics:
    def test_set_get(self):
        vector = PackedBitVector(200)
        vector.set(np.array([0, 63, 64, 127, 199]))
        assert vector.get(63) and vector.get(64) and not vector.get(65)
        assert vector.get(np.array([0, 1, 199])).tolist() == [True, False, True]

    def test_count(self):
        vector = PackedBitVector(100)
        vector.set(np.array([5, 5, 7]))  # duplicates allowed
        assert vector.count() == 2

    def test_bounds_checked(self):
        vector = PackedBitVector(10)
        with pytest.raises(ConfigError):
            vector.set(np.array([10]))
        with pytest.raises(ConfigError):
            vector.get(np.array([-1]))

    def test_zero_size(self):
        vector = PackedBitVector(0)
        assert vector.count() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            PackedBitVector(-1)


class TestSerialization:
    def test_roundtrip(self):
        vector = PackedBitVector(130)
        vector.set(np.array([0, 129]))
        clone = PackedBitVector.from_bytes(vector.to_bytes(), 130)
        assert clone.count() == 2 and clone.get(129)

    def test_nbytes_is_word_packed(self):
        assert PackedBitVector(64).nbytes == 8
        assert PackedBitVector(65).nbytes == 16

    def test_copy_is_independent(self):
        vector = PackedBitVector(64)
        clone = vector.copy()
        vector.set(np.array([3]))
        assert not clone.get(3)


@given(st.lists(st.integers(0, 499), max_size=200), st.lists(st.integers(0, 499),
                                                             max_size=50))
@settings(max_examples=60)
def test_matches_python_set(set_indices, probe_indices):
    vector = PackedBitVector(500)
    if set_indices:
        vector.set(np.array(set_indices))
    reference = set(set_indices)
    assert vector.count() == len(reference)
    if probe_indices:
        got = vector.get(np.array(probe_indices))
        assert got.tolist() == [i in reference for i in probe_indices]

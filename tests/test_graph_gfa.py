"""GFA export."""

import io

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import GreedyStringGraph, extract_paths
from repro.graph.gfa import read_gfa_summary, write_gfa
from repro.seq.records import ReadBatch


@pytest.fixture()
def small_graph():
    graph = GreedyStringGraph(4, 10)
    graph.add_candidates(np.array([0, 2]), np.array([2, 4]), 6)
    return graph


class TestWriteGfa:
    def test_record_counts(self, small_graph):
        buffer = io.StringIO()
        counts = write_gfa(buffer, small_graph)
        assert counts["S"] == 4
        assert counts["L"] == 2  # 4 directed edges -> 2 canonical links
        text = buffer.getvalue()
        assert text.startswith("H\tVN:Z:1.0")
        assert "L\tread0\t+\tread1\t+\t6M" in text

    def test_sequences_embedded(self, small_graph):
        batch = ReadBatch.from_strings(["ACGTACGTAC"] * 4)
        buffer = io.StringIO()
        write_gfa(buffer, small_graph, read_codes=batch.codes)
        assert "S\tread0\tACGTACGTAC" in buffer.getvalue()

    def test_placeholder_sequences_have_length_tag(self, small_graph):
        buffer = io.StringIO()
        write_gfa(buffer, small_graph)
        assert "LN:i:10" in buffer.getvalue()

    def test_paths_written(self, small_graph):
        paths = extract_paths(small_graph,
                              include_singletons=False).deduplicated()
        buffer = io.StringIO()
        counts = write_gfa(buffer, small_graph, paths=paths)
        assert counts["P"] == paths.n_paths
        text = buffer.getvalue()
        assert "P\tcontig0\t" in text
        # path steps reference segments with orientations
        path_line = [l for l in text.splitlines() if l.startswith("P")][0]
        assert "read0+" in path_line or "read2-" in path_line

    def test_read_codes_validation(self, small_graph):
        with pytest.raises(ConfigError):
            write_gfa(io.StringIO(), small_graph,
                      read_codes=np.zeros((2, 10), dtype=np.uint8))

    def test_file_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "graph.gfa"
        write_gfa(path, small_graph)
        summary = read_gfa_summary(path)
        assert summary == {"H": 1, "S": 4, "L": 2}

    def test_rc_orientation_flags(self):
        graph = GreedyStringGraph(3, 10)
        graph.add_candidates(np.array([1]), np.array([4]), 5)  # rc(0) -> fwd(2)
        buffer = io.StringIO()
        write_gfa(buffer, graph)
        assert "L\tread0\t-\tread2\t+\t5M" in buffer.getvalue()
